"""Ablations for the Adaptive-Sparse-Vector-with-Gap design choices.

DESIGN.md calls out two hyper-parameters of Algorithm 2 whose values the
paper fixes without a sweep:

* the top-branch margin ``sigma`` (set to 2 standard deviations of the
  top-branch noise), and
* the threshold/query budget split ``theta`` (set to the Lyu et al. ratio).

These ablations sweep both and report how the number of above-threshold
answers, the top-branch share and the precision respond, confirming that the
paper's choices sit in a sensible regime (larger sigma trades extra answers
for precision; the recommended theta is near the answer-count optimum).
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import EPSILON, TRIALS, emit

from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.evaluation.figures import render_series_table
from repro.evaluation.harness import pick_threshold
from repro.evaluation.metrics import precision_recall
from repro.mechanisms.sparse_vector import SvtBranch

K = 10
SIGMA_MULTIPLIERS = (0.5, 1.0, 2.0, 3.0, 4.0)
THETAS = (0.05, 0.1, 0.2, 0.4, 0.6)


def _run_setting(counts, rng, trials, **mechanism_kwargs):
    answers, top_share, precisions = [], [], []
    for _ in range(trials):
        threshold = pick_threshold(counts, K, rng=rng)
        mech = AdaptiveSparseVectorWithGap(
            epsilon=EPSILON, threshold=threshold, k=K, monotonic=True, **mechanism_kwargs
        )
        result = mech.run(counts, rng=rng)
        answers.append(result.num_answered)
        counts_by_branch = result.branch_counts()
        top_share.append(
            counts_by_branch[SvtBranch.TOP] / max(1, result.num_answered)
        )
        actual_above = [int(i) for i in np.nonzero(counts > threshold)[0]]
        precision, _ = precision_recall(result.above_indices, actual_above)
        precisions.append(precision)
    return (
        float(np.mean(answers)),
        float(np.mean(top_share)),
        float(np.mean(precisions)),
    )


def _sigma_sweep(counts):
    rng = np.random.default_rng(0)
    rows = []
    for multiplier in SIGMA_MULTIPLIERS:
        answers, top_share, precision = _run_setting(
            counts, rng, TRIALS, sigma_multiplier=multiplier
        )
        rows.append(
            {
                "sigma_multiplier": multiplier,
                "answers": answers,
                "top_branch_share": top_share,
                "precision": precision,
            }
        )
    return rows


def _theta_sweep(counts):
    rng = np.random.default_rng(1)
    rows = []
    for theta in THETAS:
        answers, top_share, precision = _run_setting(counts, rng, TRIALS, theta=theta)
        rows.append(
            {
                "theta": theta,
                "answers": answers,
                "top_branch_share": top_share,
                "precision": precision,
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_sigma_margin(benchmark, bms_pos_counts):
    rows = benchmark.pedantic(_sigma_sweep, args=(bms_pos_counts,), rounds=1, iterations=1)
    emit(
        "Ablation: top-branch margin sigma (multiples of the top-noise std)",
        render_series_table(rows),
    )
    # A small margin sends almost everything through the cheap top branch; a
    # large margin pushes answers back to the middle branch.
    assert rows[0]["top_branch_share"] >= rows[-1]["top_branch_share"]
    # All settings keep reasonable precision on well-separated counts.
    assert all(row["precision"] > 0.5 for row in rows)


@pytest.mark.benchmark(group="ablation")
def test_ablation_theta_allocation(benchmark, bms_pos_counts):
    rows = benchmark.pedantic(_theta_sweep, args=(bms_pos_counts,), rounds=1, iterations=1)
    emit(
        "Ablation: threshold budget fraction theta",
        render_series_table(rows),
    )
    answers = [row["answers"] for row in rows]
    # Very large theta starves the per-query budget and answers fewer queries
    # than the intermediate settings.
    assert max(answers[:3]) >= answers[-1]
