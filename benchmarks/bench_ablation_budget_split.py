"""Ablation: the selection/measurement budget split of the Section 5.2 protocol.

The paper splits the budget evenly between the Noisy-Top-K-with-Gap selection
and the Laplace measurements.  The pure variance model (Corollary 1) would
always push budget towards the measurements, but doing so degrades the
selection itself -- once the selection noise is comparable to the separation
between the top counts, ordering mistakes erase the gap-fusion gains.  This
ablation sweeps the selection fraction rho and reports the empirical fused
MSE (which includes selection errors), showing the U-shape that justifies a
balanced split, alongside the constrained-optimal fraction suggested by
``repro.postprocess.budget_split``.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import EPSILON, TRIALS, emit

from repro.core.noisy_top_k import NoisyTopKWithGap
from repro.evaluation.figures import render_series_table
from repro.mechanisms.laplace_mechanism import LaplaceMechanism
from repro.postprocess.blue import blue_top_k_estimate
from repro.postprocess.budget_split import optimal_selection_fraction
from repro.primitives.rng import ensure_rng

K = 10
RHOS = (0.1, 0.3, 0.5, 0.7, 0.9)


def _run_split(counts, rho, rng):
    selection_epsilon = rho * EPSILON
    measurement_epsilon = (1.0 - rho) * EPSILON
    selector = NoisyTopKWithGap(epsilon=selection_epsilon, k=K, monotonic=True)
    measurer = LaplaceMechanism(epsilon=measurement_epsilon, l1_sensitivity=float(K))
    selection = selector.select(counts, rng=rng)
    measured = measurer.release(counts[selection.indices], rng=rng)
    lam = (2.0 * selector.scale**2) / measured.variance
    fused = blue_top_k_estimate(measured.values, selection.gaps[: K - 1], lam=lam)
    truth = counts[selection.indices]
    return float(np.mean((fused - truth) ** 2)), float(
        np.mean((measured.values - truth) ** 2)
    )


def _sweep(counts):
    generator = ensure_rng(3)
    rows = []
    for rho in RHOS:
        fused_errors, baseline_errors = [], []
        for _ in range(TRIALS):
            fused_mse, baseline_mse = _run_split(counts, rho, generator)
            fused_errors.append(fused_mse)
            baseline_errors.append(baseline_mse)
        rows.append(
            {
                "selection_fraction": rho,
                "fused_mse": float(np.mean(fused_errors)),
                "measurement_only_mse": float(np.mean(baseline_errors)),
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_budget_split(benchmark, bms_pos_counts):
    rows = benchmark.pedantic(_sweep, args=(bms_pos_counts,), rounds=1, iterations=1)
    counts_sorted = np.sort(bms_pos_counts)[::-1]
    separation = float(counts_sorted[K - 1] - counts_sorted[K])
    suggested = optimal_selection_fraction(
        EPSILON, K, separation=max(separation, 1.0), num_queries=bms_pos_counts.size
    )
    emit(
        "Ablation: selection/measurement budget split "
        f"(suggested constrained optimum rho={suggested:.2f})",
        render_series_table(rows),
    )
    by_rho = {row["selection_fraction"]: row["fused_mse"] for row in rows}
    # Starving the measurements (rho = 0.9) is clearly worse than the
    # balanced split; the middle of the sweep is the good regime.
    assert by_rho[0.9] > by_rho[0.5]
    assert min(by_rho, key=by_rho.get) in (0.1, 0.3, 0.5)
