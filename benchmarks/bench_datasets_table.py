"""Regenerates the Section 7.1 dataset-statistics table.

Paper reference: the table in Section 7.1 listing, for BMS-POS, Kosarak and
T40I10D100K, the number of records and number of unique items.  The synthetic
stand-ins are generated at a reduced scale (documented in DESIGN.md); the
table printed here shows the generated sizes plus the published originals for
comparison.
"""

from __future__ import annotations

from conftest import emit

from repro.datasets.generators import PAPER_DATASETS
from repro.evaluation.figures import dataset_statistics_table, render_series_table


def _build_table():
    rows = dataset_statistics_table(rng=0)
    for row in rows:
        spec = PAPER_DATASETS[row["dataset"]]
        row["paper_records"] = spec.num_records
        row["paper_unique_items"] = spec.num_unique_items
    return rows


def test_dataset_statistics_table(benchmark):
    rows = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    emit(
        "Section 7.1 dataset statistics (synthetic stand-ins vs paper)",
        render_series_table(
            rows,
            columns=[
                "dataset",
                "records",
                "unique_items",
                "avg_length",
                "paper_records",
                "paper_unique_items",
            ],
        ),
    )
    assert {row["dataset"] for row in rows} == set(PAPER_DATASETS)
    for row in rows:
        assert row["records"] > 0
        assert row["unique_items"] > 0
