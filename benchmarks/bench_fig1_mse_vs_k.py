"""Figure 1: MSE improvement of gap post-processing vs k (epsilon = 0.7).

Paper reference: Figures 1a and 1b plot, on BMS-POS, the percent improvement
in mean squared error obtained by fusing the free gap information with direct
measurements, for Sparse-Vector-with-Gap with Measures (1a) and
Noisy-Top-K-with-Gap with Measures (1b), as k ranges over 2..25 with the
total budget fixed at 0.7.  Both curves rise toward ~50 % (monotonic
counting queries) and track the theoretical expectations.
"""

from __future__ import annotations

import pytest
from conftest import EPSILON, TRIALS, emit

from repro.evaluation.figures import render_series_table
from repro.evaluation.harness import (
    run_svt_mse_improvement,
    run_top_k_mse_improvement,
)

KS = (2, 5, 10, 15, 20, 25)


def _sweep(runner, counts, rng_seed):
    import numpy as np

    generator = np.random.default_rng(rng_seed)
    rows = []
    for k in KS:
        result = runner(
            counts, epsilon=EPSILON, k=k, trials=TRIALS, monotonic=True, rng=generator
        )
        rows.append(
            {
                "k": k,
                "improvement_percent": result.improvement_percent,
                "theoretical_percent": result.theoretical_percent,
            }
        )
    return rows


@pytest.mark.benchmark(group="figure1")
def test_figure1a_svt_with_gap_mse_vs_k(benchmark, bms_pos_counts):
    rows = benchmark.pedantic(
        _sweep, args=(run_svt_mse_improvement, bms_pos_counts, 0), rounds=1, iterations=1
    )
    emit(
        "Figure 1a: Sparse-Vector-with-Gap with Measures, BMS-POS-like, eps=0.7",
        render_series_table(rows),
    )
    # Shape checks: improvement grows with k and approaches the theory curve.
    assert rows[-1]["improvement_percent"] > rows[0]["improvement_percent"]
    assert rows[-1]["improvement_percent"] > 25.0


@pytest.mark.benchmark(group="figure1")
def test_figure1b_top_k_with_gap_mse_vs_k(benchmark, bms_pos_counts):
    rows = benchmark.pedantic(
        _sweep,
        args=(run_top_k_mse_improvement, bms_pos_counts, 1),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 1b: Noisy-Top-K-with-Gap with Measures, BMS-POS-like, eps=0.7",
        render_series_table(rows),
    )
    assert rows[-1]["improvement_percent"] > rows[0]["improvement_percent"]
    # At k = 25 the theoretical improvement is 48%; the empirical value should
    # be in the same regime on well-separated retail-like counts.
    assert rows[-1]["improvement_percent"] > 30.0
