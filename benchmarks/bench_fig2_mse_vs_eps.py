"""Figure 2: MSE improvement of gap post-processing vs epsilon (k = 10).

Paper reference: Figures 2a and 2b plot, on Kosarak, the percent improvement
in MSE for Sparse-Vector-with-Gap with Measures (2a) and
Noisy-Top-K-with-Gap with Measures (2b) as the total budget varies over
0.1..1.5 with k fixed at 10.  The theoretical improvement is independent of
epsilon, so the curves are essentially flat.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import FIXED_K, TRIALS, emit

from repro.evaluation.figures import render_series_table
from repro.evaluation.harness import (
    run_svt_mse_improvement,
    run_top_k_mse_improvement,
)

EPSILONS = (0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5)


def _sweep(runner, counts, rng_seed):
    generator = np.random.default_rng(rng_seed)
    rows = []
    for epsilon in EPSILONS:
        result = runner(
            counts,
            epsilon=epsilon,
            k=FIXED_K,
            trials=TRIALS,
            monotonic=True,
            rng=generator,
        )
        rows.append(
            {
                "epsilon": epsilon,
                "improvement_percent": result.improvement_percent,
                "theoretical_percent": result.theoretical_percent,
            }
        )
    return rows


@pytest.mark.benchmark(group="figure2")
def test_figure2a_svt_with_gap_mse_vs_eps(benchmark, kosarak_counts):
    rows = benchmark.pedantic(
        _sweep, args=(run_svt_mse_improvement, kosarak_counts, 0), rounds=1, iterations=1
    )
    emit(
        "Figure 2a: Sparse-Vector-with-Gap with Measures, kosarak-like, k=10",
        render_series_table(rows),
    )
    theory = [row["theoretical_percent"] for row in rows]
    assert max(theory) == pytest.approx(min(theory))
    # Flat-ish empirical curve: every point shows a clear positive improvement.
    assert all(row["improvement_percent"] > 10.0 for row in rows)


@pytest.mark.benchmark(group="figure2")
def test_figure2b_top_k_with_gap_mse_vs_eps(benchmark, kosarak_counts):
    rows = benchmark.pedantic(
        _sweep,
        args=(run_top_k_mse_improvement, kosarak_counts, 1),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 2b: Noisy-Top-K-with-Gap with Measures, kosarak-like, k=10",
        render_series_table(rows),
    )
    improvements = np.asarray([row["improvement_percent"] for row in rows])
    assert np.all(improvements > 10.0)
    # Stability in epsilon: spread stays within a modest band.
    assert improvements.max() - improvements.min() < 35.0
