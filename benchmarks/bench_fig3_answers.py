"""Figure 3a-3c: number of above-threshold answers, SVT vs Adaptive SVT.

Paper reference: Figures 3a (BMS-POS), 3b (Kosarak) and 3c (T40I10D100K) show
bar charts of the number of above-threshold answers returned by standard
Sparse Vector versus Adaptive-Sparse-Vector-with-Gap at epsilon = 0.7 as k
varies, with the adaptive bar split into its top-branch and middle-branch
components.  The adaptive mechanism answers at least as many queries, with
most answers coming from the cheap top branch (up to roughly 15 extra answers
at k = 25 in the paper).
"""

from __future__ import annotations

import pytest
from conftest import EPSILON, TRIALS, emit

from repro.evaluation.figures import render_series_table
from repro.evaluation.harness import run_adaptive_comparison

KS = (2, 6, 10, 14, 18, 22)


def _sweep(counts, rng_seed):
    rows = []
    for k in KS:
        result = run_adaptive_comparison(
            counts, epsilon=EPSILON, k=k, trials=TRIALS, monotonic=True, rng=rng_seed
        )
        rows.append(
            {
                "k": k,
                "svt_answers": result.svt_answers,
                "adaptive_answers": result.adaptive_answers,
                "adaptive_top": result.adaptive_top_answers,
                "adaptive_middle": result.adaptive_middle_answers,
            }
        )
    return rows


def _check_shape(rows):
    for row in rows:
        # The adaptive mechanism never answers fewer queries on average.
        assert row["adaptive_answers"] >= row["svt_answers"] - 0.5
        # Branch counts decompose the adaptive total.
        assert row["adaptive_top"] + row["adaptive_middle"] == pytest.approx(
            row["adaptive_answers"]
        )
    # The advantage grows with k (compare the largest and smallest settings).
    gain_small = rows[0]["adaptive_answers"] - rows[0]["svt_answers"]
    gain_large = rows[-1]["adaptive_answers"] - rows[-1]["svt_answers"]
    assert gain_large >= gain_small - 0.5


@pytest.mark.benchmark(group="figure3-answers")
def test_figure3a_bms_pos(benchmark, bms_pos_counts):
    rows = benchmark.pedantic(_sweep, args=(bms_pos_counts, 0), rounds=1, iterations=1)
    emit("Figure 3a: answers, BMS-POS-like, eps=0.7", render_series_table(rows))
    _check_shape(rows)


@pytest.mark.benchmark(group="figure3-answers")
def test_figure3b_kosarak(benchmark, kosarak_counts):
    rows = benchmark.pedantic(_sweep, args=(kosarak_counts, 1), rounds=1, iterations=1)
    emit("Figure 3b: answers, kosarak-like, eps=0.7", render_series_table(rows))
    _check_shape(rows)


@pytest.mark.benchmark(group="figure3-answers")
def test_figure3c_t40(benchmark, quest_counts):
    rows = benchmark.pedantic(_sweep, args=(quest_counts, 2), rounds=1, iterations=1)
    emit("Figure 3c: answers, T40I10D100K-like, eps=0.7", render_series_table(rows))
    _check_shape(rows)
