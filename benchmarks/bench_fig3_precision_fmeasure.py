"""Figure 3d-3f: precision and F-measure, SVT vs Adaptive SVT.

Paper reference: Figures 3d (BMS-POS), 3e (Kosarak) and 3f (T40I10D100K) plot
the precision and F-measure of the above-threshold sets reported by standard
Sparse Vector and by Adaptive-Sparse-Vector-with-Gap at epsilon = 0.7 as k
varies.  Precision is similar for both (the adaptive mechanism's extra noise
barely hurts), while the adaptive mechanism's much higher recall pushes its
F-measure to roughly 1.5x that of standard SVT.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import EPSILON, TRIALS, emit

from repro.evaluation.figures import render_series_table
from repro.evaluation.harness import run_adaptive_comparison

KS = (5, 10, 15, 20, 25)


def _sweep(counts, rng_seed):
    rows = []
    for k in KS:
        result = run_adaptive_comparison(
            counts, epsilon=EPSILON, k=k, trials=TRIALS, monotonic=True, rng=rng_seed
        )
        rows.append(
            {
                "k": k,
                "svt_precision": result.svt_precision,
                "adaptive_precision": result.adaptive_precision,
                "svt_f_measure": result.svt_f_measure,
                "adaptive_f_measure": result.adaptive_f_measure,
            }
        )
    return rows


def _check_shape(rows):
    precisions = np.asarray(
        [[row["svt_precision"], row["adaptive_precision"]] for row in rows]
    )
    # Both mechanisms keep reasonably high precision on heavy-tailed counts
    # and the two stay close (the paper reports "very little difference").
    assert np.all(precisions > 0.5)
    assert np.all(np.abs(precisions[:, 0] - precisions[:, 1]) < 0.3)
    # Adaptive F-measure at least matches SVT's and is clearly better for
    # large k (higher recall at the same budget).
    for row in rows:
        assert row["adaptive_f_measure"] >= row["svt_f_measure"] - 0.05
    assert rows[-1]["adaptive_f_measure"] > rows[-1]["svt_f_measure"]


@pytest.mark.benchmark(group="figure3-quality")
def test_figure3d_bms_pos(benchmark, bms_pos_counts):
    rows = benchmark.pedantic(_sweep, args=(bms_pos_counts, 0), rounds=1, iterations=1)
    emit(
        "Figure 3d: precision / F-measure, BMS-POS-like, eps=0.7",
        render_series_table(rows),
    )
    _check_shape(rows)


@pytest.mark.benchmark(group="figure3-quality")
def test_figure3e_kosarak(benchmark, kosarak_counts):
    rows = benchmark.pedantic(_sweep, args=(kosarak_counts, 1), rounds=1, iterations=1)
    emit(
        "Figure 3e: precision / F-measure, kosarak-like, eps=0.7",
        render_series_table(rows),
    )
    _check_shape(rows)


@pytest.mark.benchmark(group="figure3-quality")
def test_figure3f_t40(benchmark, quest_counts):
    rows = benchmark.pedantic(_sweep, args=(quest_counts, 2), rounds=1, iterations=1)
    emit(
        "Figure 3f: precision / F-measure, T40I10D100K-like, eps=0.7",
        render_series_table(rows),
    )
    _check_shape(rows)
