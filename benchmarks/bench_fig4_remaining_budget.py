"""Figure 4: remaining privacy budget after k adaptive answers.

Paper reference: Figure 4 plots, for all three datasets at epsilon = 0.7, the
percentage of the privacy budget left over when
Adaptive-Sparse-Vector-with-Gap is stopped after returning k answers, for k
between 5 and 25.  The paper reports roughly 40 % of the budget remaining,
because most answers come from the top branch, which is charged half the
per-query budget.
"""

from __future__ import annotations

import pytest
from conftest import EPSILON, TRIALS, emit

from repro.evaluation.figures import render_series_table
from repro.evaluation.harness import run_remaining_budget

KS = (5, 10, 15, 20, 25)


def _sweep(dataset_counts):
    rows = []
    for dataset_index, (name, counts) in enumerate(dataset_counts.items()):
        for k in KS:
            result = run_remaining_budget(
                counts,
                epsilon=EPSILON,
                k=k,
                trials=TRIALS,
                monotonic=True,
                rng=1000 * dataset_index + k,
            )
            rows.append(
                {"dataset": name, "k": k, "remaining_percent": result.remaining_percent}
            )
    return rows


@pytest.mark.benchmark(group="figure4")
def test_figure4_remaining_budget(benchmark, all_dataset_counts):
    rows = benchmark.pedantic(
        _sweep, args=(all_dataset_counts,), rounds=1, iterations=1
    )
    emit(
        "Figure 4: % remaining budget after k adaptive answers, eps=0.7",
        render_series_table(rows),
    )
    # Shape: a substantial fraction of the budget is left on every dataset
    # (the paper reports ~40%); the theoretical cap for all-top-branch runs is
    # 50% of the query budget, i.e. below ~50% overall.
    for row in rows:
        assert 10.0 < row["remaining_percent"] < 55.0
