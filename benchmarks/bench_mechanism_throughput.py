"""Micro-benchmarks of mechanism throughput.

Not a paper figure: these timings document the computational cost of one
mechanism invocation on catalogue-sized query vectors, which matters for the
Monte-Carlo experiment harness (10,000 repetitions per plotted point in the
paper) and for downstream users embedding the mechanisms in query engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.core.noisy_top_k import NoisyTopKWithGap
from repro.core.select_measure import select_and_measure_top_k
from repro.mechanisms.sparse_vector import SparseVector

NUM_QUERIES = 2_000


@pytest.fixture(scope="module")
def counts():
    return np.random.default_rng(0).uniform(0, 10_000, NUM_QUERIES)


@pytest.mark.benchmark(group="throughput")
def test_noisy_top_k_with_gap_throughput(benchmark, counts):
    mech = NoisyTopKWithGap(epsilon=1.0, k=25, monotonic=True)
    rng = np.random.default_rng(1)
    result = benchmark(lambda: mech.select(counts, rng=rng))
    assert len(result.indices) == 25


@pytest.mark.benchmark(group="throughput")
def test_sparse_vector_throughput(benchmark, counts):
    mech = SparseVector(epsilon=1.0, threshold=9_000.0, k=25, monotonic=True)
    rng = np.random.default_rng(2)
    result = benchmark(lambda: mech.run(counts, rng=rng))
    assert result.num_processed >= 1


@pytest.mark.benchmark(group="throughput")
def test_adaptive_svt_throughput(benchmark, counts):
    mech = AdaptiveSparseVectorWithGap(
        epsilon=1.0, threshold=9_000.0, k=25, monotonic=True
    )
    rng = np.random.default_rng(3)
    result = benchmark(lambda: mech.run(counts, rng=rng))
    assert result.num_processed >= 1


@pytest.mark.benchmark(group="throughput")
def test_select_then_measure_throughput(benchmark, counts):
    rng = np.random.default_rng(4)
    result = benchmark(
        lambda: select_and_measure_top_k(counts, epsilon=0.7, k=10, rng=rng)
    )
    assert len(result.indices) == 10
