"""Micro-benchmarks of mechanism throughput.

Not a paper figure: these timings document the computational cost of one
mechanism invocation on catalogue-sized query vectors, which matters for the
Monte-Carlo experiment harness (10,000 repetitions per plotted point in the
paper) and for downstream users embedding the mechanisms in query engines.

Two benchmark groups:

* ``throughput`` -- one per-trial mechanism invocation (the original seed
  benchmarks, unchanged for run-to-run comparability);
* ``throughput-batch`` -- the vectorized batch engine at ``BATCH_TRIALS``
  trials per round, paired with a same-workload per-trial loop so the
  speedup (trials/sec batch vs loop) is measurable run-to-run, plus
  harness-level batch-vs-reference pairs at 1,000 Monte-Carlo trials.
  Compare OPS within a pair after normalising by trials per round: the
  batch benchmarks run ``BATCH_TRIALS`` trials per round, the loop
  benchmarks ``LOOP_TRIALS``.
* ``throughput-facade`` -- the unified mechanism API facade
  (``repro.api.run``) against a direct ``batch_*`` call on the identical
  workload; the pair measures the spec-validation + registry-dispatch
  overhead, which must stay negligible (the two rates should be within a
  few percent of each other).
* ``throughput-sharded`` -- a very large batch (``SHARDED_TRIALS`` >= 10,000
  trials) as one single-process ``(B, n)`` run versus the same workload
  through the dispatch layer (``shards=`` on a worker pool).  The sharded
  path wins twice: chunked execution keeps the trial matrices
  cache-resident (a large single batch falls off a memory cliff even on one
  core), and the chunks spread across however many cores the machine has.
* ``throughput-cache`` -- the same seeded request against a warm versus a
  cold content-addressed disk cache; a hit is an ``.npz`` load and must be
  orders of magnitude faster than recomputing.
* ``throughput-service`` -- the full job-queue service round trip (submit ->
  N workers draining the durable file queue -> merged result) against the
  identical workload through the in-process ``run(..., shards=N)`` path.
  The service arm's workers are *threads* (the numpy kernels release the
  GIL, but pure-Python portions serialize) while the baseline uses a
  process pool, so the ratio bundles queue/broker/manifest overhead with
  that execution difference -- read it as a conservative lower bound on
  service throughput, not a pure queue-overhead measurement.  The service
  result is asserted bit-identical to the in-process one.
* ``throughput-tenancy`` -- fill-and-drain of the durable file queue with
  multi-tenant, multi-priority tagged tasks through the fair-share claim
  scheduler versus the identical untagged drain through the plain FIFO
  path (``scheduler="fifo"``); the ratio is the per-claim cost of the
  control plane's scheduling.
* ``throughput-hunt`` -- one single-round DP-violation hunt
  (``repro.hunt``) with every trial batch routed as a service job versus
  the identical hunt through the in-process facade; the ratio is the
  queue/broker/tenancy overhead the hunter pays for dogfooding the
  production stack, on a many-small-jobs workload (16 batches per round)
  rather than ``throughput-service``'s one-big-job shape.

Setting the environment variable ``REPRO_BENCH_SMOKE=1`` (what
``scripts/run_benchmarks.py --smoke`` does) shrinks every workload to
seconds-total sizes so CI can exercise the benchmark code paths on every PR
without producing meaningful numbers.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import AdaptiveSvtSpec, NoisyTopKSpec, run as api_run
from repro.dispatch import DiskResultCache, WorkerPool

#: CI smoke mode: tiny sizes, same code paths (see run_benchmarks.py --smoke).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.core.noisy_top_k import NoisyTopKWithGap
from repro.core.select_measure import select_and_measure_top_k
from repro.engine.batch import (
    batch_adaptive_svt,
    batch_noisy_top_k,
    batch_sparse_vector,
)
from repro.evaluation.harness import run_svt_mse_improvement, run_top_k_mse_improvement
from repro.mechanisms.sparse_vector import SparseVector

NUM_QUERIES = 64 if SMOKE else 2_000
#: Trials per round of the batch-engine benchmarks (the acceptance workload).
BATCH_TRIALS = 32 if SMOKE else 1_000
#: Trials per round of the paired per-trial-loop benchmarks (kept smaller so
#: one round stays short; throughput comparisons are per trial).
LOOP_TRIALS = 4 if SMOKE else 50
#: Monte-Carlo trials of the harness-level benchmarks.
HARNESS_TRIALS = 32 if SMOKE else 1_000
#: Trials of the sharded-vs-single-process pairs.  The acceptance criterion
#: targets B >= 10,000 -- the regime where one monolithic ``(B, n)`` batch
#: outgrows the memory hierarchy and sharded chunks win even on one core.
SHARDED_TRIALS = 128 if SMOKE else 50_000
#: Trials of the cache hit-vs-miss pair (each miss executes and stores this
#: many trials; each hit loads them back).
CACHE_TRIALS = 64 if SMOKE else 10_000
#: Trials per job of the service-vs-inprocess pair, and the worker count
#: draining the queue.  The chunk size is pinned (not the default) so the
#: smoke run still produces a multi-task queue.
SERVICE_TRIALS = 64 if SMOKE else 20_000
SERVICE_WORKERS = 2
SERVICE_CHUNK = 16 if SMOKE else 1_024
#: Tasks per round of the tenancy claim-overhead pair, spread over this many
#: tenants and priority classes in the fair-share arm.
TENANCY_TASKS = 16 if SMOKE else 256
TENANCY_TENANTS = 8
#: Trials per side per round of the hunt pair: one single-round campaign
#: against svt-variant-6 (8 neighbouring pairs x 2 sides), service-routed
#: vs in-process.  Total trials per hunt = 16 x HUNT_SCHEDULE[0].
HUNT_SCHEDULE = (48,) if SMOKE else (1_000,)
HUNT_CHUNK = 16 if SMOKE else 500
#: SVT threshold for the batch group: roughly the top-100th of the uniform
#: counts, i.e. the paper's top-2k..top-8k policy regime for k=25, where the
#: mechanism scans a realistic few-hundred-query prefix per trial.
BATCH_SVT_THRESHOLD = 9_500.0


@pytest.fixture(scope="module")
def counts():
    return np.random.default_rng(0).uniform(0, 10_000, NUM_QUERIES)


@pytest.mark.benchmark(group="throughput")
def test_noisy_top_k_with_gap_throughput(benchmark, counts):
    mech = NoisyTopKWithGap(epsilon=1.0, k=25, monotonic=True)
    rng = np.random.default_rng(1)
    result = benchmark(lambda: mech.select(counts, rng=rng))
    assert len(result.indices) == 25


@pytest.mark.benchmark(group="throughput")
def test_sparse_vector_throughput(benchmark, counts):
    mech = SparseVector(epsilon=1.0, threshold=9_000.0, k=25, monotonic=True)
    rng = np.random.default_rng(2)
    result = benchmark(lambda: mech.run(counts, rng=rng))
    assert result.num_processed >= 1


@pytest.mark.benchmark(group="throughput")
def test_adaptive_svt_throughput(benchmark, counts):
    mech = AdaptiveSparseVectorWithGap(
        epsilon=1.0, threshold=9_000.0, k=25, monotonic=True
    )
    rng = np.random.default_rng(3)
    result = benchmark(lambda: mech.run(counts, rng=rng))
    assert result.num_processed >= 1


@pytest.mark.benchmark(group="throughput")
def test_select_then_measure_throughput(benchmark, counts):
    rng = np.random.default_rng(4)
    result = benchmark(
        lambda: select_and_measure_top_k(counts, epsilon=0.7, k=10, rng=rng)
    )
    assert len(result.indices) == 10


# ---------------------------------------------------------------------------
# batch engine vs per-trial loop (group "throughput-batch")
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="throughput-batch")
def test_noisy_top_k_batch_throughput(benchmark, counts):
    mech = NoisyTopKWithGap(epsilon=1.0, k=25, monotonic=True)
    rng = np.random.default_rng(10)
    result = benchmark(lambda: batch_noisy_top_k(mech, counts, BATCH_TRIALS, rng=rng))
    assert result.indices.shape == (BATCH_TRIALS, 25)


@pytest.mark.benchmark(group="throughput-batch")
def test_noisy_top_k_loop_throughput(benchmark, counts):
    mech = NoisyTopKWithGap(epsilon=1.0, k=25, monotonic=True)
    rng = np.random.default_rng(10)
    results = benchmark(
        lambda: [mech.select(counts, rng=rng) for _ in range(LOOP_TRIALS)]
    )
    assert len(results) == LOOP_TRIALS


@pytest.mark.benchmark(group="throughput-batch")
def test_sparse_vector_batch_throughput(benchmark, counts):
    mech = SparseVector(
        epsilon=1.0, threshold=BATCH_SVT_THRESHOLD, k=25, monotonic=True
    )
    rng = np.random.default_rng(11)
    result = benchmark(lambda: batch_sparse_vector(mech, counts, BATCH_TRIALS, rng=rng))
    assert result.trials == BATCH_TRIALS


@pytest.mark.benchmark(group="throughput-batch")
def test_sparse_vector_loop_throughput(benchmark, counts):
    mech = SparseVector(
        epsilon=1.0, threshold=BATCH_SVT_THRESHOLD, k=25, monotonic=True
    )
    rng = np.random.default_rng(11)
    results = benchmark(lambda: [mech.run(counts, rng=rng) for _ in range(LOOP_TRIALS)])
    assert len(results) == LOOP_TRIALS


@pytest.mark.benchmark(group="throughput-batch")
def test_adaptive_svt_batch_throughput(benchmark, counts):
    mech = AdaptiveSparseVectorWithGap(
        epsilon=1.0, threshold=BATCH_SVT_THRESHOLD, k=25, monotonic=True
    )
    rng = np.random.default_rng(12)
    result = benchmark(lambda: batch_adaptive_svt(mech, counts, BATCH_TRIALS, rng=rng))
    assert result.trials == BATCH_TRIALS


@pytest.mark.benchmark(group="throughput-batch")
def test_adaptive_svt_loop_throughput(benchmark, counts):
    mech = AdaptiveSparseVectorWithGap(
        epsilon=1.0, threshold=BATCH_SVT_THRESHOLD, k=25, monotonic=True
    )
    rng = np.random.default_rng(12)
    results = benchmark(lambda: [mech.run(counts, rng=rng) for _ in range(LOOP_TRIALS)])
    assert len(results) == LOOP_TRIALS


# ---------------------------------------------------------------------------
# facade dispatch overhead (group "throughput-facade")
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="throughput-facade")
def test_facade_noisy_top_k_throughput(benchmark, counts):
    """The full spec -> validate -> registry -> batch-executor path."""
    spec = NoisyTopKSpec(queries=counts, epsilon=1.0, k=25, monotonic=True)
    rng = np.random.default_rng(10)
    result = benchmark(
        lambda: api_run(spec, engine="batch", trials=BATCH_TRIALS, rng=rng)
    )
    assert result.indices.shape == (BATCH_TRIALS, 25)


@pytest.mark.benchmark(group="throughput-facade")
def test_facade_direct_batch_throughput(benchmark, counts):
    """The identical workload via batch_noisy_top_k, bypassing the facade."""
    mech = NoisyTopKWithGap(epsilon=1.0, k=25, monotonic=True)
    rng = np.random.default_rng(10)
    result = benchmark(lambda: batch_noisy_top_k(mech, counts, BATCH_TRIALS, rng=rng))
    assert result.indices.shape == (BATCH_TRIALS, 25)


# ---------------------------------------------------------------------------
# harness-level Monte-Carlo runs (group "throughput-harness")
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="throughput-harness")
def test_harness_top_k_batch(benchmark, counts):
    result = benchmark(
        lambda: run_top_k_mse_improvement(
            counts, epsilon=0.7, k=10, trials=HARNESS_TRIALS, rng=0, engine="batch"
        )
    )
    assert result.trials == HARNESS_TRIALS


@pytest.mark.benchmark(group="throughput-harness")
def test_harness_top_k_reference(benchmark, counts):
    result = benchmark(
        lambda: run_top_k_mse_improvement(
            counts, epsilon=0.7, k=10, trials=HARNESS_TRIALS, rng=0,
            engine="reference",
        )
    )
    assert result.trials == HARNESS_TRIALS


@pytest.mark.benchmark(group="throughput-harness")
def test_harness_svt_batch(benchmark, counts):
    result = benchmark(
        lambda: run_svt_mse_improvement(
            counts, epsilon=0.7, k=10, trials=HARNESS_TRIALS, rng=0, engine="batch"
        )
    )
    assert result.trials == HARNESS_TRIALS


@pytest.mark.benchmark(group="throughput-harness")
def test_harness_svt_reference(benchmark, counts):
    result = benchmark(
        lambda: run_svt_mse_improvement(
            counts, epsilon=0.7, k=10, trials=HARNESS_TRIALS, rng=0,
            engine="reference",
        )
    )
    assert result.trials == HARNESS_TRIALS


# ---------------------------------------------------------------------------
# sharded dispatch vs one monolithic batch (group "throughput-sharded")
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sharded_spec(counts):
    return NoisyTopKSpec(queries=counts, epsilon=1.0, k=25, monotonic=True)


@pytest.fixture(scope="module")
def sharded_adaptive_spec(counts):
    return AdaptiveSvtSpec(
        queries=counts, epsilon=1.0, threshold=BATCH_SVT_THRESHOLD, k=25,
        monotonic=True,
    )


@pytest.fixture(scope="module")
def worker_pool():
    # One long-lived pool for the whole module: the benchmark measures
    # steady-state dispatch (how a service would run), not process startup.
    with WorkerPool() as pool:
        yield pool


@pytest.mark.benchmark(group="throughput-sharded")
def test_sharded_single_process_batch(benchmark, sharded_spec):
    """Baseline: the whole trial axis as one in-process (B, n) batch."""
    result = benchmark(lambda: api_run(sharded_spec, trials=SHARDED_TRIALS, rng=0))
    assert result.trials == SHARDED_TRIALS


@pytest.mark.benchmark(group="throughput-sharded")
def test_sharded_worker_pool(benchmark, sharded_spec, worker_pool):
    """The same workload fanned out over the dispatch layer's worker pool."""
    result = benchmark(
        lambda: api_run(
            sharded_spec,
            trials=SHARDED_TRIALS,
            rng=0,
            shards=worker_pool.workers,
            pool=worker_pool,
        )
    )
    assert result.trials == SHARDED_TRIALS


@pytest.mark.benchmark(group="throughput-sharded")
def test_sharded_single_process_adaptive(benchmark, sharded_adaptive_spec):
    """Adaptive-SVT baseline: the blockwise stream scan over one giant batch
    suffers hardest from the large-B memory cliff."""
    result = benchmark(
        lambda: api_run(sharded_adaptive_spec, trials=SHARDED_TRIALS, rng=0)
    )
    assert result.trials == SHARDED_TRIALS


@pytest.mark.benchmark(group="throughput-sharded")
def test_sharded_worker_pool_adaptive(benchmark, sharded_adaptive_spec, worker_pool):
    result = benchmark(
        lambda: api_run(
            sharded_adaptive_spec,
            trials=SHARDED_TRIALS,
            rng=0,
            shards=worker_pool.workers,
            pool=worker_pool,
        )
    )
    assert result.trials == SHARDED_TRIALS


# ---------------------------------------------------------------------------
# content-addressed result cache, hit vs miss (group "throughput-cache")
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="throughput-cache")
def test_cache_hit(benchmark, sharded_spec, tmp_path):
    """A warm cache serves the seeded request as one metadata + npz load."""
    cache = DiskResultCache(tmp_path / "warm")
    api_run(sharded_spec, trials=CACHE_TRIALS, rng=0, cache=cache)
    result = benchmark(
        lambda: api_run(sharded_spec, trials=CACHE_TRIALS, rng=0, cache=cache)
    )
    assert result.trials == CACHE_TRIALS


@pytest.mark.benchmark(group="throughput-cache")
def test_cache_miss(benchmark, sharded_spec, tmp_path):
    """Every round is a distinct seed: full execution plus a cache store."""
    cache = DiskResultCache(tmp_path / "cold")
    seeds = iter(range(10_000_000))
    result = benchmark(
        lambda: api_run(
            sharded_spec, trials=CACHE_TRIALS, rng=next(seeds), cache=cache
        )
    )
    assert result.trials == CACHE_TRIALS


# ---------------------------------------------------------------------------
# job-queue service vs in-process sharded run (group "throughput-service")
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="throughput-service")
def test_service_inprocess_sharded(benchmark, sharded_spec):
    """Baseline: the identical workload through run(..., shards=N).  Seeds
    advance per round to mirror the queue arm (fresh compute every round)."""
    seeds = iter(range(10_000_000))
    result = benchmark(
        lambda: api_run(
            sharded_spec,
            trials=SERVICE_TRIALS,
            rng=next(seeds),
            shards=SERVICE_WORKERS,
            chunk_trials=SERVICE_CHUNK,
        )
    )
    assert result.trials == SERVICE_TRIALS


@pytest.mark.benchmark(group="throughput-service")
def test_service_queue_workers(benchmark, sharded_spec, tmp_path):
    """submit -> N workers draining the durable file queue -> merged result.

    Every round is a fresh job under a distinct seed (so no round is served
    from the shared result cache); the last round's result is asserted
    bit-identical to the in-process ``run(..., shards=N)`` reference.
    """
    from repro.service import JobClient, run_workers

    client = JobClient(tmp_path / "service")
    seeds = iter(range(10_000_000))
    last = {}

    def one_job():
        seed = next(seeds)
        handle = client.submit(
            sharded_spec,
            trials=SERVICE_TRIALS,
            seed=seed,
            chunk_trials=SERVICE_CHUNK,
        )
        run_workers(client.broker, SERVICE_WORKERS, timeout=600.0)
        last["seed"] = seed
        return handle.result()

    result = benchmark(one_job)
    assert result.trials == SERVICE_TRIALS
    reference = api_run(
        sharded_spec,
        trials=SERVICE_TRIALS,
        rng=last["seed"],
        shards=SERVICE_WORKERS,
        chunk_trials=SERVICE_CHUNK,
    )
    np.testing.assert_array_equal(result.indices, reference.indices)
    np.testing.assert_array_equal(result.gaps, reference.gaps)
    np.testing.assert_array_equal(result.epsilon_consumed, reference.epsilon_consumed)


# ---------------------------------------------------------------------------
# fair-share claim overhead vs plain FIFO (group "throughput-tenancy")
# ---------------------------------------------------------------------------


def _drain_queue(queue, expected: int) -> int:
    claimed_count = 0
    while True:
        claimed = queue.claim()
        if claimed is None:
            break
        queue.ack(claimed.task_id, token=claimed.attempts)
        claimed_count += 1
    assert claimed_count == expected
    return claimed_count


@pytest.mark.benchmark(group="throughput-tenancy")
def test_tenancy_fair_claim(benchmark, tmp_path):
    """Fill a durable queue with tasks tagged across tenants and priority
    classes, then drain it through the fair-share scheduler -- the cost of
    multi-tenant claim ordering (metadata reads + deficit round-robin) on
    top of the baseline below."""
    from repro.service import FileJobQueue

    rounds = iter(range(10_000_000))

    def fill_and_drain():
        queue = FileJobQueue(tmp_path / f"fair-{next(rounds)}")
        for index in range(TENANCY_TASKS):
            queue.put(
                f"payload-{index}",
                task_id=f"task-{index:06d}",
                priority=index % 3,
                tenant=f"tenant-{index % TENANCY_TENANTS}",
            )
        return _drain_queue(queue, TENANCY_TASKS)

    assert benchmark(fill_and_drain) == TENANCY_TASKS


@pytest.mark.benchmark(group="throughput-tenancy")
def test_tenancy_fifo_claim(benchmark, tmp_path):
    """Baseline: the identical fill-and-drain through the plain FIFO claim
    path (``scheduler="fifo"``, untagged tasks) -- what the queue did
    before the control plane existed."""
    from repro.service import FileJobQueue

    rounds = iter(range(10_000_000))

    def fill_and_drain():
        queue = FileJobQueue(tmp_path / f"fifo-{next(rounds)}", scheduler="fifo")
        for index in range(TENANCY_TASKS):
            queue.put(f"payload-{index}", task_id=f"task-{index:06d}")
        return _drain_queue(queue, TENANCY_TASKS)

    assert benchmark(fill_and_drain) == TENANCY_TASKS


# ---------------------------------------------------------------------------
# dynamic hunt: service-routed vs in-process trials (group "throughput-hunt")
# ---------------------------------------------------------------------------


def _hunt_entry():
    from repro.hunt import hunt_catalogue

    return next(
        entry for entry in hunt_catalogue() if entry.label == "svt-variant-6"
    )


@pytest.mark.benchmark(group="throughput-hunt")
def test_hunt_inprocess_trials(benchmark):
    """Baseline: one single-round hunt with every trial batch executed
    through the facade directly.  Seeds advance per round so no round is
    served from the runner's memo table."""
    from repro.hunt import HuntConfig, InProcessRunner, run_hunt

    entry = _hunt_entry()
    config = HuntConfig(schedule_override=HUNT_SCHEDULE, chunk_trials=HUNT_CHUNK)
    seeds = iter(range(10_000_000))

    def one_hunt():
        return run_hunt(
            entry,
            InProcessRunner(chunk_trials=HUNT_CHUNK),
            seed=next(seeds),
            config=config,
        )

    outcome = benchmark(one_hunt)
    assert outcome.total_trials == 16 * HUNT_SCHEDULE[0]


@pytest.mark.benchmark(group="throughput-hunt")
def test_hunt_service_routed(benchmark, tmp_path):
    """The identical hunt with every batch submitted as a job on a fresh
    service root and drained by the worker pool -- the production path the
    campaign orchestrator dogfoods.  The last round is asserted identical
    to the in-process hunt at the same seed (witness and trial count),
    which the service determinism contract guarantees."""
    from repro.hunt import HuntConfig, InProcessRunner, ServiceRunner, run_hunt

    entry = _hunt_entry()
    config = HuntConfig(schedule_override=HUNT_SCHEDULE, chunk_trials=HUNT_CHUNK)
    seeds = iter(range(10_000_000))
    rounds = iter(range(10_000_000))
    last = {}

    def one_hunt():
        seed = next(seeds)
        runner = ServiceRunner(
            root=tmp_path / f"hunt-{next(rounds)}",
            workers=SERVICE_WORKERS,
            chunk_trials=HUNT_CHUNK,
        )
        last["seed"] = seed
        return run_hunt(entry, runner, seed=seed, config=config)

    outcome = benchmark(one_hunt)
    assert outcome.total_trials == 16 * HUNT_SCHEDULE[0]
    assert outcome.epsilon_charged is not None
    reference = run_hunt(
        entry,
        InProcessRunner(chunk_trials=HUNT_CHUNK),
        seed=last["seed"],
        config=config,
    )
    assert outcome.witness == reference.witness
    assert outcome.total_trials == reference.total_trials
