"""Comparison of the correct SVT variants (Lyu et al. SVT1 vs SVT2) and the
paper's with-gap / adaptive mechanisms.

Not a paper figure: this bench quantifies the context the paper builds on --
SVT1 (the recommended budget allocation) versus SVT2 (the textbook variant
that refreshes the threshold noise after every answer) -- and places the
paper's Sparse-Vector-with-Gap and Adaptive-Sparse-Vector-with-Gap next to
them, all at the same total budget.  Reported per mechanism: how many
above-threshold queries it reports, and the precision / F-measure of the
reported set.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import EPSILON, TRIALS, emit

from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.evaluation.figures import render_series_table
from repro.evaluation.harness import pick_threshold
from repro.evaluation.metrics import f_measure, precision_recall
from repro.mechanisms.sparse_vector import SparseVectorWithGap
from repro.mechanisms.svt_variants import SvtVariant1, SvtVariant2

K = 10


def _mechanisms(threshold):
    return {
        "SVT1 (Lyu et al.)": SvtVariant1(
            epsilon=EPSILON, threshold=threshold, k=K, monotonic=True
        ),
        "SVT2 (resample threshold)": SvtVariant2(
            epsilon=EPSILON, threshold=threshold, k=K, monotonic=True
        ),
        "SVT-with-Gap (Wang et al.)": SparseVectorWithGap(
            epsilon=EPSILON, threshold=threshold, k=K, monotonic=True
        ),
        "Adaptive-SVT-with-Gap (paper)": AdaptiveSparseVectorWithGap(
            epsilon=EPSILON, threshold=threshold, k=K, monotonic=True
        ),
    }


def _compare(counts):
    rng = np.random.default_rng(0)
    totals = {}
    for _ in range(TRIALS):
        threshold = pick_threshold(counts, K, rng=rng)
        actual_above = [int(i) for i in np.nonzero(counts > threshold)[0]]
        for label, mechanism in _mechanisms(threshold).items():
            result = mechanism.run(counts, rng=rng)
            precision, recall = precision_recall(result.above_indices, actual_above)
            record = totals.setdefault(label, {"answers": [], "precision": [], "f": []})
            record["answers"].append(result.num_answered)
            record["precision"].append(precision)
            record["f"].append(f_measure(precision, recall))
    rows = []
    for label, record in totals.items():
        rows.append(
            {
                "mechanism": label,
                "answers": float(np.mean(record["answers"])),
                "precision": float(np.mean(record["precision"])),
                "f_measure": float(np.mean(record["f"])),
            }
        )
    return rows


@pytest.mark.benchmark(group="svt-variants")
def test_svt_variant_comparison(benchmark, bms_pos_counts):
    rows = benchmark.pedantic(_compare, args=(bms_pos_counts,), rounds=1, iterations=1)
    emit(
        f"SVT family comparison, BMS-POS-like, eps={EPSILON}, k={K}",
        render_series_table(rows),
    )
    by_name = {row["mechanism"]: row for row in rows}
    # All gap-free / with-gap variants answer at most k; the adaptive variant
    # answers at least as many as SVT1.
    assert by_name["SVT1 (Lyu et al.)"]["answers"] <= K + 1e-9
    assert by_name["SVT2 (resample threshold)"]["answers"] <= K + 1e-9
    assert (
        by_name["Adaptive-SVT-with-Gap (paper)"]["answers"]
        >= by_name["SVT1 (Lyu et al.)"]["answers"] - 0.5
    )
    # All variants keep high precision on well-separated counts.
    for row in rows:
        assert row["precision"] > 0.6
