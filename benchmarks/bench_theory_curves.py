"""Theoretical expected-improvement curves (the dashed lines in Figures 1-2).

Paper reference: Corollary 1 (Noisy-Top-K-with-Gap) and the Section 6.2
derivation (Sparse-Vector-with-Gap) give closed-form expected improvements
that are plotted alongside the empirical curves in Figures 1 and 2.  This
benchmark tabulates them and checks their limiting behaviour (50 % for
monotonic queries, 20 % for general SVT queries).
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.evaluation.figures import render_series_table
from repro.postprocess.theory import (
    svt_expected_improvement,
    svt_limit_improvement,
    top_k_expected_improvement,
    top_k_limit_improvement,
)

KS = (1, 2, 5, 10, 15, 20, 25, 50, 100)


def _build_rows():
    rows = []
    for k in KS:
        rows.append(
            {
                "k": k,
                "top_k_monotonic_percent": 100.0 * top_k_expected_improvement(k, 1.0),
                "svt_monotonic_percent": 100.0 * svt_expected_improvement(k, True),
                "svt_general_percent": 100.0 * svt_expected_improvement(k, False),
            }
        )
    return rows


@pytest.mark.benchmark(group="theory")
def test_theoretical_improvement_curves(benchmark):
    rows = benchmark.pedantic(_build_rows, rounds=1, iterations=1)
    emit("Theoretical expected improvement curves (Cor. 1 and Sec. 6.2)", render_series_table(rows))
    # Limits claimed in the paper.
    assert top_k_limit_improvement(1.0) == pytest.approx(0.5)
    assert svt_limit_improvement(True) == pytest.approx(0.5)
    assert svt_limit_improvement(False) == pytest.approx(0.2)
    # Monotone growth toward the limits.
    top_curve = [row["top_k_monotonic_percent"] for row in rows]
    assert all(a <= b for a, b in zip(top_curve, top_curve[1:]))
    assert rows[-1]["top_k_monotonic_percent"] == pytest.approx(49.5, abs=0.5)
    assert rows[-1]["svt_general_percent"] < 20.0
