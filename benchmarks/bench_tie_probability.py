"""Appendix A.1: tie-probability bound for discretised Laplace noise.

Paper reference: Appendix A.1 bounds the probability that any two of n
discretised-Laplace-noised queries tie -- the delta by which the pure-DP
guarantee of Noisy Max degrades on finite-precision hardware -- by roughly
``n^2 * gamma * epsilon``.  This benchmark tabulates the exact pairwise tie
probability and the union bound over a sweep of the discretisation base
gamma, confirming that the failure probability is negligible at
machine-epsilon-scale bases.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.analysis.ties import (
    discrete_laplace_tie_probability,
    tie_probability_bound,
)
from repro.evaluation.figures import render_series_table

BASES = (1.0, 1e-3, 1e-6, 1e-9, 2.0**-52)
NUM_QUERIES = 1_657  # the BMS-POS item-catalogue size
EPSILON = 1.0


def _build_rows():
    rows = []
    for base in BASES:
        rows.append(
            {
                "gamma": f"{base:.2e}",
                "pairwise_tie_probability": f"{discrete_laplace_tie_probability(EPSILON, base):.3e}",
                "union_bound_all_items": f"{tie_probability_bound(NUM_QUERIES, EPSILON, base):.3e}",
                "_bound_value": tie_probability_bound(NUM_QUERIES, EPSILON, base),
                "_pairwise_value": discrete_laplace_tie_probability(EPSILON, base),
            }
        )
    return rows


@pytest.mark.benchmark(group="appendix")
def test_tie_probability_sweep(benchmark):
    rows = benchmark.pedantic(_build_rows, rounds=1, iterations=1)
    emit(
        "Appendix A.1: tie probability vs discretisation base (n=1657, eps=1)",
        render_series_table(
            rows, columns=["gamma", "pairwise_tie_probability", "union_bound_all_items"]
        ),
    )
    # The bound decreases with gamma and is negligible at machine epsilon.
    bounds = [row["_bound_value"] for row in rows]
    assert all(a >= b for a, b in zip(bounds, bounds[1:]))
    assert bounds[-1] < 1e-8
    # The union bound always dominates the pairwise probability.
    for row in rows:
        assert row["_bound_value"] >= row["_pairwise_value"] - 1e-15
