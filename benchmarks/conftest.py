"""Shared fixtures and configuration for the benchmark suite.

The benchmarks double as the experiment harness: each module regenerates the
data series of one paper figure or table (printed to stdout) while
``pytest-benchmark`` times the underlying Monte-Carlo run.  The number of
trials per point is deliberately smaller than the paper's 10,000 so that the
whole suite finishes in minutes on a laptop; EXPERIMENTS.md records the
settings used and the shape comparison against the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generators import make_dataset

#: Monte-Carlo trials per plotted point (the paper uses 10,000).
TRIALS = 60
#: Privacy budget used in Figures 1, 3 and 4.
EPSILON = 0.7
#: Fixed k used in Figure 2.
FIXED_K = 10

#: Synthetic-dataset scales used by the benchmarks.  These are larger than
#: the library's quick defaults so that the top item counts are separated by
#: much more than the selection noise, as they are on the full-size datasets
#: used in the paper (see EXPERIMENTS.md).
BENCH_SCALES = {"BMS-POS": 0.1, "kosarak": 0.03, "T40I10D100K": 0.1}


def _dataset_counts(name: str, seed: int) -> np.ndarray:
    return make_dataset(name, scale=BENCH_SCALES[name], rng=seed).item_counts()


@pytest.fixture(scope="session")
def bms_pos_counts():
    """Item counts of the BMS-POS-like synthetic dataset."""
    return _dataset_counts("BMS-POS", seed=0)


@pytest.fixture(scope="session")
def kosarak_counts():
    """Item counts of the Kosarak-like synthetic dataset."""
    return _dataset_counts("kosarak", seed=1)


@pytest.fixture(scope="session")
def quest_counts():
    """Item counts of the T40I10D100K-like synthetic dataset."""
    return _dataset_counts("T40I10D100K", seed=2)


@pytest.fixture(scope="session")
def all_dataset_counts(bms_pos_counts, kosarak_counts, quest_counts):
    """Mapping of dataset name to item-count vector."""
    return {
        "BMS-POS": bms_pos_counts,
        "kosarak": kosarak_counts,
        "T40I10D100K": quest_counts,
    }


def emit(title: str, table: str) -> None:
    """Print a labelled results table (captured with ``pytest -s`` or ``-rA``)."""
    print(f"\n=== {title} ===")
    print(table)
