"""Adaptive above-threshold monitoring: the Section 6 use case end to end.

Scenario: a click-stream operator wants to flag every page whose daily visit
count exceeds an alerting threshold, under a fixed privacy budget.  Standard
Sparse Vector stops after its k-th flag; the paper's
Adaptive-Sparse-Vector-with-Gap spends less budget on pages that are far over
the threshold and therefore flags more pages -- or the same number with
budget left over for the next day.

The example compares the two mechanisms on a Kosarak-like click-stream,
reports precision / recall / F-measure against the ground truth, shows the
per-flag confidence bounds of Lemma 5, and prints the leftover budget.

Run with::

    python examples/adaptive_threshold_queries.py
"""

from __future__ import annotations

import numpy as np

from repro import AdaptiveSparseVectorWithGap, SparseVector, gap_lower_confidence_bound, make_dataset
from repro.evaluation.metrics import f_measure, precision_recall
from repro.mechanisms.sparse_vector import SvtBranch


def report_mechanism(name, result, actual_above):
    precision, recall = precision_recall(result.above_indices, actual_above)
    print(f"{name}:")
    print(f"  flagged pages          : {result.num_answered}")
    print(f"  precision / recall / F : {precision:.2f} / {recall:.2f} / "
          f"{f_measure(precision, recall):.2f}")
    print(f"  budget spent           : {result.metadata.epsilon_spent:.3f} "
          f"of {result.metadata.epsilon:.3f}")


def main() -> None:
    epsilon = 0.7
    k = 10

    database = make_dataset("kosarak", scale=0.03, rng=2)
    counts = database.item_counts()
    threshold = database.kth_largest_count(4 * k)
    actual_above = [int(i) for i in np.nonzero(counts > threshold)[0]]

    print(f"dataset: {database.name} ({database.num_records} sessions, "
          f"{database.num_unique_items} pages)")
    print(f"alerting threshold: {threshold:.0f} visits "
          f"({len(actual_above)} pages are truly above)\n")

    standard = SparseVector(
        epsilon=epsilon, threshold=threshold, k=k, monotonic=True
    ).run(counts, rng=0)
    report_mechanism("standard Sparse Vector", standard, actual_above)
    print()

    adaptive_mech = AdaptiveSparseVectorWithGap(
        epsilon=epsilon, threshold=threshold, k=k, monotonic=True
    )
    adaptive = adaptive_mech.run(counts, rng=0)
    report_mechanism("Adaptive-Sparse-Vector-with-Gap", adaptive, actual_above)
    branches = adaptive.branch_counts()
    print(f"  top-branch answers     : {branches[SvtBranch.TOP]} "
          f"(cheap: {adaptive_mech.epsilon_top:.3f} each)")
    print(f"  middle-branch answers  : {branches[SvtBranch.MIDDLE]} "
          f"(standard: {adaptive_mech.epsilon_middle:.3f} each)")
    print(f"  budget left over       : {100 * adaptive.remaining_budget_fraction:.0f}%\n")

    # Per-flag lower confidence bounds from the free gaps (Lemma 5).
    print("per-flag 95% lower confidence bounds on the true visit count:")
    shown = 0
    for outcome in adaptive.outcomes:
        if not outcome.above or shown >= 5:
            continue
        eps_star = (
            adaptive_mech.epsilon_top
            if outcome.branch is SvtBranch.TOP
            else adaptive_mech.epsilon_middle
        )
        bound = gap_lower_confidence_bound(
            outcome.gap,
            threshold,
            eps0=adaptive_mech.epsilon_threshold,
            eps_star=eps_star,
            confidence=0.95,
        )
        print(f"  page #{outcome.index:<6} estimate {outcome.gap + threshold:8.0f}   "
              f">= {bound:8.0f} with 95% confidence   (true {counts[outcome.index]:.0f})")
        shown += 1


if __name__ == "__main__":
    main()
