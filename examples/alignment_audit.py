"""Privacy audit: exercising the randomness-alignment framework.

The paper proves its mechanisms private via randomness alignments (Lemma 1).
This example turns that proof technique into an executable audit:

1. build a pair of adjacent databases (one transaction removed),
2. run the paper's alignment constructors on sampled executions of
   Noisy-Top-K-with-Gap and Adaptive-Sparse-Vector-with-Gap, checking that
   each alignment preserves the output and stays within the privacy budget,
3. independently estimate output probabilities on the adjacent pair by
   Monte-Carlo and test the epsilon bound (the style of check that exposed
   the broken Sparse Vector variants catalogued by Lyu et al.).

Run with::

    python examples/alignment_audit.py
"""

from __future__ import annotations

import numpy as np

from repro import AdaptiveSparseVectorWithGap, NoisyTopKWithGap, make_dataset
from repro.alignment import AlignmentChecker, EmpiricalDPVerifier


def main() -> None:
    database = make_dataset("T40I10D100K", scale=0.01, rng=4)
    items = [item for item, _ in database.top_items(40)]
    neighbour = database.remove_record(0)

    counts = database.item_counts(items)
    neighbour_counts = neighbour.item_counts(items)
    print(f"adjacent databases: {database.num_records} vs {neighbour.num_records} "
          f"transactions over {len(items)} tracked items")
    changed = int(np.sum(counts != neighbour_counts))
    print(f"item counts that changed by removing one transaction: {changed}\n")

    # ---------------------------------------------------------- alignments
    epsilon = 0.8
    checker = AlignmentChecker(trials=200, rng=0)

    top_k = NoisyTopKWithGap(epsilon=epsilon, k=3, monotonic=True)
    report = checker.check_noisy_top_k(top_k, counts, neighbour_counts)
    print("Noisy-Top-K-with-Gap alignment check (Equation 2):")
    print(f"  executions checked      : {report.trials}")
    print(f"  outputs preserved on D' : {report.output_preserved}")
    print(f"  worst alignment cost    : {report.max_cost:.4f} "
          f"(budget {report.epsilon_claimed:g})")
    print(f"  verdict                 : {'PASS' if report.passed else 'FAIL'}\n")

    threshold = database.kth_largest_count(12)
    factory = lambda: AdaptiveSparseVectorWithGap(  # noqa: E731
        epsilon=epsilon, threshold=threshold, k=3, monotonic=True
    )
    report = checker.check_adaptive_svt(factory, counts, neighbour_counts)
    print("Adaptive-Sparse-Vector-with-Gap alignment check (Equation 3):")
    print(f"  executions checked      : {report.trials}")
    print(f"  outputs preserved on D' : {report.output_preserved}")
    print(f"  worst alignment cost    : {report.max_cost:.4f} "
          f"(budget {report.epsilon_claimed:g})")
    print(f"  verdict                 : {'PASS' if report.passed else 'FAIL'}\n")

    # ------------------------------------------------------ empirical check
    small_counts = counts[:6]
    small_neighbour = neighbour_counts[:6]
    audit_epsilon = 0.5
    mechanism = NoisyTopKWithGap(epsilon=audit_epsilon, k=2, monotonic=True)
    verifier = EmpiricalDPVerifier(epsilon=audit_epsilon, trials=4000, slack=1.5)
    result = verifier.check(
        run_on_d=lambda g: mechanism.select(small_counts, rng=g),
        run_on_d_prime=lambda g: mechanism.select(small_neighbour, rng=g),
        event=lambda selection: tuple(selection.indices),
        rng=1,
    )
    print("Monte-Carlo differential-privacy test (selected index pair):")
    print(f"  trials per database     : {result.trials}")
    print(f"  worst probability ratio : {result.worst_ratio:.3f} "
          f"(bound e^eps = {np.exp(audit_epsilon):.3f}, with sampling slack)")
    print(f"  verdict                 : {'PASS' if result.passed else 'FAIL'}")


if __name__ == "__main__":
    main()
