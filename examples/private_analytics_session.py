"""An interactive private-analytics session over a retail dataset.

Demonstrates :class:`repro.engine.PrivateAnalyticsSession`, the
budget-tracked frontend that strings the paper's mechanisms together the way
a deployed query engine would:

* the whole session owns one privacy budget,
* "which products sell best?" is answered by Noisy-Top-K-with-Gap (+BLUE),
* "which products exceeded N sales?" is answered by
  Adaptive-Sparse-Vector-with-Gap, and *only the budget it actually consumed*
  is charged -- the adaptive savings of Figure 4 directly fund follow-up
  questions in the same session,
* specific products can be measured directly with the Laplace mechanism,
* the session refuses questions once the budget is gone.

Run with::

    python examples/private_analytics_session.py
"""

from __future__ import annotations

from repro import PrivateAnalyticsSession, make_dataset
from repro.accounting.budget import BudgetExceededError


def main() -> None:
    database = make_dataset("BMS-POS", scale=0.05, rng=9)
    session = PrivateAnalyticsSession(database, total_epsilon=1.0, rng=9)

    print(f"dataset: {database.name} ({database.num_records} transactions)")
    print(f"session budget: epsilon = {session.total_epsilon}\n")

    # Question 1: the five best-selling products, with count estimates.
    answer = session.top_k_items(k=5, epsilon=0.4, measure=True)
    print("Q1 - top 5 products (selection + measurement, eps=0.4):")
    for item, estimate in zip(answer.items, answer.estimates):
        print(f"   product #{item:<6} estimated sales {estimate:9.0f}")
    print(f"   budget remaining: {session.remaining_epsilon:.3f}\n")

    # Question 2: products that sold more than a public threshold.  The
    # adaptive mechanism usually resolves these in its cheap branch, so the
    # charge is below the 0.4 reserved.
    threshold = database.kth_largest_count(30)
    above = session.items_above(threshold=threshold, k=6, epsilon=0.4, confidence=0.95)
    print(f"Q2 - products with more than {threshold:.0f} sales (reserved eps=0.4):")
    for item, estimate, bound in zip(above.items, above.estimates, above.lower_bounds):
        print(
            f"   product #{item:<6} estimate {estimate:9.0f}   "
            f">= {bound:9.0f} at 95% confidence"
        )
    print(f"   charged only eps={above.epsilon_charged:.3f} "
          f"(adaptive savings: {0.4 - above.epsilon_charged:.3f})")
    print(f"   budget remaining: {session.remaining_epsilon:.3f}\n")

    # Question 3: measure two specific products with part of what is left.
    follow_up = answer.items[:2]
    released = session.measure_items(follow_up, epsilon=0.1)
    print("Q3 - direct measurements of two products (eps=0.1):")
    for item, value in released.items():
        print(f"   product #{item:<6} noisy count {value:9.0f}")
    print(f"   budget remaining: {session.remaining_epsilon:.3f}\n")

    # Question 4: deliberately too expensive -- the session refuses it.
    print("Q4 - asking for more than the remaining budget:")
    try:
        session.top_k_items(k=3, epsilon=session.remaining_epsilon + 0.1)
    except BudgetExceededError as error:
        print(f"   refused: {error}\n")

    report = session.report()
    print("session report:")
    for question in report.questions:
        print(f"   {question['label']:<24} eps={question['epsilon']:.3f}")
    print(f"   total spent {report.spent:.3f} of {report.total_epsilon:.3f} "
          f"({report.remaining:.3f} unused)")


if __name__ == "__main__":
    main()
