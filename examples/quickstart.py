"""Quickstart: the paper's mechanisms on a toy transaction database.

Walks through the core API in five steps:

1. build a transaction database and its item-count workload,
2. select the approximate top-k items with Noisy-Top-K-with-Gap,
3. find above-threshold items with Adaptive-Sparse-Vector-with-Gap,
4. measure the selected items with the Laplace mechanism, and
5. fuse the free gaps with the measurements (the paper's headline use case).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdaptiveSparseVectorWithGap,
    CompositionAccountant,
    LaplaceMechanism,
    NoisyTopKWithGap,
    PrivacyBudget,
    blue_top_k_estimate,
    make_dataset,
)


def main() -> None:
    rng_seed = 7

    # ------------------------------------------------------------------ data
    database = make_dataset("BMS-POS", scale=0.02, rng=rng_seed)
    counts = database.item_counts()
    print(f"database: {database.name}")
    print(f"  transactions: {database.num_records}, items: {database.num_unique_items}")

    # A total privacy budget for the whole analysis, tracked explicitly.
    budget = PrivacyBudget(1.0)
    selection_budget, measurement_budget = budget.halves()
    accountant = CompositionAccountant(target_epsilon=budget.epsilon)

    # ------------------------------------------------- top-k selection + gaps
    k = 5
    selector = NoisyTopKWithGap(epsilon=selection_budget.epsilon, k=k, monotonic=True)
    selection = selector.select(counts, rng=rng_seed)
    accountant.record(selector.name, selection_budget.epsilon, notes=f"k={k}")

    print(f"\nNoisy-Top-K-with-Gap (epsilon={selection_budget.epsilon:g}):")
    print(f"  selected item indexes : {selection.indices}")
    print(f"  free consecutive gaps : {np.round(selection.gaps, 1)}")

    # --------------------------------------------------- direct measurements
    measurer = LaplaceMechanism(
        epsilon=measurement_budget.epsilon, l1_sensitivity=float(k)
    )
    measurements = measurer.release(counts[selection.indices], rng=rng_seed + 1)
    accountant.record(measurer.name, measurement_budget.epsilon, notes=f"k={k}")

    # ------------------------------------------------------- BLUE gap fusion
    fused = blue_top_k_estimate(measurements.values, selection.gaps[: k - 1], lam=1.0)
    truth = counts[selection.indices]

    print("\nitem   true count   measurement   gap-fused estimate")
    for item, true_value, measured, estimate in zip(
        selection.indices, truth, measurements.values, fused
    ):
        print(f"{item:>4}   {true_value:>10.0f}   {measured:>11.1f}   {estimate:>18.1f}")
    baseline_mse = float(np.mean((measurements.values - truth) ** 2))
    fused_mse = float(np.mean((fused - truth) ** 2))
    print(
        f"\nsquared error: measurements only {baseline_mse:.1f}  "
        f"with free gaps {fused_mse:.1f}  "
        f"({100 * (1 - fused_mse / baseline_mse):.0f}% better on this draw)"
    )

    # ----------------------------------------------------- adaptive SVT demo
    threshold = database.kth_largest_count(40)
    svt = AdaptiveSparseVectorWithGap(
        epsilon=0.5, threshold=threshold, k=5, monotonic=True
    )
    run = svt.run(counts, rng=rng_seed + 2)
    print(f"\nAdaptive-Sparse-Vector-with-Gap (threshold={threshold:.0f}, epsilon=0.5):")
    print(f"  above-threshold items : {run.above_indices}")
    print(f"  free gaps             : {np.round(run.gaps, 1)}")
    print(f"  budget left over      : {100 * run.remaining_budget_fraction:.0f}%")

    print(f"\ntotal privacy cost recorded: {accountant.total_epsilon:g} "
          f"(target {budget.epsilon:g})")


if __name__ == "__main__":
    main()
