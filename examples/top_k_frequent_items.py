"""Private frequent-item analytics: the Section 5.2 use case end to end.

Scenario: a retailer wants to publish the identities and (approximate) sale
counts of its k best-selling products without revealing any single customer's
basket.  The paper's recipe:

1. spend half the budget on Noisy-Top-K-with-Gap to *select* the products
   (and collect the free gaps),
2. spend the other half on Laplace measurements of the selected products,
3. post-process with the BLUE fusion of Theorem 3.

This example runs the recipe over several Monte-Carlo repetitions and reports
the empirical MSE improvement next to Corollary 1's prediction, and also
shows the pairwise-gap feature of Section 5.1 (estimating the margin between
any two selected products for free).

Run with::

    python examples/top_k_frequent_items.py [k]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    make_dataset,
    select_and_measure_top_k,
    top_k_expected_improvement,
    NoisyTopKWithGap,
)


def demonstrate_pairwise_gaps(counts: np.ndarray, k: int, epsilon: float) -> None:
    """Show the free pairwise-gap estimates between selected products."""
    selector = NoisyTopKWithGap(epsilon=epsilon, k=k, monotonic=True)
    result = selector.select(counts, rng=11)
    best, runner_up = result.indices[0], result.indices[1]
    estimated_margin = result.pairwise_gap(0, 1)
    true_margin = counts[best] - counts[runner_up]
    print("free pairwise-gap example:")
    print(
        f"  estimated sales margin between product #{best} and #{runner_up}: "
        f"{estimated_margin:.0f} (true {true_margin:.0f})"
    )
    if k >= 3:
        third = result.indices[2]
        print(
            f"  estimated margin between #{best} and #{third}: "
            f"{result.pairwise_gap(0, 2):.0f} "
            f"(true {counts[best] - counts[third]:.0f})"
        )


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    epsilon = 0.7
    repetitions = 300

    database = make_dataset("BMS-POS", scale=0.1, rng=3)
    counts = database.item_counts()
    print(
        f"dataset: {database.name} "
        f"({database.num_records} transactions, {database.num_unique_items} products)"
    )
    print(f"publishing the top {k} products with total budget epsilon={epsilon}\n")

    rng = np.random.default_rng(5)
    baseline_errors, fused_errors = [], []
    for _ in range(repetitions):
        run = select_and_measure_top_k(
            counts, epsilon=epsilon, k=k, monotonic=True, rng=rng
        )
        baseline_errors.extend(run.baseline_squared_errors())
        fused_errors.extend(run.fused_squared_errors())

    baseline_mse = float(np.mean(baseline_errors))
    fused_mse = float(np.mean(fused_errors))
    improvement = 100.0 * (1.0 - fused_mse / baseline_mse)
    predicted = 100.0 * top_k_expected_improvement(k, lam=1.0)

    print(f"mean squared error over {repetitions} runs:")
    print(f"  measurements only        : {baseline_mse:10.1f}")
    print(f"  measurements + free gaps : {fused_mse:10.1f}")
    print(f"  improvement              : {improvement:5.1f}%  "
          f"(Corollary 1 predicts {predicted:.1f}%)\n")

    demonstrate_pairwise_gaps(counts, k, epsilon / 2.0)


if __name__ == "__main__":
    main()
