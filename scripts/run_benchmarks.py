#!/usr/bin/env python
"""Run the mechanism-throughput benchmark suite and record the results.

Runs ``benchmarks/bench_mechanism_throughput.py`` under ``pytest-benchmark``
with JSON output, writes ``BENCH_throughput.json`` at the repository root
(the perf-trajectory artifact), and prints a batch-vs-loop speedup summary
in trials/sec derived from the paired benchmarks.

Usage::

    python scripts/run_benchmarks.py            # throughput groups only
    python scripts/run_benchmarks.py --all      # every benchmark module
    python scripts/run_benchmarks.py --smoke    # tiny sizes, throwaway output

``--smoke`` shrinks every workload (``REPRO_BENCH_SMOKE=1``, see
``benchmarks/bench_mechanism_throughput.py``) and writes the JSON under
the gitignored ``.bench-scratch/`` directory instead of
``BENCH_throughput.json`` -- it exercises the benchmark code paths in
seconds (CI runs it on every PR) without overwriting the recorded
performance numbers or leaving throwaway output in the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_throughput.json"
SMOKE_OUTPUT = REPO_ROOT / ".bench-scratch" / "BENCH_throughput.smoke.json"

#: (label, batch benchmark, loop benchmark, trials per batch round, trials
#: per loop round) -- must stay in sync with bench_mechanism_throughput.py.
PAIRS = [
    ("noisy-top-k-with-gap", "test_noisy_top_k_batch_throughput",
     "test_noisy_top_k_loop_throughput", 1_000, 50),
    ("sparse-vector", "test_sparse_vector_batch_throughput",
     "test_sparse_vector_loop_throughput", 1_000, 50),
    ("adaptive-svt", "test_adaptive_svt_batch_throughput",
     "test_adaptive_svt_loop_throughput", 1_000, 50),
    ("harness-top-k-mse", "test_harness_top_k_batch",
     "test_harness_top_k_reference", 1_000, 1_000),
    ("harness-svt-mse", "test_harness_svt_batch",
     "test_harness_svt_reference", 1_000, 1_000),
    # Facade-dispatch overhead guard: identical workload through repro.api.run
    # vs a direct batch_noisy_top_k call -- the "speedup" should stay ~1.0x
    # (registry dispatch + spec validation must remain negligible).
    ("facade-vs-direct-top-k", "test_facade_direct_batch_throughput",
     "test_facade_noisy_top_k_throughput", 1_000, 1_000),
    # Dispatch-layer pairs: the sharded worker pool vs one monolithic
    # single-process batch at B=50,000, and a warm vs cold result cache at
    # B=10,000.  Trials per round must match SHARDED_TRIALS / CACHE_TRIALS.
    ("sharded-vs-single-top-k", "test_sharded_worker_pool",
     "test_sharded_single_process_batch", 50_000, 50_000),
    ("sharded-vs-single-adaptive", "test_sharded_worker_pool_adaptive",
     "test_sharded_single_process_adaptive", 50_000, 50_000),
    ("cache-hit-vs-miss", "test_cache_hit", "test_cache_miss", 10_000, 10_000),
    # Job-queue service round trip (submit -> thread workers -> merged
    # result) vs the identical workload through in-process run(...,
    # shards=N) on a process pool; the gap bundles queue/broker/manifest
    # overhead with the thread-vs-process execution difference (a
    # conservative bound on service throughput).  Trials per round must
    # match SERVICE_TRIALS.
    ("service-vs-inprocess", "test_service_queue_workers",
     "test_service_inprocess_sharded", 20_000, 20_000),
    # Multi-tenant control plane: fill-and-drain of the durable queue
    # through the fair-share claim scheduler vs the plain FIFO path.  The
    # "trials" here are claimed tasks per round (must match TENANCY_TASKS);
    # the ratio is the per-claim overhead of tenancy scheduling.
    ("tenancy-fair-vs-fifo", "test_tenancy_fair_claim",
     "test_tenancy_fifo_claim", 256, 256),
    # Dynamic DP-violation hunt: every trial batch as a service job vs the
    # in-process facade.  16 batches x HUNT_SCHEDULE[0] trials per round.
    ("hunt-service-vs-inprocess", "test_hunt_service_routed",
     "test_hunt_inprocess_trials", 16_000, 16_000),
]


def run_pytest(args: argparse.Namespace) -> int:
    target = (
        ["benchmarks"]
        if args.all
        else ["benchmarks/bench_mechanism_throughput.py"]
    )
    output = SMOKE_OUTPUT if args.smoke else OUTPUT
    output.parent.mkdir(parents=True, exist_ok=True)
    command = [
        sys.executable, "-m", "pytest", *target,
        "-q", "--benchmark-only", f"--benchmark-json={output}",
    ]
    env = dict(os.environ)
    if args.smoke:
        env["REPRO_BENCH_SMOKE"] = "1"
    env_note = "PYTHONPATH must include src/ (see ROADMAP.md)"
    print(f"$ {' '.join(command)}  # {env_note}")
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def summarize(output: Path) -> None:
    if not output.exists():
        print(f"no {output.name} produced; nothing to summarize", file=sys.stderr)
        return
    with output.open() as handle:
        payload = json.load(handle)
    by_name = {
        bench["name"]: bench["stats"]["mean"] for bench in payload.get("benchmarks", [])
    }
    print()
    print(f"{'workload':<24} {'batch trials/s':>16} {'loop trials/s':>16} {'speedup':>9}")
    for label, batch_name, loop_name, batch_trials, loop_trials in PAIRS:
        if batch_name not in by_name or loop_name not in by_name:
            continue
        batch_rate = batch_trials / by_name[batch_name]
        loop_rate = loop_trials / by_name[loop_name]
        print(
            f"{label:<24} {batch_rate:>16,.0f} {loop_rate:>16,.0f} "
            f"{batch_rate / loop_rate:>8.1f}x"
        )
    print(f"\nresults written to {output.relative_to(REPO_ROOT)}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--all", action="store_true",
        help="run every benchmark module, not just the throughput suite",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workloads + scratch output file: exercises the benchmark "
        "code paths in seconds without touching BENCH_throughput.json",
    )
    args = parser.parse_args()
    status = run_pytest(args)
    summarize(SMOKE_OUTPUT if args.smoke else OUTPUT)
    if args.smoke:
        print("(smoke mode: sizes are tiny, the rates above are meaningless)")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
