"""Setup shim for environments without PEP 660 editable-install support.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that ``python setup.py develop`` works in offline environments that
lack the ``wheel`` package required by ``pip install -e .``.
"""

from setuptools import setup

setup()
