"""repro: free-gap differentially private selection mechanisms.

A reproduction of "Free Gap Information from the Differentially Private
Sparse Vector and Noisy Max Mechanisms" (Ding, Wang, Zhang, Kifer; VLDB
2019).  The package provides:

* the paper's mechanisms -- :class:`NoisyTopKWithGap`, :class:`NoisyMaxWithGap`
  and :class:`AdaptiveSparseVectorWithGap`;
* the classical baselines they improve on -- :class:`NoisyTopK`,
  :class:`ReportNoisyMax`, :class:`SparseVector`, :class:`SparseVectorWithGap`
  and the :class:`LaplaceMechanism` / :class:`ExponentialMechanism`;
* the free-gap post-processing estimators (BLUE fusion, inverse-variance
  fusion, confidence bounds);
* an executable randomness-alignment framework and an empirical DP verifier;
* transaction-data substrates and the experiment harness that regenerates
  every figure of the paper's evaluation;
* the **unified mechanism API** (:mod:`repro.api`): declarative,
  JSON-round-trippable specs (``NoisyTopKSpec``, ``SparseVectorSpec``,
  ``AdaptiveSvtSpec``, ...), an executor registry mapping every spec to a
  vectorized ``batch`` and a per-trial ``reference`` engine, and the single
  :func:`repro.api.run` facade through which the harness, the analytics
  session and the CLI all execute mechanisms and charge budgets.

Quickstart
----------
>>> import numpy as np
>>> from repro import NoisyTopKWithGap
>>> counts = np.array([120.0, 90.0, 85.0, 30.0, 5.0])
>>> result = NoisyTopKWithGap(epsilon=1.0, k=2, monotonic=True).select(counts, rng=0)
>>> len(result.indices), len(result.gaps)
(2, 2)

The same release via the declarative API (spec -> registry -> facade):

>>> from repro import NoisyTopKSpec, run
>>> spec = NoisyTopKSpec(queries=counts, epsilon=1.0, k=2, monotonic=True)
>>> run(spec, engine="reference", trials=1, rng=0).trial_indices().shape
(2,)
"""

from repro.accounting import BudgetOdometer, CompositionAccountant, PrivacyBudget
from repro.api import (
    AdaptiveSvtSpec,
    Engine,
    LaplaceSpec,
    MechanismSpec,
    NoisyTopKSpec,
    Result,
    SelectMeasureSpec,
    SparseVectorSpec,
    SpecValidationError,
    SvtVariantSpec,
    UnsupportedEngineError,
    run,
    spec_from_dict,
    spec_from_json,
    validate_engine,
)
from repro.core import (
    AdaptiveSparseVectorWithGap,
    AdaptiveSvtConfig,
    NoisyMaxWithGap,
    NoisyTopKWithGap,
    SelectThenMeasureResult,
    select_and_measure_svt,
    select_and_measure_top_k,
)
from repro.datasets import TransactionDatabase, make_dataset
from repro.engine import PrivateAnalyticsSession
from repro.mechanisms import (
    ExponentialMechanism,
    LaplaceMechanism,
    NoisyTopK,
    ReportNoisyMax,
    SelectionResult,
    SparseVector,
    SparseVectorWithGap,
    SvtOutcome,
    SvtResult,
)
from repro.postprocess import (
    blue_top_k_estimate,
    blue_variance_ratio,
    fuse_gap_and_measurement,
    gap_lower_confidence_bound,
    svt_expected_improvement,
    top_k_expected_improvement,
)
from repro.queries import CountingQuery, Query, QueryWorkload, item_count_workload

__version__ = "1.0.0"

__all__ = [
    # unified mechanism API (spec -> registry -> facade)
    "MechanismSpec",
    "NoisyTopKSpec",
    "SparseVectorSpec",
    "AdaptiveSvtSpec",
    "SelectMeasureSpec",
    "LaplaceSpec",
    "SvtVariantSpec",
    "Result",
    "Engine",
    "run",
    "spec_from_dict",
    "spec_from_json",
    "validate_engine",
    "SpecValidationError",
    "UnsupportedEngineError",
    # core mechanisms
    "NoisyTopKWithGap",
    "NoisyMaxWithGap",
    "AdaptiveSparseVectorWithGap",
    "AdaptiveSvtConfig",
    "SelectThenMeasureResult",
    "select_and_measure_top_k",
    "select_and_measure_svt",
    # baselines
    "NoisyTopK",
    "ReportNoisyMax",
    "SparseVector",
    "SparseVectorWithGap",
    "LaplaceMechanism",
    "ExponentialMechanism",
    "SelectionResult",
    "SvtOutcome",
    "SvtResult",
    # postprocessing
    "blue_top_k_estimate",
    "blue_variance_ratio",
    "fuse_gap_and_measurement",
    "gap_lower_confidence_bound",
    "top_k_expected_improvement",
    "svt_expected_improvement",
    # engine and substrates
    "PrivateAnalyticsSession",
    "TransactionDatabase",
    "make_dataset",
    "Query",
    "CountingQuery",
    "QueryWorkload",
    "item_count_workload",
    "PrivacyBudget",
    "BudgetOdometer",
    "CompositionAccountant",
    "__version__",
]
