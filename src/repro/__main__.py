"""``python -m repro`` -- alias for the experiment/service CLI.

Every verb of :mod:`repro.evaluation.cli` (``run-spec``, ``submit``,
``serve-worker``, ``metrics``, ``chaos``, ``lint``, ``verify-privacy``,
...) is reachable from the shorter module path::

    python -m repro lint
    python -m repro verify-privacy
    python -m repro run-spec spec.json --trials 100000 --seed 0
"""

from repro.evaluation.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
