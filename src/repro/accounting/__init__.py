"""Privacy-budget accounting.

The experiments in Section 7 of the paper repeatedly (a) split a total
privacy budget between a selection step and a measurement step, and (b) track
how much budget Adaptive-Sparse-Vector-with-Gap has consumed (it can stop
with budget left over -- Figure 4).  This subpackage provides the small
amount of machinery needed for that:

* :class:`~repro.accounting.budget.PrivacyBudget` -- an immutable budget
  value with split/scale helpers.
* :class:`~repro.accounting.budget.BudgetOdometer` -- a mutable ledger that
  mechanisms charge as they consume budget, with overdraft protection.
* :class:`~repro.accounting.composition.CompositionAccountant` -- sequential
  composition over a sequence of mechanism invocations, producing per-step
  records for reports.
"""

from repro.accounting.budget import BudgetExceededError, BudgetOdometer, PrivacyBudget
from repro.accounting.composition import CompositionAccountant, CompositionRecord

__all__ = [
    "PrivacyBudget",
    "BudgetOdometer",
    "BudgetExceededError",
    "CompositionAccountant",
    "CompositionRecord",
]
