"""Privacy budgets and odometers.

A :class:`PrivacyBudget` is an immutable epsilon value with convenience
operations for the budget splits used throughout the paper (half for
selection, half for measurement; the 1 : k^(2/3) threshold/query allocation
inside Sparse Vector, controlled by the hyper-parameter theta in
Algorithm 2).  A :class:`BudgetOdometer` is a mutable ledger: mechanisms
charge it as they go and it refuses to overdraft, mirroring the loop guard on
Line 16 of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


class BudgetExceededError(RuntimeError):
    """Raised when a charge would push an odometer past its total budget."""


@dataclass(frozen=True)
class PrivacyBudget:
    """An immutable pure-DP privacy budget (an epsilon value).

    Parameters
    ----------
    epsilon:
        The privacy-loss budget; must be positive.
    """

    epsilon: float

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")

    def split(self, *fractions: float) -> Tuple["PrivacyBudget", ...]:
        """Split the budget into parts proportional to ``fractions``.

        The fractions must be positive and sum to at most 1 (within a small
        tolerance); any unassigned remainder is simply not returned.

        Examples
        --------
        >>> selection, measurement = PrivacyBudget(1.0).split(0.5, 0.5)
        >>> selection.epsilon
        0.5
        """
        if not fractions:
            raise ValueError("at least one fraction is required")
        if any(f <= 0 for f in fractions):
            raise ValueError("fractions must be positive")
        if sum(fractions) > 1.0 + 1e-9:
            raise ValueError("fractions must sum to at most 1")
        return tuple(PrivacyBudget(self.epsilon * f) for f in fractions)

    def halves(self) -> Tuple["PrivacyBudget", "PrivacyBudget"]:
        """The common selection/measurement 50-50 split used in Section 7.2."""
        return self.split(0.5, 0.5)

    def svt_allocation(self, k: int, monotonic: bool = True) -> Tuple[float, float]:
        """Threshold/query budget allocation recommended by Lyu et al.

        Returns ``(epsilon_threshold, epsilon_queries)`` using the ratio
        ``1 : k^(2/3)`` for monotonic queries and ``1 : (2k)^(2/3)``
        otherwise, as used in Sections 6.2 and 7.2 of the paper.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        ratio = k ** (2.0 / 3.0) if monotonic else (2.0 * k) ** (2.0 / 3.0)
        threshold = self.epsilon / (1.0 + ratio)
        return threshold, self.epsilon - threshold

    def scaled(self, factor: float) -> "PrivacyBudget":
        """A budget scaled by a positive factor."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return PrivacyBudget(self.epsilon * factor)

    def __float__(self) -> float:
        return self.epsilon


class BudgetOdometer:
    """A mutable ledger of privacy-budget consumption.

    Parameters
    ----------
    total:
        The total budget available, as a float epsilon or a
        :class:`PrivacyBudget`.

    Notes
    -----
    Charges are recorded with a label so that experiment reports can show
    where the budget went (e.g. threshold noise vs. top-branch queries vs.
    middle-branch queries in Adaptive-Sparse-Vector-with-Gap).
    """

    def __init__(self, total) -> None:
        epsilon = float(total.epsilon if isinstance(total, PrivacyBudget) else total)
        if epsilon <= 0:
            raise ValueError(f"total budget must be positive, got {epsilon}")
        self._total = epsilon
        self._charges: List[Tuple[str, float]] = []

    @property
    def total(self) -> float:
        """The total budget."""
        return self._total

    @property
    def spent(self) -> float:
        """Budget consumed so far."""
        return float(sum(amount for _, amount in self._charges))

    @property
    def remaining(self) -> float:
        """Budget still available (never negative)."""
        return max(0.0, self._total - self.spent)

    @property
    def remaining_fraction(self) -> float:
        """Fraction of the total budget still available (Figure 4 metric)."""
        return self.remaining / self._total

    def can_charge(self, amount: float) -> bool:
        """Whether a charge of ``amount`` fits in the remaining budget."""
        if amount < 0:
            raise ValueError("charge amount must be non-negative")
        return self.spent + amount <= self._total + 1e-12

    def charge(self, amount: float, label: str = "") -> None:
        """Record a charge, raising :class:`BudgetExceededError` on overdraft."""
        if amount < 0:
            raise ValueError("charge amount must be non-negative")
        if not self.can_charge(amount):
            raise BudgetExceededError(
                f"charge of {amount:g} exceeds remaining budget "
                f"{self.remaining:g} (total {self._total:g})"
            )
        self._charges.append((label, float(amount)))

    def breakdown(self) -> Dict[str, float]:
        """Total charge per label."""
        summary: Dict[str, float] = {}
        for label, amount in self._charges:
            summary[label] = summary.get(label, 0.0) + amount
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BudgetOdometer(total={self._total:g}, spent={self.spent:g}, "
            f"remaining={self.remaining:g})"
        )
