"""Sequential composition accounting.

Pure differential privacy composes additively: running mechanisms with
budgets ``eps_1, ..., eps_m`` and releasing all their outputs satisfies
``(sum_i eps_i)``-differential privacy.  The :class:`CompositionAccountant`
records each invocation so that an end-to-end experiment (selection followed
by measurement, repeated over Monte-Carlo trials) can report its overall
privacy cost and verify it against the intended total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class CompositionRecord:
    """One entry in a composition ledger.

    Attributes
    ----------
    mechanism:
        Name of the mechanism that was run.
    epsilon:
        Privacy budget the invocation was charged.
    notes:
        Free-form metadata (e.g. the number of queries selected).
    """

    mechanism: str
    epsilon: float
    notes: str = ""


@dataclass
class CompositionAccountant:
    """Tracks the sequential composition of several mechanism invocations.

    Parameters
    ----------
    target_epsilon:
        Optional cap; :meth:`record` raises ``ValueError`` if an invocation
        would exceed it.  ``None`` means unlimited.
    """

    target_epsilon: Optional[float] = None
    records: List[CompositionRecord] = field(default_factory=list)

    def record(self, mechanism: str, epsilon: float, notes: str = "") -> CompositionRecord:
        """Record one mechanism invocation and return its ledger entry."""
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if (
            self.target_epsilon is not None
            and self.total_epsilon + epsilon > self.target_epsilon + 1e-12
        ):
            raise ValueError(
                f"recording {mechanism} with epsilon={epsilon:g} would exceed the "
                f"target budget {self.target_epsilon:g} "
                f"(already spent {self.total_epsilon:g})"
            )
        entry = CompositionRecord(mechanism=mechanism, epsilon=float(epsilon), notes=notes)
        self.records.append(entry)
        return entry

    @property
    def total_epsilon(self) -> float:
        """Total privacy cost under sequential composition."""
        return float(sum(r.epsilon for r in self.records))

    def by_mechanism(self) -> Dict[str, float]:
        """Total epsilon charged per mechanism name."""
        summary: Dict[str, float] = {}
        for record in self.records:
            summary[record.mechanism] = summary.get(record.mechanism, 0.0) + record.epsilon
        return summary

    def assert_within(self, epsilon: float, tolerance: float = 1e-9) -> None:
        """Raise ``AssertionError`` if the ledger exceeds ``epsilon``."""
        if self.total_epsilon > epsilon + tolerance:
            raise AssertionError(
                f"composed privacy cost {self.total_epsilon:g} exceeds {epsilon:g}"
            )
