"""Randomness-alignment framework (Section 4 and Lemma 1 of the paper).

The paper proves its mechanisms private by exhibiting, for every pair of
adjacent databases and every output, a *local alignment*: a map from the
noise vector H used on database D to a noise vector H' that makes the
mechanism produce the same output on the neighbour D'.  If the alignments
are acyclic, countable, and have bounded cost (the sum of
``|eta_i - eta'_i| / alpha_i``), Lemma 1 concludes epsilon-differential
privacy.

This subpackage provides an executable version of that framework:

* :class:`~repro.alignment.alignments.LocalAlignment` -- a concrete shifted
  noise vector with its cost, plus acyclicity bookkeeping.
* :mod:`~repro.alignment.mechanisms` -- constructors of the paper's
  alignments: Equation (2) for Noisy-Top-K-with-Gap and Equation (3) for
  Adaptive-Sparse-Vector-with-Gap.  Each constructor also *replays* the
  mechanism on the aligned noise and checks that the output is preserved,
  which is exactly the property a local alignment must have.
* :class:`~repro.alignment.checker.AlignmentChecker` -- samples executions
  and verifies the Lemma 1 conditions (output preservation and cost bound)
  on each of them.
* :class:`~repro.alignment.verifier.EmpiricalDPVerifier` -- an independent,
  purely statistical check: estimate output probabilities on adjacent inputs
  by Monte-Carlo and test the epsilon bound (in the spirit of DP
  counterexample detectors).  Useful as a sanity net in tests.
"""

from repro.alignment.alignments import AlignmentCostExceeded, LocalAlignment
from repro.alignment.checker import AlignmentChecker, AlignmentReport
from repro.alignment.mechanisms import (
    adaptive_svt_alignment,
    noisy_top_k_alignment,
)
from repro.alignment.verifier import EmpiricalDPVerifier, VerifierReport

__all__ = [
    "LocalAlignment",
    "AlignmentCostExceeded",
    "AlignmentChecker",
    "AlignmentReport",
    "noisy_top_k_alignment",
    "adaptive_svt_alignment",
    "EmpiricalDPVerifier",
    "VerifierReport",
]
