"""Local alignments as concrete, checkable objects.

Definition 4 of the paper defines a local alignment as a map from the noise
vector used on database D to a noise vector that makes the mechanism produce
the same output on an adjacent database D'.  In proofs the map is given
symbolically; here we represent a *realised* alignment -- the original noise
vector, the shifted one, and the per-coordinate Laplace scales -- so that its
cost (Definition 6) can be computed numerically and its output-preservation
property can be verified by re-executing the mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


class AlignmentCostExceeded(AssertionError):
    """Raised when a realised alignment costs more than the claimed budget."""


@dataclass(frozen=True)
class LocalAlignment:
    """A realised local alignment ``H -> H'`` with cost accounting.

    Attributes
    ----------
    original:
        The noise vector ``H`` used in the execution on database D.
    aligned:
        The shifted noise vector ``H' = phi(H)`` to be used on D'.
    scales:
        Per-coordinate Laplace scales ``alpha_i`` (Definition 6 prices the
        shift of coordinate ``i`` at ``|eta_i - eta'_i| / alpha_i``).
    names:
        Optional human-readable coordinate labels for error messages.
    """

    original: np.ndarray
    aligned: np.ndarray
    scales: np.ndarray
    names: Optional[List[str]] = None

    def __post_init__(self) -> None:
        original = np.asarray(self.original, dtype=float)
        aligned = np.asarray(self.aligned, dtype=float)
        scales = np.asarray(self.scales, dtype=float)
        if original.shape != aligned.shape or original.shape != scales.shape:
            raise ValueError("original, aligned and scales must share one shape")
        if np.any(scales <= 0):
            raise ValueError("all scales must be positive")
        object.__setattr__(self, "original", original)
        object.__setattr__(self, "aligned", aligned)
        object.__setattr__(self, "scales", scales)

    @property
    def shifts(self) -> np.ndarray:
        """Per-coordinate shifts ``eta'_i - eta_i``."""
        return self.aligned - self.original

    @property
    def cost(self) -> float:
        """Alignment cost ``sum_i |eta_i - eta'_i| / alpha_i`` (Definition 6)."""
        return float(np.sum(np.abs(self.shifts) / self.scales))

    @property
    def num_shifted(self) -> int:
        """Number of coordinates whose noise actually moved."""
        return int(np.count_nonzero(~np.isclose(self.shifts, 0.0)))

    def assert_cost_within(self, epsilon: float, tolerance: float = 1e-9) -> None:
        """Raise :class:`AlignmentCostExceeded` if the cost exceeds ``epsilon``."""
        if self.cost > epsilon + tolerance:
            worst = np.argsort(-np.abs(self.shifts) / self.scales)[:5]
            labels = (
                [self.names[i] for i in worst]
                if self.names is not None
                else [str(int(i)) for i in worst]
            )
            raise AlignmentCostExceeded(
                f"alignment cost {self.cost:.6f} exceeds epsilon {epsilon:.6f}; "
                f"largest contributions from coordinates {labels}"
            )

    def density_ratio_bound(self) -> float:
        """Upper bound ``exp(cost)`` on the Laplace density ratio f(H)/f(H')."""
        return float(np.exp(self.cost))


def identity_alignment(
    noise: Sequence[float], scales: Sequence[float], names: Optional[List[str]] = None
) -> LocalAlignment:
    """The trivial alignment that leaves every coordinate unchanged (cost 0)."""
    noise = np.asarray(noise, dtype=float)
    return LocalAlignment(original=noise, aligned=noise.copy(), scales=np.asarray(scales, dtype=float), names=names)
