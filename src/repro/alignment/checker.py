"""Sampling-based checker for the Lemma 1 conditions.

The checker repeatedly executes a mechanism on a database D, constructs the
paper's local alignment for a chosen neighbour D', and verifies on each
realised execution that

1. the aligned noise makes the mechanism produce the *same output* on D'
   (Definition 4 -- output preservation), and
2. the alignment cost does not exceed the claimed privacy budget
   (Lemma 1 condition (iv)).

This does not constitute a proof (a proof quantifies over all noise vectors),
but it is a strong executable check: a single counterexample falsifies the
privacy claim, and the paper's own history (the many broken SVT variants
catalogued by Lyu et al.) shows how valuable such checks are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.alignment.alignments import LocalAlignment
from repro.alignment.mechanisms import (
    adaptive_svt_alignment,
    noisy_top_k_alignment,
    replay_adaptive_svt,
    replay_noisy_top_k,
)
from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.core.noisy_top_k import NoisyTopKWithGap
from repro.mechanisms.sparse_vector import SvtBranch
from repro.primitives.rng import RngLike, ensure_rng


@dataclass
class AlignmentReport:
    """Aggregate result of an alignment-checking session.

    Attributes
    ----------
    trials:
        Number of executions checked.
    output_preserved:
        How many executions had their output preserved by the alignment.
    max_cost:
        The largest alignment cost observed.
    epsilon_claimed:
        The privacy budget the costs were checked against.
    failures:
        Human-readable descriptions of any violations found.
    """

    trials: int = 0
    output_preserved: int = 0
    max_cost: float = 0.0
    epsilon_claimed: float = 0.0
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every trial preserved the output within the cost budget."""
        return not self.failures and self.output_preserved == self.trials

    def record(self, preserved: bool, cost: float, description: str = "") -> None:
        """Record the outcome of one trial."""
        self.trials += 1
        self.max_cost = max(self.max_cost, cost)
        if preserved and cost <= self.epsilon_claimed + 1e-9:
            self.output_preserved += 1
        else:
            reason = "output changed" if not preserved else f"cost {cost:.4f} too high"
            self.failures.append(f"trial {self.trials}: {reason}. {description}")


class AlignmentChecker:
    """Checks the paper's alignments on sampled executions.

    Parameters
    ----------
    trials:
        Number of random executions to check per mechanism/database pair.
    rng:
        Seed or generator for the executions.
    """

    def __init__(self, trials: int = 50, rng: RngLike = None) -> None:
        if trials < 1:
            raise ValueError("trials must be at least 1")
        self.trials = int(trials)
        self._rng = ensure_rng(rng)

    def check_noisy_top_k(
        self,
        mechanism: NoisyTopKWithGap,
        values_d: Sequence[float],
        values_d_prime: Sequence[float],
    ) -> AlignmentReport:
        """Check the Equation (2) alignment for Noisy-Top-K-with-Gap.

        ``values_d`` and ``values_d_prime`` must be the query answers on two
        adjacent databases (per-query difference at most the mechanism's
        sensitivity).
        """
        values_d = np.asarray(values_d, dtype=float)
        values_d_prime = np.asarray(values_d_prime, dtype=float)
        epsilon = mechanism.epsilon if not mechanism.monotonic else mechanism.epsilon
        report = AlignmentReport(epsilon_claimed=epsilon)
        for _ in range(self.trials):
            noise = np.asarray(
                mechanism._noise.sample(size=values_d.size, rng=self._rng)
            )
            indices, gaps = replay_noisy_top_k(mechanism, values_d, noise)
            alignment = noisy_top_k_alignment(
                mechanism, values_d, values_d_prime, noise, indices
            )
            indices_prime, gaps_prime = replay_noisy_top_k(
                mechanism, values_d_prime, alignment.aligned
            )
            preserved = indices_prime == indices and np.allclose(
                gaps_prime, gaps, atol=1e-8
            )
            report.record(
                preserved,
                alignment.cost,
                description=f"selected={indices} vs {indices_prime}",
            )
        return report

    def check_adaptive_svt(
        self,
        mechanism_factory: Callable[[], AdaptiveSparseVectorWithGap],
        values_d: Sequence[float],
        values_d_prime: Sequence[float],
    ) -> AlignmentReport:
        """Check the Equation (3) alignment for Adaptive-Sparse-Vector-with-Gap.

        A factory is taken (rather than a mechanism instance) because each
        trial needs a fresh run; the factory must return identically
        configured mechanisms.
        """
        values_d = np.asarray(values_d, dtype=float)
        values_d_prime = np.asarray(values_d_prime, dtype=float)
        mechanism = mechanism_factory()
        report = AlignmentReport(epsilon_claimed=mechanism.epsilon)
        for _ in range(self.trials):
            mech = mechanism_factory()
            result = mech.run(values_d, rng=self._rng)
            decisions = [
                (o.index, o.above, o.branch) for o in result.outcomes
            ]
            alignment = adaptive_svt_alignment(mech, values_d, values_d_prime, result)
            decisions_prime = replay_adaptive_svt(
                mech, values_d_prime, alignment.aligned
            )
            # The alignment must reproduce the same decision sequence on D'.
            preserved = decisions_prime == decisions
            report.record(
                preserved,
                alignment.cost,
                description=(
                    f"answered={sum(1 for _, above, _ in decisions if above)} vs "
                    f"{sum(1 for _, above, _ in decisions_prime if above)}"
                ),
            )
        return report
