"""The paper's alignment functions, made executable.

Two alignment constructors are provided, mirroring Equations (2) and (3) of
the paper:

* :func:`noisy_top_k_alignment` -- for Noisy-Top-K-with-Gap.  Noise of
  unselected queries is unchanged; noise of each selected query is shifted by
  ``(q_i - q'_i) + max_{losers}(q'_l + eta_l) - max_{losers}(q_l + eta_l)`` so
  that the selected query wins by exactly the same margin on the neighbouring
  database.
* :func:`adaptive_svt_alignment` -- for Adaptive-Sparse-Vector-with-Gap.  The
  threshold noise is shifted by +1; the noise of each query answered in the
  top (resp. middle) branch is shifted by ``1 + q_i - q'_i`` in its branch's
  coordinate; all other noise is unchanged.

Each constructor takes the realised execution (true query values on D and on
the neighbour D', plus the noise trace recorded by the mechanism) and returns
a :class:`~repro.alignment.alignments.LocalAlignment` whose cost can be
checked against the claimed privacy budget.  The companion ``replay_*``
helpers re-run the mechanism's decision logic on the aligned noise and verify
that the output (selected indexes / gaps / branch pattern) is preserved,
which is the defining property of a local alignment (Definition 4).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.alignment.alignments import LocalAlignment
from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.core.noisy_top_k import NoisyTopKWithGap
from repro.mechanisms.noisy_max import NoisyTopK
from repro.mechanisms.sparse_vector import SvtBranch, SvtResult


def noisy_top_k_alignment(
    mechanism: NoisyTopK,
    values_d: Sequence[float],
    values_d_prime: Sequence[float],
    noise: Sequence[float],
    selected_indices: Sequence[int],
) -> LocalAlignment:
    """Construct the Equation (2) alignment for a realised Top-K execution.

    Parameters
    ----------
    mechanism:
        The (with-gap or classic) Noisy Top-K mechanism that produced the
        execution; supplies the noise scale.
    values_d, values_d_prime:
        True query answers on the database D and on its neighbour D'.
    noise:
        The realised noise vector used on D.
    selected_indices:
        The indexes the mechanism selected on D (the set ``I_omega``).

    Returns
    -------
    LocalAlignment
        The aligned noise vector for D', with cost accounting.
    """
    q = np.asarray(values_d, dtype=float)
    q_prime = np.asarray(values_d_prime, dtype=float)
    eta = np.asarray(noise, dtype=float)
    if q.shape != q_prime.shape or q.shape != eta.shape:
        raise ValueError("values_d, values_d_prime and noise must share one shape")
    selected = list(int(i) for i in selected_indices)
    if len(set(selected)) != len(selected):
        raise ValueError("selected_indices contains duplicates")
    losers = np.asarray(
        [i for i in range(q.size) if i not in set(selected)], dtype=int
    )
    if losers.size == 0:
        raise ValueError("the alignment requires at least one unselected query")

    max_loser_d = float(np.max(q[losers] + eta[losers]))
    max_loser_d_prime = float(np.max(q_prime[losers] + eta[losers]))

    aligned = eta.copy()
    for i in selected:
        aligned[i] = eta[i] + (q[i] - q_prime[i]) + max_loser_d_prime - max_loser_d

    scales = np.full(q.size, mechanism.scale)
    names = [f"query[{i}]" for i in range(q.size)]
    return LocalAlignment(original=eta, aligned=aligned, scales=scales, names=names)


def replay_noisy_top_k(
    mechanism: NoisyTopKWithGap,
    values: Sequence[float],
    noise: Sequence[float],
) -> Tuple[List[int], np.ndarray]:
    """Run the Top-K decision logic on explicit noise; return (indexes, gaps)."""
    result = mechanism.select(values, noise=np.asarray(noise, dtype=float))
    return result.indices, result.gaps


def adaptive_svt_alignment(
    mechanism: AdaptiveSparseVectorWithGap,
    values_d: Sequence[float],
    values_d_prime: Sequence[float],
    result: SvtResult,
) -> LocalAlignment:
    """Construct the Equation (3) alignment for a realised adaptive-SVT run.

    Parameters
    ----------
    mechanism:
        The mechanism that produced ``result`` (supplies scales and sigma).
    values_d, values_d_prime:
        True query answers on the database D and on its neighbour D'.
    result:
        The realised run on D, whose noise trace is
        ``(threshold, top[0], middle[0], top[1], middle[1], ...)``.
    """
    q = np.asarray(values_d, dtype=float)
    q_prime = np.asarray(values_d_prime, dtype=float)
    if q.shape != q_prime.shape:
        raise ValueError("values_d and values_d_prime must share one shape")
    if result.noise_trace is None:
        raise ValueError("the SVT result does not carry a noise trace")
    noise = result.noise_trace.values.copy()
    scales = result.noise_trace.scales.copy()
    names = list(result.noise_trace.names)

    # Footnote 6 of the paper: for monotonic queries with q >= q' the
    # threshold noise is left unchanged and winning queries are shifted by
    # only (q_i - q'_i); in all other cases the threshold is shifted by +1
    # and winning queries by (1 + q_i - q'_i).
    monotonic_decreasing = bool(mechanism.monotonic and np.all(q >= q_prime))
    threshold_shift = 0.0 if monotonic_decreasing else 1.0
    base_query_shift = 0.0 if monotonic_decreasing else 1.0

    aligned = noise.copy()
    # Threshold coordinate is index 0; query i's top/middle noises are at
    # 1 + 2*i and 2 + 2*i respectively (for processed queries only).
    aligned[0] = noise[0] + threshold_shift
    for outcome in result.outcomes:
        i = outcome.index
        top_pos = 1 + 2 * i
        middle_pos = 2 + 2 * i
        if not outcome.above:
            continue
        shift = base_query_shift + q[i] - q_prime[i]
        if outcome.branch is SvtBranch.TOP:
            aligned[top_pos] = noise[top_pos] + shift
        elif outcome.branch is SvtBranch.MIDDLE:
            aligned[middle_pos] = noise[middle_pos] + shift
    return LocalAlignment(original=noise, aligned=aligned, scales=scales, names=names)


def replay_adaptive_svt(
    mechanism: AdaptiveSparseVectorWithGap,
    values: Sequence[float],
    noise: Sequence[float],
) -> List[Tuple[int, bool, SvtBranch]]:
    """Re-run the adaptive SVT decision logic on an explicit noise vector.

    Returns the sequence of (index, above, branch) decisions, which is the
    part of the output that must be preserved by a local alignment (gaps are
    checked separately because they are determined by the same quantities).
    The replay follows exactly the branch structure of Algorithm 2, including
    the budget-exhaustion stopping rule.
    """
    values = np.asarray(values, dtype=float)
    noise = np.asarray(noise, dtype=float)
    cfg = mechanism.config
    noisy_threshold = mechanism.threshold + noise[0]
    decisions: List[Tuple[int, bool, SvtBranch]] = []
    spent = cfg.epsilon_threshold
    answered = 0
    for i, value in enumerate(values):
        top_pos = 1 + 2 * i
        middle_pos = 2 + 2 * i
        if middle_pos >= noise.size:
            break
        if value + noise[top_pos] - noisy_threshold >= cfg.sigma:
            decisions.append((i, True, SvtBranch.TOP))
            spent += cfg.epsilon_top
            answered += 1
        elif value + noise[middle_pos] - noisy_threshold >= 0:
            decisions.append((i, True, SvtBranch.MIDDLE))
            spent += cfg.epsilon_middle
            answered += 1
        else:
            decisions.append((i, False, SvtBranch.BOTTOM))
        if mechanism.max_answers is not None and answered >= mechanism.max_answers:
            break
        if spent > mechanism.epsilon - cfg.epsilon_middle + 1e-12:
            break
    return decisions
