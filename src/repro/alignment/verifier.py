"""Empirical (Monte-Carlo) differential-privacy verifier.

A complement to the alignment checker: rather than checking the proof
artifact, this verifier checks the *definition*.  It runs a mechanism many
times on a pair of adjacent inputs, buckets the outputs by a user-supplied
event function, and tests whether the empirical probabilities satisfy
``P[M(D) in E] <= exp(epsilon) * P[M(D') in E]`` within statistical slack.

Such statistical checks famously caught several broken Sparse Vector
variants; here the verifier serves as an independent safety net in the test
suite (it cannot prove privacy, but it can refute egregious violations, e.g.
a mechanism that accidentally releases an unnoised value).

The *decision* statistic is shared with the dynamic hunter
(:mod:`repro.hunt.stats`): a bucket is a violation only when its exact
Clopper--Pearson epsilon lower bound clears ``epsilon + ln(slack)`` after
Holm correction across the tested buckets -- one hypothesis-testing
implementation for the whole repository.  The smoothed probability ratio
remains as the *reporting* statistic (``worst_ratio``/``worst_event``),
because "the ratio was 9.3" reads better in a failure message than a
p-value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List

import numpy as np

from repro.primitives.rng import RngLike, ensure_rng

#: Family-wise level of the Clopper-Pearson violation decision.  Fixed
#: rather than configurable: ``slack`` remains the caller-facing tolerance
#: knob, and the confidence level is a property of the shared test.
_DECISION_ALPHA = 0.05


@dataclass
class VerifierReport:
    """Result of an empirical DP check on one pair of adjacent inputs.

    Attributes
    ----------
    epsilon:
        The privacy parameter that was tested.
    trials:
        Number of runs per input.
    worst_ratio:
        The largest empirical (smoothed) probability ratio observed over all
        output buckets, in either direction.
    worst_event:
        The bucket achieving ``worst_ratio``.
    violations:
        Buckets whose smoothed ratio exceeded ``exp(epsilon) * slack``.
    """

    epsilon: float
    trials: int
    worst_ratio: float = 0.0
    worst_event: Hashable = None
    violations: List[Hashable] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no bucket violated the (slackened) epsilon bound."""
        return not self.violations


class EmpiricalDPVerifier:
    """Monte-Carlo tester of the differential-privacy inequality.

    Parameters
    ----------
    epsilon:
        The privacy bound to test against.
    trials:
        Number of mechanism executions per input.
    slack:
        Multiplicative tolerance on ``exp(epsilon)`` to absorb sampling
        error; with the default pseudo-count smoothing a slack of 1.3-1.5 and
        a few thousand trials keeps the false-positive rate negligible while
        still catching gross violations.
    smoothing:
        Pseudo-count added to every bucket (Laplace smoothing) so that rare
        events do not produce infinite ratios.
    min_count:
        Buckets observed fewer than this many times under *both* inputs are
        skipped: their empirical frequencies carry too little statistical
        power to distinguish sampling noise from a genuine violation (this is
        the standard practice in statistical DP testers).
    """

    def __init__(
        self,
        epsilon: float,
        trials: int = 5000,
        slack: float = 1.4,
        smoothing: float = 2.0,
        min_count: int = 20,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if trials < 100:
            raise ValueError("at least 100 trials are required for a meaningful check")
        if slack < 1.0:
            raise ValueError("slack must be at least 1")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        if min_count < 1:
            raise ValueError("min_count must be at least 1")
        self.epsilon = float(epsilon)
        self.trials = int(trials)
        self.slack = float(slack)
        self.smoothing = float(smoothing)
        self.min_count = int(min_count)

    def _empirical_distribution(
        self,
        run: Callable[[np.random.Generator], Any],
        event: Callable[[Any], Hashable],
        generator: np.random.Generator,
    ) -> Dict[Hashable, int]:
        counts: Dict[Hashable, int] = {}
        for _ in range(self.trials):
            bucket = event(run(generator))
            counts[bucket] = counts.get(bucket, 0) + 1
        return counts

    def check(
        self,
        run_on_d: Callable[[np.random.Generator], Any],
        run_on_d_prime: Callable[[np.random.Generator], Any],
        event: Callable[[Any], Hashable],
        rng: RngLike = None,
    ) -> VerifierReport:
        """Run the check for one pair of adjacent inputs.

        Parameters
        ----------
        run_on_d, run_on_d_prime:
            Callables that execute the mechanism on D (resp. D') using the
            supplied generator and return its output.
        event:
            Maps a mechanism output to a hashable bucket.  The coarser the
            bucketing, the tighter the statistical power; bucketing on the
            full output of a selection mechanism (e.g. the tuple of selected
            indexes) is typical.
        rng:
            Seed or generator.
        """
        # Function-local import of an upper layer (hunt sits at the top of
        # the stack): the sanctioned escape hatch, same as the CLI's lazy
        # service imports.  stats.py is numpy/math-only, so this is cheap.
        from repro.hunt.stats import EventCounts, smoothed_ratio, test_events

        generator = ensure_rng(rng)
        counts_d = self._empirical_distribution(run_on_d, event, generator)
        counts_d_prime = self._empirical_distribution(run_on_d_prime, event, generator)

        report = VerifierReport(epsilon=self.epsilon, trials=self.trials)
        buckets = set(counts_d) | set(counts_d_prime)
        denom = self.trials + self.smoothing * max(1, len(buckets))
        tested: List[Hashable] = []
        tested_counts: List[EventCounts] = []
        for bucket in buckets:
            if (
                max(counts_d.get(bucket, 0), counts_d_prime.get(bucket, 0))
                < self.min_count
            ):
                continue
            ratio = smoothed_ratio(
                counts_d.get(bucket, 0),
                counts_d_prime.get(bucket, 0),
                denom,
                self.smoothing,
            )
            if ratio > report.worst_ratio:
                report.worst_ratio = ratio
                report.worst_event = bucket
            tested.append(bucket)
            tested_counts.append(
                EventCounts(
                    successes_d=counts_d.get(bucket, 0),
                    trials_d=self.trials,
                    successes_d_prime=counts_d_prime.get(bucket, 0),
                    trials_d_prime=self.trials,
                )
            )
        # The slackened claim: a bucket violates only when its exact lower
        # confidence bound on the log probability ratio clears
        # epsilon + ln(slack) after Holm correction across tested buckets.
        claimed = self.epsilon + float(np.log(self.slack))
        for bucket, outcome in zip(
            tested, test_events(tested_counts, claimed, _DECISION_ALPHA)
        ):
            if outcome.rejected:
                report.violations.append(bucket)
        return report
