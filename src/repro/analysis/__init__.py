"""Analytical results from the paper's appendix and side analyses.

* :mod:`~repro.analysis.ties` -- Appendix A.1: the probability that two (or
  any of n) discretised-Laplace-noised queries tie, which bounds the failure
  probability delta of the pure-DP guarantee on finite-precision machines.
* :mod:`~repro.analysis.variance` -- variance bookkeeping helpers used when
  configuring the postprocessing estimators (per-branch gap variances, the
  lambda ratio of Theorem 3, pairwise-gap variances of Section 5.1).
* :mod:`~repro.analysis.selection` -- selection-accuracy analysis: the
  probability that (Report) Noisy Max identifies the true maximiser, the
  induced bias of the released gap in flat regimes, and a planning helper
  for the score separation needed at a given noise scale.
"""

from repro.analysis.ties import (
    discrete_laplace_tie_probability,
    pairwise_tie_probability,
    tie_probability_bound,
)
from repro.analysis.variance import (
    measurement_variance,
    pairwise_gap_variance,
    top_k_gap_variance,
    theorem3_lambda,
)
from repro.analysis.selection import (
    expected_gap_bias,
    minimum_separation_for_accuracy,
    probability_correct_max,
    probability_correct_max_monte_carlo,
)

__all__ = [
    "pairwise_tie_probability",
    "discrete_laplace_tie_probability",
    "tie_probability_bound",
    "top_k_gap_variance",
    "pairwise_gap_variance",
    "measurement_variance",
    "theorem3_lambda",
    "probability_correct_max",
    "probability_correct_max_monte_carlo",
    "expected_gap_bias",
    "minimum_separation_for_accuracy",
]
