"""Selection-accuracy analysis for Report Noisy Max and Noisy Top-K.

The gap post-processing of Theorem 3 achieves its full error reduction only
when the selection step identifies (and orders) the true top-k queries; when
the top of the score vector is flat relative to the noise, ordering mistakes
dilute the benefit (this is visible in the small-scale experiments recorded
in EXPERIMENTS.md).  This module quantifies that effect:

* :func:`probability_correct_max` -- probability that Report Noisy Max
  returns the true argmax, computed by numerical integration of the exact
  expression ``E[prod_{i != i*} F(q_{i*} - q_i + eta)]``.
* :func:`probability_correct_max_monte_carlo` -- the same quantity by
  simulation (used to cross-check the integration in tests).
* :func:`expected_gap_bias` -- expected amount by which the released top gap
  overestimates the true top gap due to selection of a noisy maximiser
  (zero when the winner is clear, positive in flat regimes).
* :func:`minimum_separation_for_accuracy` -- the score separation needed for
  a target probability of correct selection at a given noise scale, a simple
  planning tool for choosing k and epsilon.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.primitives.laplace import laplace_cdf, laplace_pdf
from repro.primitives.rng import RngLike, ensure_rng

ArrayLike = Union[Sequence[float], np.ndarray]


def probability_correct_max(
    values: ArrayLike,
    scale: float,
    grid_points: int = 4001,
    grid_width: float = 12.0,
) -> float:
    """Probability that Report Noisy Max selects the true maximiser.

    Parameters
    ----------
    values:
        The true query answers (the maximiser is assumed unique; ties are
        broken in favour of the first maximiser and the returned value is the
        probability that *that* index wins).
    scale:
        Laplace scale of the per-query noise.
    grid_points, grid_width:
        Resolution and half-width (in units of ``scale``) of the integration
        grid for the winner's noise.

    Notes
    -----
    Conditioning on the winner's noise ``eta``, the winner prevails when every
    other noisy value stays below ``q_max + eta``, which happens with
    probability ``prod_i F((q_max - q_i) + eta)`` where ``F`` is the Laplace
    CDF.  The function integrates this product against the density of
    ``eta``.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ValueError("values must be a one-dimensional vector of length >= 2")
    if scale <= 0:
        raise ValueError("scale must be positive")
    winner = int(np.argmax(values))
    others = np.delete(values, winner)
    margins = values[winner] - others

    eta = np.linspace(-grid_width * scale, grid_width * scale, grid_points)
    density = laplace_pdf(eta, scale)
    # For each grid point, the probability that all other noisy values lose.
    cdf_matrix = laplace_cdf(margins[None, :] + eta[:, None], scale)
    win_probability = np.prod(cdf_matrix, axis=1)
    # Trapezoidal integration of the sharply peaked Laplace density can
    # overshoot 1 by a tiny amount on coarse grids; clip to a probability.
    return float(np.clip(np.trapezoid(win_probability * density, eta), 0.0, 1.0))


def probability_correct_max_monte_carlo(
    values: ArrayLike,
    scale: float,
    trials: int = 20_000,
    rng: RngLike = None,
) -> float:
    """Monte-Carlo estimate of :func:`probability_correct_max`."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ValueError("values must be a one-dimensional vector of length >= 2")
    if scale <= 0:
        raise ValueError("scale must be positive")
    if trials < 1:
        raise ValueError("trials must be at least 1")
    generator = ensure_rng(rng)
    winner = int(np.argmax(values))
    noisy = values[None, :] + generator.laplace(0.0, scale, size=(trials, values.size))
    return float(np.mean(np.argmax(noisy, axis=1) == winner))


def expected_gap_bias(
    values: ArrayLike,
    scale: float,
    trials: int = 20_000,
    rng: RngLike = None,
) -> float:
    """Expected overestimate of the top gap released by Noisy-Max-with-Gap.

    The released gap is ``max(noisy) - second_max(noisy)``, which is an
    unbiased estimate of the true top gap *conditional on the correct winner*
    but is biased upward overall because the maximum of noisy values is
    selected.  This function estimates ``E[released gap] - true top gap`` by
    simulation; it approaches 0 as the true gap grows relative to the noise.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ValueError("values must be a one-dimensional vector of length >= 2")
    if scale <= 0:
        raise ValueError("scale must be positive")
    generator = ensure_rng(rng)
    sorted_true = np.sort(values)[::-1]
    true_gap = sorted_true[0] - sorted_true[1]
    noisy = values[None, :] + generator.laplace(0.0, scale, size=(trials, values.size))
    top_two = np.partition(noisy, values.size - 2, axis=1)[:, -2:]
    released = top_two.max(axis=1) - top_two.min(axis=1)
    return float(np.mean(released) - true_gap)


def minimum_separation_for_accuracy(
    num_queries: int,
    scale: float,
    target_probability: float = 0.95,
) -> float:
    """Score separation needed for Report Noisy Max to be reliably correct.

    Uses the union-bound style sufficient condition: if the winner leads every
    other query by at least the returned margin, the probability that any
    single competitor overtakes it is at most ``(1 - target) / (n - 1)``, so
    the winner is returned with probability at least ``target``.

    Parameters
    ----------
    num_queries:
        Number of competing queries ``n``.
    scale:
        Laplace noise scale.
    target_probability:
        Desired probability of selecting the true maximiser.
    """
    if num_queries < 2:
        raise ValueError("num_queries must be at least 2")
    if scale <= 0:
        raise ValueError("scale must be positive")
    if not 0.0 < target_probability < 1.0:
        raise ValueError("target_probability must lie strictly between 0 and 1")
    failure_per_competitor = (1.0 - target_probability) / (num_queries - 1)
    # The difference of two independent Laplace(scale) variables exceeds t
    # with probability at most exp(-t / (2*scale)) (a standard tail bound);
    # invert it for the required margin.
    return float(-2.0 * scale * np.log(failure_per_competitor))
