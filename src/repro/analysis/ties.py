"""Tie-probability analysis for discretised noise (Appendix A.1).

On finite-precision machines Laplace noise is effectively discretised to
multiples of some base ``gamma``.  Ties between the largest and second
largest noisy queries then occur with positive probability, which breaks the
pure-DP analysis of Noisy Max; the guarantee degrades to
``(epsilon, delta)``-DP with ``delta`` equal to the tie probability.  The
appendix bounds this probability by roughly ``n^2 * gamma * epsilon`` for
``n`` sensitivity-1 queries -- negligible when ``gamma`` is near machine
epsilon.

This module provides both the exact pairwise tie probability (by summing the
discrete Laplace convolution) and the closed-form upper bounds used in the
appendix.
"""

from __future__ import annotations

import numpy as np


def pairwise_tie_probability(
    epsilon: float,
    base: float,
    value_difference: float = 0.0,
    terms: int = 10_000,
) -> float:
    """Exact probability that two discretised-noisy queries tie.

    Computes ``P(q1 + eta1 == q2 + eta2)`` where ``eta1, eta2`` are i.i.d.
    zero-mean discrete Laplace variables with scale ``1/epsilon`` on the
    lattice ``base * Z`` and ``q1 - q2 = value_difference`` (which must be a
    multiple of ``base`` for a tie to be possible at all).

    Parameters
    ----------
    epsilon:
        Reciprocal of the noise scale.
    base:
        Lattice spacing ``gamma``.
    value_difference:
        ``q1 - q2``; if it is not (numerically) a lattice multiple the tie
        probability is exactly zero.
    terms:
        Number of lattice points summed on each side (the series converges
        geometrically, so the default is far more than enough).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if base <= 0:
        raise ValueError("base must be positive")
    m = value_difference / base
    if not np.isclose(m, np.rint(m), atol=1e-9):
        return 0.0
    m = int(np.rint(abs(m)))
    q = np.exp(-epsilon * base)
    norm = (1.0 - q) / (1.0 + q)
    # P(eta1 = l*base) * P(eta2 = (l+m)*base), summed over l.
    ells = np.arange(-terms, terms + 1)
    probs = norm**2 * q ** (np.abs(ells) + np.abs(ells + m))
    return float(np.sum(probs))


def discrete_laplace_tie_probability(
    epsilon: float, base: float, value_difference: float = 0.0
) -> float:
    """Closed-form pairwise tie probability (geometric series summed exactly).

    Matches :func:`pairwise_tie_probability` and is what the appendix bounds:
    for ``q1 - q2 = m * base >= 0`` the probability is
    ``((1-q)/(1+q))^2 * q^m * ((1+q^2)/(1-q^2) + m)`` with
    ``q = exp(-epsilon * base)``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if base <= 0:
        raise ValueError("base must be positive")
    m_real = value_difference / base
    if not np.isclose(m_real, np.rint(m_real), atol=1e-9):
        return 0.0
    m = abs(int(np.rint(m_real)))
    q = np.exp(-epsilon * base)
    norm = ((1.0 - q) / (1.0 + q)) ** 2
    return float(norm * q**m * ((1.0 + q**2) / (1.0 - q**2) + m))


def tie_probability_bound(num_queries: int, epsilon: float, base: float) -> float:
    """Appendix A.1 union bound on any tie among ``n`` noisy queries.

    The pairwise tie probability is at most ``gamma * epsilon * (1 + 1/e)``,
    so by the union bound over all pairs the probability of any tie among
    ``n`` queries is at most ``n^2 * gamma * epsilon`` (absorbing the
    ``1 + 1/e`` constant into the conservative ``n^2`` count of ordered
    pairs).  The returned value is clipped to 1.
    """
    if num_queries < 0:
        raise ValueError("num_queries must be non-negative")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if base <= 0:
        raise ValueError("base must be positive")
    pairwise = base * epsilon * (1.0 + np.exp(-1.0))
    return float(min(1.0, num_queries**2 * pairwise))
