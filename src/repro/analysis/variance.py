"""Variance bookkeeping for the gap-fusion estimators.

The post-processing estimators need the variances of the quantities they
combine:

* the direct Laplace measurements (``Var(xi_i) = 2 * scale^2``),
* the consecutive gaps released by Noisy-Top-K-with-Gap
  (``Var(g_i) = 2 * 2 * scale^2`` -- a difference of two independent
  Laplace variables),
* the pairwise gaps obtained by summing consecutive gaps
  (``Var = 16 k^2 / epsilon^2`` regardless of which pair, per Section 5.1),
* and the ``lambda`` ratio of Theorem 3.

These helpers centralise those small formulas so that the estimators, the
experiment harness and the tests all agree on them.
"""

from __future__ import annotations


def measurement_variance(total_epsilon: float, k: int) -> float:
    """Variance of each direct measurement under the even budget split.

    The measurement half ``epsilon/2`` is split evenly over ``k``
    sensitivity-1 queries, giving ``Laplace(2k/epsilon)`` noise per query and
    variance ``8 k^2 / epsilon^2`` (Section 5.2).
    """
    if total_epsilon <= 0:
        raise ValueError("total_epsilon must be positive")
    if k < 1:
        raise ValueError("k must be at least 1")
    scale = 2.0 * k / total_epsilon
    return 2.0 * scale**2


def top_k_selection_scale(total_epsilon: float, k: int, monotonic: bool) -> float:
    """Per-query noise scale inside Noisy-Top-K-with-Gap under the even split.

    The selection half ``epsilon/2`` funds the Top-K run; the mechanism's
    internal scale is ``2k / (epsilon/2) = 4k/epsilon`` in general, or
    ``2k/epsilon`` for monotonic queries.
    """
    if total_epsilon <= 0:
        raise ValueError("total_epsilon must be positive")
    if k < 1:
        raise ValueError("k must be at least 1")
    factor = 1.0 if monotonic else 2.0
    return factor * 2.0 * k / total_epsilon


def top_k_gap_variance(total_epsilon: float, k: int, monotonic: bool) -> float:
    """Variance of one consecutive gap from Noisy-Top-K-with-Gap.

    A gap is the difference of two independent Laplace variables with the
    selection scale, so its variance is ``2 * 2 * scale^2``.
    """
    scale = top_k_selection_scale(total_epsilon, k, monotonic)
    return 2.0 * 2.0 * scale**2


def pairwise_gap_variance(total_epsilon: float, k: int, monotonic: bool) -> float:
    """Variance of the estimated gap between any two selected queries.

    Summing consecutive gaps telescopes to the difference of just two noisy
    values, so the variance is the same as a single gap's: ``4 * scale^2``
    (= ``16 k^2 / epsilon^2`` for the paper's non-monotonic parametrisation
    with the full budget).
    """
    return top_k_gap_variance(total_epsilon, k, monotonic)


def theorem3_lambda(total_epsilon: float, k: int, monotonic: bool) -> float:
    """The ``lambda`` of Theorem 3: Var(gap noise per query) / Var(measurement).

    Each gap is ``q_i + eta_i - q_{i+1} - eta_{i+1}``; the "per query" noise
    variance entering Theorem 3 is ``Var(eta_i) = 2 * selection_scale^2``.
    For counting queries under the even split this equals the measurement
    variance, so ``lambda = 1``.
    """
    selection_scale = top_k_selection_scale(total_epsilon, k, monotonic)
    per_query_gap_noise = 2.0 * selection_scale**2
    return per_query_gap_noise / measurement_variance(total_epsilon, k)


def svt_gap_variance(total_epsilon: float, k: int, monotonic: bool) -> float:
    """Variance of an SVT gap under the paper's recommended allocations.

    With the even selection/measurement split and the Lyu et al. ratio inside
    SVT, Section 6.2 derives ``Var(gamma_i) = 8 (1 + (2k)^{2/3})^3 / epsilon^2``
    in general and ``8 (1 + k^{2/3})^3 / epsilon^2`` for monotonic queries.
    """
    if total_epsilon <= 0:
        raise ValueError("total_epsilon must be positive")
    if k < 1:
        raise ValueError("k must be at least 1")
    c = k ** (2.0 / 3.0) if monotonic else (2.0 * k) ** (2.0 / 3.0)
    return 8.0 * (1.0 + c) ** 3 / total_epsilon**2
