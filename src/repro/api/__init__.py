"""The unified mechanism API: declarative specs -> executor registry -> facade.

This package is the single entry point through which every mechanism in the
library is executed.  The flow has three layers:

1. **Specs** (:mod:`repro.api.specs`) -- frozen, JSON-round-trippable
   descriptions of *what* to run: :class:`NoisyTopKSpec`,
   :class:`SparseVectorSpec`, :class:`AdaptiveSvtSpec`,
   :class:`SelectMeasureSpec`, :class:`LaplaceSpec` and
   :class:`SvtVariantSpec`, all sharing the :class:`MechanismSpec` base with
   ``validate()`` / ``to_dict()`` / ``from_dict()``.  A spec that serializes
   is a spec that can be queued, cached, or shipped to a worker.
2. **Registry** (:mod:`repro.api.registry`) -- maps each spec type to a
   ``batch`` executor (the vectorized ``(trials, n)`` engine) and a
   ``reference`` executor (the per-trial ground truth).  The Lyu et al. SVT
   catalogue variants are registered reference-only and raise
   :class:`UnsupportedEngineError` for ``engine="batch"``.
3. **Facade** (:func:`run`) -- validates the spec and the engine name (one
   validator, :func:`validate_engine`, shared by harness, session and
   facade), dispatches to the registered executor, optionally charges a
   :class:`~repro.accounting.budget.BudgetOdometer`, and returns the uniform
   :class:`Result` (indices, gaps, estimates, branches, consumed budget --
   every per-trial field with a leading trial axis).

The two engines are interchangeable: under a shared explicit noise matrix
``run(spec, engine="batch")`` and ``run(spec, engine="reference")`` are
bit-identical (``tests/test_api_facade.py``).

Quickstart
----------
>>> from repro.api import NoisyTopKSpec, run
>>> spec = NoisyTopKSpec(queries=[120.0, 90.0, 85.0, 30.0], epsilon=1.0,
...                      k=2, monotonic=True)
>>> result = run(spec, engine="batch", trials=64, rng=0)
>>> result.indices.shape
(64, 2)
>>> run(spec.from_dict(spec.to_dict()), trials=1, rng=0).trial_indices().shape
(2,)
"""

# NOTE: import order matters for cycle-freedom -- the spec/engine/registry/
# facade modules import nothing from repro.engine or repro.mechanisms at
# module scope (executors load lazily on first run()).
from repro.api.engines import (
    ENGINE_NAMES,
    Engine,
    UnsupportedEngineError,
    validate_engine,
)
from repro.api.specs import (
    AdaptiveSvtSpec,
    LaplaceSpec,
    MechanismSpec,
    NoisyTopKSpec,
    SelectMeasureSpec,
    SparseVectorSpec,
    SpecValidationError,
    SvtVariantSpec,
    spec_from_dict,
    spec_from_json,
    spec_kinds,
)
from repro.api.result import Result
from repro.api.registry import (
    get_executor,
    register_executor,
    registered_spec_types,
    supported_engines,
)
from repro.api.facade import pick_thresholds, run, submit

__all__ = [
    # engines
    "ENGINE_NAMES",
    "Engine",
    "UnsupportedEngineError",
    "validate_engine",
    # specs
    "AdaptiveSvtSpec",
    "LaplaceSpec",
    "MechanismSpec",
    "NoisyTopKSpec",
    "SelectMeasureSpec",
    "SparseVectorSpec",
    "SpecValidationError",
    "SvtVariantSpec",
    "spec_from_dict",
    "spec_from_json",
    "spec_kinds",
    # registry
    "get_executor",
    "register_executor",
    "registered_spec_types",
    "supported_engines",
    # facade
    "Result",
    "pick_thresholds",
    "run",
    "submit",
]
