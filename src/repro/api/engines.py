"""Execution-engine names: the one source of truth.

Every layer that dispatches between the vectorized batch engine and the
per-trial reference implementations (the facade's :func:`repro.api.run`, the
Monte-Carlo harness runners, :class:`~repro.engine.session.PrivateAnalyticsSession`)
validates its ``engine`` argument through :func:`validate_engine`, so there is
exactly one set of engine names and one error message across the library.
"""

from __future__ import annotations

import enum
from typing import Union

__all__ = [
    "ENGINE_NAMES",
    "Engine",
    "UnsupportedEngineError",
    "validate_engine",
]


class Engine(str, enum.Enum):
    """The two execution engines every mechanism spec can target.

    ``BATCH`` runs all requested trials as ``(trials, n)`` matrix operations
    through :mod:`repro.engine.batch`; ``REFERENCE`` loops the per-trial
    reference implementations (the ground truth the batch path is tested
    against).  Members compare equal to their string values, so
    ``Engine.BATCH == "batch"``.
    """

    BATCH = "batch"
    REFERENCE = "reference"


#: Canonical engine-name strings, in preference order.
ENGINE_NAMES = tuple(engine.value for engine in Engine)


class UnsupportedEngineError(ValueError):
    """Raised when a spec type has no executor registered for an engine.

    The name is deliberately specific: the engine *name* was valid, but the
    requested spec/engine combination is not runnable (e.g. the Lyu et al.
    SVT catalogue variants are registered reference-only).
    """


def validate_engine(engine: Union[str, Engine]) -> str:
    """Normalise ``engine`` to its canonical string name.

    Accepts an :class:`Engine` member or one of the strings in
    :data:`ENGINE_NAMES`; anything else raises :class:`ValueError` with the
    library's single canonical engine error message.
    """
    if isinstance(engine, Engine):
        return engine.value
    if isinstance(engine, str) and engine in ENGINE_NAMES:
        return engine
    names = ", ".join(repr(name) for name in ENGINE_NAMES)
    raise ValueError(f"engine must be one of {names}; got {engine!r}")
