"""Built-in executors: one ``batch`` and one ``reference`` per spec type.

Each executor turns a declarative :class:`~repro.api.specs.MechanismSpec`
into concrete mechanism objects and runs ``trials`` independent executions,
returning the uniform :class:`~repro.api.result.Result`:

* the **batch** executors delegate to the vectorized runners in
  :mod:`repro.engine.batch` (``(trials, n)`` matrix operations);
* the **reference** executors loop the per-trial reference classes and pack
  their outputs into the *same* array shapes and padding conventions, so the
  two engines are directly comparable -- bit-identical under a shared
  explicit noise matrix (``tests/test_api_facade.py``).

Run-time options accepted by the SVT-family executors:

``thresholds``
    Per-trial public thresholds ``(trials,)`` overriding the spec's scalar
    threshold (the harness re-draws the threshold every trial).
``noise`` / ``threshold_noise`` / ``query_noise`` / ``top_noise`` / ``middle_noise``
    Explicit noise matrices used to replay executions (equivalence tests,
    alignment framework).

The Lyu et al. SVT catalogue variants are registered **reference-only**;
requesting ``engine="batch"`` for them raises
:class:`~repro.api.engines.UnsupportedEngineError` via the registry.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.engines import Engine
from repro.api.registry import register_executor
from repro.api.result import Result
from repro.api.specs import (
    AdaptiveSvtSpec,
    LaplaceSpec,
    NoisyTopKSpec,
    SelectMeasureSpec,
    SparseVectorSpec,
    SvtVariantSpec,
)
from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.core.noisy_top_k import NoisyTopKWithGap
from repro.core.select_measure import (
    select_and_measure_svt,
    select_and_measure_top_k,
)
# The private helpers are shared deliberately: threshold broadcasting,
# RandomSource handling and ragged padding must stay identical between the
# batch runners and the reference executors, or the two engines would apply
# different semantics to the same spec.
from repro.engine.batch import (
    _as_thresholds,
    _pad_ragged,
    _rng_handle,
    batch_adaptive_svt,
    batch_noisy_top_k,
    batch_select_and_measure_svt,
    batch_select_and_measure_top_k,
    batch_sparse_vector,
)
from repro.mechanisms.laplace_mechanism import LaplaceMechanism
from repro.mechanisms.noisy_max import NoisyTopK
from repro.mechanisms.results import BatchResult
from repro.mechanisms.sparse_vector import (
    SparseVector,
    SparseVectorWithGap,
    SvtBranch,
)
from repro.mechanisms.svt_variants import make_svt_variant
from repro.primitives.laplace import LaplaceNoise
from repro.primitives.rng import RngLike


def _row(matrix: Optional[np.ndarray], b: int) -> Optional[np.ndarray]:
    return None if matrix is None else matrix[b]


#: SvtBranch -> Result branch code, used when packing reference outcomes.
_BRANCH_CODES = {
    SvtBranch.TOP: Result.BRANCH_TOP,
    SvtBranch.MIDDLE: Result.BRANCH_MIDDLE,
    SvtBranch.BOTTOM: Result.BRANCH_BOTTOM,
}


def _pack_svt_reference(run_trial, trials: int, n: int, width: Optional[int] = None):
    """Run ``trials`` per-trial SVT executions and pack them batch-style.

    ``run_trial(b)`` must return the trial's
    :class:`~repro.mechanisms.sparse_vector.SvtResult`; each run is packed
    into the batch engine's array conventions immediately and then dropped,
    so peak memory stays one run's outcomes.  ``width`` fixes the padded
    column count (the non-adaptive mechanisms stop after ``k`` answers);
    ``None`` uses the longest trial, matching ``batch_adaptive_svt``.

    Returns ``(above, branches, processed, epsilon_consumed, indices, gaps)``.
    """
    above = np.zeros((trials, n), dtype=bool)
    branches = np.full((trials, n), Result.BRANCH_BOTTOM, dtype=np.int8)
    gap_payload = np.full((trials, n), np.nan)
    processed = np.empty(trials, dtype=np.int64)
    epsilon_consumed = np.empty(trials)
    for b in range(trials):
        run = run_trial(b)
        for outcome in run.outcomes:
            if outcome.above:
                above[b, outcome.index] = True
                branches[b, outcome.index] = _BRANCH_CODES[outcome.branch]
                if outcome.gap is not None:
                    gap_payload[b, outcome.index] = outcome.gap
        processed[b] = run.num_processed
        epsilon_consumed[b] = run.metadata.epsilon_spent
    if width is None:
        answered = np.count_nonzero(above, axis=1)
        width = int(answered.max()) if trials else 0
    indices = _pad_ragged(above, width)
    gaps = _pad_ragged(above, width, payload=gap_payload)
    return above, branches, processed, epsilon_consumed, indices, gaps


def _result_from_batch(spec, engine: str, batch: BatchResult) -> Result:
    return Result(
        mechanism=batch.mechanism,
        engine=engine,
        trials=batch.trials,
        epsilon=batch.epsilon,
        epsilon_consumed=batch.epsilon_spent,
        indices=batch.indices,
        gaps=batch.gaps,
        above=batch.above,
        branches=batch.branches,
        processed=batch.processed,
        monotonic=batch.monotonic,
        extra=dict(batch.extra),
    )


# ---------------------------------------------------------------------------
# Noisy Top-K
# ---------------------------------------------------------------------------


def _top_k_mechanism(spec: NoisyTopKSpec) -> NoisyTopK:
    cls = NoisyTopKWithGap if spec.with_gap else NoisyTopK
    return cls(
        epsilon=spec.epsilon,
        k=spec.k,
        monotonic=spec.monotonic,
        sensitivity=spec.sensitivity,
    )


def run_noisy_top_k_batch(
    spec: NoisyTopKSpec,
    *,
    trials: int,
    rng: RngLike = None,
    noise: Optional[np.ndarray] = None,
    fast_noise: bool = True,
) -> Result:
    """Batch executor for :class:`NoisyTopKSpec`."""
    mechanism = _top_k_mechanism(spec)
    batch = batch_noisy_top_k(
        mechanism, spec.values(), trials, rng=rng, noise=noise, fast_noise=fast_noise
    )
    return _result_from_batch(spec, Engine.BATCH.value, batch)


def run_noisy_top_k_reference(
    spec: NoisyTopKSpec,
    *,
    trials: int,
    rng: RngLike = None,
    noise: Optional[np.ndarray] = None,
) -> Result:
    """Reference executor for :class:`NoisyTopKSpec` (per-trial loop)."""
    mechanism = _top_k_mechanism(spec)
    values = spec.values()
    generator = _rng_handle(rng)
    indices = np.empty((trials, spec.k), dtype=np.int64)
    gaps = np.empty((trials, spec.k)) if spec.with_gap else np.zeros((trials, 0))
    for b in range(trials):
        selection = mechanism.select(values, rng=generator, noise=_row(noise, b))
        indices[b] = selection.indices
        if spec.with_gap:
            gaps[b] = selection.gaps
    return Result(
        mechanism=mechanism.name,
        engine=Engine.REFERENCE.value,
        trials=trials,
        epsilon=mechanism.epsilon,
        epsilon_consumed=np.full(trials, mechanism.epsilon),
        indices=indices,
        gaps=gaps,
        monotonic=mechanism.monotonic,
        extra={"k": float(spec.k), "scale": mechanism.scale},
    )


# ---------------------------------------------------------------------------
# Sparse Vector
# ---------------------------------------------------------------------------


def _sparse_vector_mechanism(spec: SparseVectorSpec, threshold: float) -> SparseVector:
    cls = SparseVectorWithGap if spec.with_gap else SparseVector
    return cls(
        epsilon=spec.epsilon,
        threshold=threshold,
        k=spec.k,
        monotonic=spec.monotonic,
        theta=spec.theta,
        sensitivity=spec.sensitivity,
    )


def run_sparse_vector_batch(
    spec: SparseVectorSpec,
    *,
    trials: int,
    rng: RngLike = None,
    thresholds=None,
    threshold_noise: Optional[np.ndarray] = None,
    query_noise: Optional[np.ndarray] = None,
    fast_noise: bool = True,
) -> Result:
    """Batch executor for :class:`SparseVectorSpec`."""
    mechanism = _sparse_vector_mechanism(spec, spec.threshold)
    batch = batch_sparse_vector(
        mechanism,
        spec.values(),
        trials,
        thresholds=thresholds,
        rng=rng,
        threshold_noise=threshold_noise,
        query_noise=query_noise,
        fast_noise=fast_noise,
    )
    return _result_from_batch(spec, Engine.BATCH.value, batch)


def run_sparse_vector_reference(
    spec: SparseVectorSpec,
    *,
    trials: int,
    rng: RngLike = None,
    thresholds=None,
    threshold_noise: Optional[np.ndarray] = None,
    query_noise: Optional[np.ndarray] = None,
) -> Result:
    """Reference executor for :class:`SparseVectorSpec` (per-trial loop)."""
    values = spec.values()
    n = values.size
    generator = _rng_handle(rng)
    thresholds = _as_thresholds(thresholds, spec.threshold, trials)
    template = _sparse_vector_mechanism(spec, spec.threshold)

    def run_trial(b: int):
        mechanism = _sparse_vector_mechanism(spec, float(thresholds[b]))
        return mechanism.run(
            values,
            rng=generator,
            threshold_noise=_row(threshold_noise, b),
            query_noise=_row(query_noise, b),
        )

    above, branches, processed, epsilon_consumed, indices, gaps = _pack_svt_reference(
        run_trial, trials, n, width=spec.k
    )
    if not spec.with_gap:
        gaps = np.zeros((trials, 0))
    return Result(
        mechanism=template.name,
        engine=Engine.REFERENCE.value,
        trials=trials,
        epsilon=template.epsilon,
        epsilon_consumed=epsilon_consumed,
        indices=indices,
        gaps=gaps,
        above=above,
        branches=branches,
        processed=processed,
        monotonic=template.monotonic,
        extra={
            "k": float(spec.k),
            "epsilon_threshold": template.epsilon_threshold,
            "epsilon_per_query": template.epsilon_per_query,
        },
    )


# ---------------------------------------------------------------------------
# Adaptive SVT
# ---------------------------------------------------------------------------


def _adaptive_svt_mechanism(
    spec: AdaptiveSvtSpec, threshold: float
) -> AdaptiveSparseVectorWithGap:
    return AdaptiveSparseVectorWithGap(
        epsilon=spec.epsilon,
        threshold=threshold,
        k=spec.k,
        monotonic=spec.monotonic,
        theta=spec.theta,
        sigma_multiplier=spec.sigma_multiplier,
        sensitivity=spec.sensitivity,
        max_answers=spec.max_answers,
    )


def run_adaptive_svt_batch(
    spec: AdaptiveSvtSpec,
    *,
    trials: int,
    rng: RngLike = None,
    thresholds=None,
    threshold_noise: Optional[np.ndarray] = None,
    top_noise: Optional[np.ndarray] = None,
    middle_noise: Optional[np.ndarray] = None,
    fast_noise: bool = True,
) -> Result:
    """Batch executor for :class:`AdaptiveSvtSpec`."""
    mechanism = _adaptive_svt_mechanism(spec, spec.threshold)
    batch = batch_adaptive_svt(
        mechanism,
        spec.values(),
        trials,
        thresholds=thresholds,
        rng=rng,
        threshold_noise=threshold_noise,
        top_noise=top_noise,
        middle_noise=middle_noise,
        fast_noise=fast_noise,
    )
    return _result_from_batch(spec, Engine.BATCH.value, batch)


def run_adaptive_svt_reference(
    spec: AdaptiveSvtSpec,
    *,
    trials: int,
    rng: RngLike = None,
    thresholds=None,
    threshold_noise: Optional[np.ndarray] = None,
    top_noise: Optional[np.ndarray] = None,
    middle_noise: Optional[np.ndarray] = None,
) -> Result:
    """Reference executor for :class:`AdaptiveSvtSpec` (per-trial loop)."""
    values = spec.values()
    n = values.size
    generator = _rng_handle(rng)
    thresholds = _as_thresholds(thresholds, spec.threshold, trials)
    template = _adaptive_svt_mechanism(spec, spec.threshold)

    def run_trial(b: int):
        mechanism = _adaptive_svt_mechanism(spec, float(thresholds[b]))
        tn = _row(threshold_noise, b)
        return mechanism.run(
            values,
            rng=generator,
            threshold_noise=None if tn is None else float(tn),
            top_noise=_row(top_noise, b),
            middle_noise=_row(middle_noise, b),
        )

    above, branches, processed, epsilon_consumed, indices, gaps = _pack_svt_reference(
        run_trial, trials, n
    )
    cfg = template.config
    return Result(
        mechanism=template.name,
        engine=Engine.REFERENCE.value,
        trials=trials,
        epsilon=template.epsilon,
        epsilon_consumed=epsilon_consumed,
        indices=indices,
        gaps=gaps,
        above=above,
        branches=branches,
        processed=processed,
        monotonic=template.monotonic,
        extra={
            "k": float(spec.k),
            "epsilon_threshold": cfg.epsilon_threshold,
            "epsilon_middle": cfg.epsilon_middle,
            "epsilon_top": cfg.epsilon_top,
            "sigma": cfg.sigma,
        },
    )


# ---------------------------------------------------------------------------
# selection-then-measure
# ---------------------------------------------------------------------------


def _select_measure_name(spec: SelectMeasureSpec) -> str:
    if spec.mechanism == "top-k":
        return "select-measure-top-k"
    return "select-measure-adaptive-svt" if spec.adaptive else "select-measure-svt"


def run_select_measure_batch(
    spec: SelectMeasureSpec,
    *,
    trials: int,
    rng: RngLike = None,
    thresholds=None,
) -> Result:
    """Batch executor for :class:`SelectMeasureSpec`."""
    values = spec.values()
    if spec.mechanism == "top-k":
        batch = batch_select_and_measure_top_k(
            values, spec.epsilon, spec.k, trials, monotonic=spec.monotonic, rng=rng
        )
    else:
        thresholds = _as_thresholds(thresholds, spec.threshold, trials)
        batch = batch_select_and_measure_svt(
            values,
            spec.epsilon,
            spec.k,
            thresholds,
            trials,
            monotonic=spec.monotonic,
            adaptive=spec.adaptive,
            rng=rng,
        )
    return Result(
        mechanism=_select_measure_name(spec),
        engine=Engine.BATCH.value,
        trials=trials,
        epsilon=batch.total_epsilon,
        epsilon_consumed=batch.epsilon_spent,
        indices=batch.indices,
        gaps=batch.gaps,
        estimates=batch.fused,
        measurements=batch.measurements,
        true_values=batch.true_values,
        mask=batch.mask,
        monotonic=spec.monotonic,
        extra={"k": float(spec.k)},
    )


def run_select_measure_reference(
    spec: SelectMeasureSpec,
    *,
    trials: int,
    rng: RngLike = None,
    thresholds=None,
) -> Result:
    """Reference executor for :class:`SelectMeasureSpec` (per-trial loop)."""
    values = spec.values()
    generator = _rng_handle(rng)
    top_k = spec.mechanism == "top-k"
    if not top_k:
        thresholds = _as_thresholds(thresholds, spec.threshold, trials)

    runs = []
    for b in range(trials):
        if top_k:
            runs.append(
                select_and_measure_top_k(
                    values,
                    epsilon=spec.epsilon,
                    k=spec.k,
                    monotonic=spec.monotonic,
                    rng=generator,
                )
            )
        else:
            runs.append(
                select_and_measure_svt(
                    values,
                    epsilon=spec.epsilon,
                    k=spec.k,
                    threshold=float(thresholds[b]),
                    monotonic=spec.monotonic,
                    adaptive=spec.adaptive,
                    rng=generator,
                )
            )

    if top_k:
        width = spec.k
    else:
        # Match the batch widths: k columns for the non-adaptive selector
        # (it stops after k answers), the longest trial for the adaptive one.
        width = spec.k if not spec.adaptive else max(
            (len(run.indices) for run in runs), default=0
        )
    indices = np.full((trials, width), -1, dtype=np.int64)
    gaps = np.full((trials, width), np.nan)
    estimates = np.full((trials, width), np.nan)
    measurements = np.full((trials, width), np.nan)
    true_values = np.full((trials, width), np.nan)
    mask = np.zeros((trials, width), dtype=bool)
    epsilon_consumed = np.empty(trials)
    for b, run in enumerate(runs):
        answered = len(run.indices)
        indices[b, :answered] = run.indices
        gaps[b, : run.gaps.size] = run.gaps
        estimates[b, :answered] = run.fused
        measurements[b, :answered] = run.measurements
        true_values[b, :answered] = run.true_values
        mask[b, :answered] = True
        epsilon_consumed[b] = run.details.get("epsilon_spent", run.total_epsilon)

    return Result(
        mechanism=_select_measure_name(spec),
        engine=Engine.REFERENCE.value,
        trials=trials,
        epsilon=float(spec.epsilon),
        epsilon_consumed=epsilon_consumed,
        indices=indices,
        gaps=gaps,
        estimates=estimates,
        measurements=measurements,
        true_values=true_values,
        mask=None if top_k else mask,
        monotonic=spec.monotonic,
        extra={"k": float(spec.k)},
    )


# ---------------------------------------------------------------------------
# Laplace measurement
# ---------------------------------------------------------------------------


def _laplace_mechanism(spec: LaplaceSpec) -> LaplaceMechanism:
    return LaplaceMechanism(
        epsilon=spec.epsilon, l1_sensitivity=spec.effective_l1_sensitivity
    )


def run_laplace_batch(
    spec: LaplaceSpec,
    *,
    trials: int,
    rng: RngLike = None,
    noise: Optional[np.ndarray] = None,
    fast_noise: bool = True,
) -> Result:
    """Batch executor for :class:`LaplaceSpec`: one (trials, n) noise draw."""
    mechanism = _laplace_mechanism(spec)
    values = spec.values()
    n = values.size
    if noise is None:
        noise = LaplaceNoise(mechanism.scale).sample_batch(
            (trials, n), rng=rng, fast=fast_noise
        )
    else:
        noise = np.asarray(noise, dtype=float)
        if noise.shape != (trials, n):
            raise ValueError(f"explicit noise must have shape {(trials, n)}")
    measurements = values[None, :] + noise
    return Result(
        mechanism=mechanism.name,
        engine=Engine.BATCH.value,
        trials=trials,
        epsilon=mechanism.epsilon,
        epsilon_consumed=np.full(trials, mechanism.epsilon),
        indices=np.tile(np.arange(n, dtype=np.int64), (trials, 1)),
        gaps=np.zeros((trials, 0)),
        estimates=measurements,
        measurements=measurements,
        true_values=np.tile(values, (trials, 1)),
        extra={"scale": mechanism.scale, "l1_sensitivity": mechanism.l1_sensitivity},
    )


def run_laplace_reference(
    spec: LaplaceSpec,
    *,
    trials: int,
    rng: RngLike = None,
    noise: Optional[np.ndarray] = None,
) -> Result:
    """Reference executor for :class:`LaplaceSpec` (per-trial release)."""
    mechanism = _laplace_mechanism(spec)
    values = spec.values()
    n = values.size
    generator = _rng_handle(rng)
    measurements = np.empty((trials, n))
    for b in range(trials):
        released = mechanism.release(values, rng=generator, noise=_row(noise, b))
        measurements[b] = released.values
    return Result(
        mechanism=mechanism.name,
        engine=Engine.REFERENCE.value,
        trials=trials,
        epsilon=mechanism.epsilon,
        epsilon_consumed=np.full(trials, mechanism.epsilon),
        indices=np.tile(np.arange(n, dtype=np.int64), (trials, 1)),
        gaps=np.zeros((trials, 0)),
        estimates=measurements,
        measurements=measurements,
        true_values=np.tile(values, (trials, 1)),
        extra={"scale": mechanism.scale, "l1_sensitivity": mechanism.l1_sensitivity},
    )


# ---------------------------------------------------------------------------
# Lyu et al. SVT catalogue variants (reference-only)
# ---------------------------------------------------------------------------


def _svt_variant_mechanism(spec: SvtVariantSpec):
    kwargs = dict(
        epsilon=spec.epsilon,
        threshold=spec.threshold,
        k=spec.k,
        sensitivity=spec.sensitivity,
    )
    if spec.variant in (1, 2):
        kwargs["monotonic"] = spec.monotonic
    return make_svt_variant(spec.variant, **kwargs)


def run_svt_variant_reference(
    spec: SvtVariantSpec, *, trials: int, rng: RngLike = None
) -> Result:
    """Reference executor for :class:`SvtVariantSpec`.

    The catalogue variants have no vectorized counterpart (they exist as
    baselines and negative fixtures), so this is the only executor
    registered for them; ``engine="batch"`` raises
    :class:`~repro.api.engines.UnsupportedEngineError`.
    """
    values = spec.values()
    n = values.size
    generator = _rng_handle(rng)
    mechanism = _svt_variant_mechanism(spec)

    above, branches, processed, epsilon_consumed, indices, gaps = _pack_svt_reference(
        lambda b: mechanism.run(values, rng=generator), trials, n, width=spec.k
    )
    return Result(
        mechanism=mechanism.name,
        engine=Engine.REFERENCE.value,
        trials=trials,
        epsilon=mechanism.epsilon,
        epsilon_consumed=epsilon_consumed,
        indices=indices,
        gaps=gaps,
        above=above,
        branches=branches,
        processed=processed,
        monotonic=bool(getattr(mechanism, "monotonic", False)),
        extra={
            "k": float(spec.k),
            "variant": float(spec.variant),
            "claimed_private": float(mechanism.claimed_private),
            "actually_private": float(mechanism.actually_private),
        },
    )


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------

register_executor(NoisyTopKSpec, Engine.BATCH.value, run_noisy_top_k_batch)
register_executor(NoisyTopKSpec, Engine.REFERENCE.value, run_noisy_top_k_reference)
register_executor(SparseVectorSpec, Engine.BATCH.value, run_sparse_vector_batch)
register_executor(SparseVectorSpec, Engine.REFERENCE.value, run_sparse_vector_reference)
register_executor(AdaptiveSvtSpec, Engine.BATCH.value, run_adaptive_svt_batch)
register_executor(AdaptiveSvtSpec, Engine.REFERENCE.value, run_adaptive_svt_reference)
register_executor(SelectMeasureSpec, Engine.BATCH.value, run_select_measure_batch)
register_executor(SelectMeasureSpec, Engine.REFERENCE.value, run_select_measure_reference)
register_executor(LaplaceSpec, Engine.BATCH.value, run_laplace_batch)
register_executor(LaplaceSpec, Engine.REFERENCE.value, run_laplace_reference)
# Reference-only: the catalogue variants have no vectorized runners.
register_executor(SvtVariantSpec, Engine.REFERENCE.value, run_svt_variant_reference)
