"""``run(spec, ...)``: the single entry point for executing mechanisms.

The facade joins the three pieces of the unified mechanism API::

    spec (repro.api.specs)  --declares-->  what to run
    registry (repro.api.registry)  --maps-->  (spec type, engine) -> executor
    run()  --executes-->  uniform Result, optional budget charge

Every consumer in the library -- the Monte-Carlo harness, the interactive
analytics session, the CLI, the benchmarks -- goes through this function, so
engine dispatch and spec marshalling live in exactly one place.
"""

from __future__ import annotations

import inspect
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.accounting.budget import BudgetExceededError
from repro.api.engines import Engine, validate_engine
from repro.api.registry import get_executor
from repro.api.result import Result
from repro.api.specs import MechanismSpec

__all__ = ["pick_thresholds", "run", "submit"]

#: Cache of (accepts-anything, accepted-option-names) per executor, so the
#: per-call option check costs a dict lookup, not an inspect.signature().
_OPTION_NAMES: Dict[object, Tuple[bool, Tuple[str, ...]]] = {}


def _check_options(executor, spec_type: type, engine_name: str, options: dict) -> None:
    """Reject options the resolved executor does not accept, by name.

    Without this, a documented option that one engine supports and the other
    does not (e.g. ``fast_noise`` on the reference engine) would surface as
    an opaque ``TypeError`` from deep inside the executor call.
    """
    if not options:
        return
    cached = _OPTION_NAMES.get(executor)
    if cached is None:
        parameters = inspect.signature(executor).parameters.values()
        accepts_any = any(p.kind is p.VAR_KEYWORD for p in parameters)
        names = tuple(
            p.name
            for p in parameters
            if p.kind in (p.KEYWORD_ONLY, p.POSITIONAL_OR_KEYWORD)
            and p.name not in ("spec", "trials", "rng")
        )
        cached = _OPTION_NAMES[executor] = (accepts_any, names)
    accepts_any, names = cached
    if accepts_any:
        return
    unsupported = sorted(set(options) - set(names))
    if unsupported:
        supported = ", ".join(repr(n) for n in names) or "none"
        raise ValueError(
            f"option(s) {', '.join(repr(n) for n in unsupported)} are not "
            f"accepted by the {engine_name!r} executor for "
            f"{spec_type.__name__}; supported option(s): {supported}"
        )


def _as_cache_seed(rng) -> int:
    """The integer root seed of a deterministic run, for content addressing."""
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return int(rng)
    raise ValueError(
        "cache= requires a reproducible run: pass rng=<int seed> so the "
        "result has a stable content address (got "
        f"{type(rng).__name__})"
    )


def _as_shard_seed(rng):
    """The root seed of a sharded run (``None`` draws fresh OS entropy)."""
    if rng is None:
        return None
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return int(rng)
    raise ValueError(
        "shards= derives per-chunk seeds from an integer root seed; pass "
        f"rng=<int seed> or rng=None, not a {type(rng).__name__}"
    )


def run(
    spec: MechanismSpec,
    *,
    engine: Union[str, Engine] = Engine.BATCH,
    trials: int = 1,
    rng=None,
    budget=None,
    shards=None,
    cache=None,
    chunk_trials=None,
    pool=None,
    **options,
) -> Result:
    """Execute ``trials`` independent runs of ``spec`` on the chosen engine.

    Parameters
    ----------
    spec:
        A validated mechanism specification (``spec.validate()`` is called
        again here, so deserialized specs cannot slip through unchecked).
    engine:
        ``"batch"`` (default) for the vectorized ``(trials, n)`` engine,
        ``"reference"`` for the per-trial reference implementations.  Spec
        types without an executor for the requested engine raise
        :class:`~repro.api.engines.UnsupportedEngineError`.
    trials:
        Number of independent executions.  The result's per-trial arrays
        always carry the trial axis; for ``trials=1`` use the result's
        ``trial_*`` accessors for the squeezed view.
    rng:
        Seed, generator or :class:`~repro.primitives.rng.RandomSource`
        threaded through to every noise draw.  The dispatch features
        constrain it: ``shards=`` needs an integer seed (or ``None``) to
        derive per-chunk seeds from, and ``cache=`` needs an integer seed so
        the run has a stable content address.
    budget:
        Optional :class:`~repro.accounting.budget.BudgetOdometer`.  When
        given, the run is *reserved* up front (``epsilon * trials``, the
        worst case -- each trial is an independent release on the same data,
        so sequential composition applies) and refused with
        :class:`~repro.accounting.budget.BudgetExceededError` **before any
        noise is drawn** if it cannot fit; afterwards only the budget the
        trials actually consumed is charged, in one ledger entry labelled
        with the spec's ``kind``.  Leave ``None`` for what-if simulations
        that release nothing.
    options:
        Engine/mechanism-specific run-time options forwarded to the
        executor: per-trial ``thresholds`` for the SVT family, explicit
        noise matrices (``noise``, ``threshold_noise``, ``query_noise``,
        ``top_noise``, ``middle_noise``) for replay, ``fast_noise`` for the
        batch samplers.  Options are checked against the resolved executor's
        signature up front, so an option the chosen spec/engine combination
        does not accept fails with a clear :class:`ValueError` naming the
        supported options instead of an opaque ``TypeError``.
    shards:
        ``None`` (default) executes in-process.  An integer fans the trial
        axis out over that many workers via :mod:`repro.dispatch`: the
        trials are split into fixed-size chunks with deterministically
        derived per-chunk seeds, so a seeded run is bit-identical however
        many shards (or which pool) execute it.
    cache:
        ``None``, a :class:`~repro.dispatch.cache.ResultCache`, or a cache
        directory path.  The run is content-addressed
        (:func:`~repro.dispatch.hashing.run_key`) and served from the cache
        on a hit; on a miss it executes and is stored.  ``cache=`` requires
        ``rng`` to be a plain integer seed, and the requirement is enforced
        **before any work happens** -- before any noise is drawn, any
        executor runs or any budget is charged -- so a non-addressable
        request fails identically on warm and cold caches.  The budget
        (when given) is charged on hits and misses alike, and by the same
        amount -- a replayed release is still a release as far as
        accounting is concerned.
    chunk_trials:
        Trials per dispatch chunk (default
        :data:`~repro.dispatch.sharding.DEFAULT_CHUNK_TRIALS`).  Part of a
        sharded run's deterministic identity -- changing it changes the
        per-chunk seed derivation, hence the sample.
    pool:
        Sharded runs only: ``None`` (serial for one shard, a fresh process
        pool otherwise), ``"serial"``, ``"process"``, or a caller-managed
        pool instance (e.g. a long-lived
        :class:`~repro.dispatch.pool.WorkerPool`).

    Returns
    -------
    Result
        The uniform result; bit-identical across engines under a shared
        explicit noise matrix.
    """
    if not isinstance(spec, MechanismSpec):
        raise TypeError(
            f"spec must be a MechanismSpec, got {type(spec).__name__}; "
            "build one from repro.api.specs or spec_from_dict()"
        )
    spec.validate()
    engine_name = validate_engine(engine)
    trials = int(trials)
    if trials < 1:
        raise ValueError(f"trials must be at least 1, got {trials}")
    if shards is None and (pool is not None or chunk_trials is not None):
        raise ValueError(
            "pool= and chunk_trials= only apply to sharded runs; pass shards="
        )
    if chunk_trials is not None:
        # Validate before the cache key is computed: an invalid chunk size
        # must fail identically on warm and cold caches.
        chunk_trials = int(chunk_trials)
        if chunk_trials < 1:
            raise ValueError(f"chunk_trials must be at least 1, got {chunk_trials}")
    executor = get_executor(type(spec), engine_name)
    _check_options(executor, type(spec), engine_name, options)
    if budget is not None:
        # Refuse before executing (and before consuming any randomness): the
        # worst case is every trial spending its full epsilon.
        reservation = spec.epsilon * trials
        if not budget.can_charge(reservation):
            raise BudgetExceededError(
                f"running {spec.kind!r} for {trials} trial(s) may consume up "
                f"to epsilon={reservation:g} but only {budget.remaining:g} of "
                "the budget remains"
            )

    if shards is None and cache is None:
        result = executor(spec, trials=trials, rng=rng, **options)
    else:
        # Deferred import: repro.dispatch imports this module (its workers
        # execute chunks through run()), so the dependency must stay
        # one-directional at import time.
        import repro.dispatch as dispatch

        cache_store = dispatch.as_result_cache(cache)
        key = None
        if cache_store is not None:
            key = dispatch.run_key(
                spec,
                engine=engine_name,
                trials=trials,
                seed=_as_cache_seed(rng),
                chunk_trials=None
                if shards is None
                else (
                    dispatch.DEFAULT_CHUNK_TRIALS
                    if chunk_trials is None
                    else chunk_trials
                ),
                options=options,
            )
            result = cache_store.get(key)
            if result is not None:
                if budget is not None:
                    budget.charge(
                        float(np.sum(result.epsilon_consumed)), label=spec.kind
                    )
                return result
        if shards is None:
            result = executor(spec, trials=trials, rng=rng, **options)
        else:
            result = dispatch.run_sharded(
                spec,
                engine=engine_name,
                trials=trials,
                seed=_as_shard_seed(rng),
                shards=shards,
                chunk_trials=chunk_trials,
                pool=pool,
                **options,
            )
        if cache_store is not None:
            cache_store.put(key, result)

    if budget is not None:
        budget.charge(float(np.sum(result.epsilon_consumed)), label=spec.kind)
    return result


def submit(
    spec: MechanismSpec,
    *,
    root=None,
    url: Optional[str] = None,
    token: Optional[str] = None,
    engine: Union[str, Engine] = Engine.BATCH,
    trials: int = 1,
    rng: int = 0,
    chunk_trials=None,
    options=None,
    job_id=None,
    tenant: Optional[str] = None,
    priority: Optional[int] = None,
):
    """Submit ``spec`` to a job-queue service root; the async ``run()``.

    Where :func:`run` executes synchronously in-process, ``submit`` enqueues
    the request on the service layer (:mod:`repro.service`) and returns a
    :class:`~repro.service.client.JobHandle` immediately; workers serving
    the same root (``python -m repro.evaluation.cli serve-worker --root
    ...``) execute the chunks, and ``handle.result(timeout=...)`` fetches
    the merged :class:`Result`.

    The determinism contract carries over: the job's result is bit-identical
    to ``run(spec, engine=engine, trials=trials, rng=rng, shards=N,
    chunk_trials=chunk_trials)`` for any worker count ``N``.  ``rng`` must
    therefore be a plain integer seed (the job needs a stable content
    address), and everything a worker could reject -- spec, engine,
    executor registration -- is validated here, before anything is queued.

    Parameters mirror :func:`run` where they overlap; ``root`` is the
    service directory (queue + job manifests + shared result cache) and
    ``options`` carries the run-time executor options as a dict (they cross
    a JSON boundary, so explicit noise matrices and per-trial thresholds
    serialize losslessly).

    Pass ``url=`` instead of ``root=`` to submit over the HTTP transport
    (:mod:`repro.net`) -- same handle, same semantics, same bit-identical
    result; ``token=`` is the bearer token when the daemon enforces auth.
    Exactly one of ``root``/``url`` must be given.

    ``tenant`` and ``priority`` place the job in the service's multi-tenant
    control plane (:mod:`repro.tenancy`): the job is admitted only if the
    tenant's remaining epsilon budget (when one is granted on the service
    root's ledger) covers its worst case, and its tasks are claimed by
    priority class with fair shares across tenants.
    """
    # Deferred imports for the same reason as the dispatch import in run():
    # the service and tenancy layers execute chunks through run(), so the
    # dependency must stay one-directional at import time (``tenant`` and
    # ``priority`` default to ``None`` here precisely so the control-plane
    # constants need not be imported until a submission actually happens).
    from repro.tenancy.scheduler import DEFAULT_PRIORITY, DEFAULT_TENANT

    if (root is None) == (url is None):
        raise ValueError(
            "pass exactly one of root= (filesystem transport) or "
            "url= (HTTP transport)"
        )
    if url is not None:
        from repro.net.client import HttpJobClient

        client = HttpJobClient(url, token=token)
    else:
        if token is not None:
            raise ValueError("token= only applies to the HTTP transport (url=)")
        from repro.service.client import JobClient

        client = JobClient(root)
    return client.submit(
        spec,
        engine=validate_engine(engine),
        trials=trials,
        seed=rng,
        chunk_trials=chunk_trials,
        options=options,
        job_id=job_id,
        tenant=DEFAULT_TENANT if tenant is None else tenant,
        priority=DEFAULT_PRIORITY if priority is None else priority,
    )


def pick_thresholds(
    counts,
    k: int,
    trials: int,
    rng=None,
    low_multiple: int = 2,
    high_multiple: int = 8,
) -> np.ndarray:
    """Per-trial thresholds from the paper's top-2k..top-8k policy.

    A thin facade over the vectorized threshold policy (one uniform draw per
    trial between the top-``2k``-th and top-``8k``-th counts), exposed here
    so facade consumers never need to touch :mod:`repro.engine.batch`
    directly.  The result is what the SVT-family specs accept as their
    ``thresholds`` run-time option.
    """
    # Imported lazily for the same acyclicity reason as the registry's
    # deferred executor loading.
    from repro.engine.batch import batch_pick_thresholds

    return batch_pick_thresholds(
        counts, k, trials, rng=rng, low_multiple=low_multiple, high_multiple=high_multiple
    )
