"""The executor registry: (spec type, engine) -> executor callable.

An *executor* is a callable with the signature::

    executor(spec, *, trials, rng, **options) -> Result

The registry maps every :class:`~repro.api.specs.MechanismSpec` subclass to
(up to) one executor per engine name.  The built-in executors for the
library's mechanisms live in :mod:`repro.api.executors` and are loaded
lazily on first lookup -- which also keeps the import graph acyclic: the
facade can be imported from anywhere (including mid-initialisation of
:mod:`repro.engine`) without dragging the heavy mechanism modules in.

Third parties (and tests) can plug in their own executors with
:func:`register_executor`; a spec type registered for only one engine raises
:class:`~repro.api.engines.UnsupportedEngineError` for the other, naming the
engines that *are* supported.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.api.engines import UnsupportedEngineError, validate_engine
from repro.api.result import Result

__all__ = [
    "get_executor",
    "register_executor",
    "registered_spec_types",
    "supported_engines",
]

#: An executor runs ``trials`` executions of one spec and returns a Result.
Executor = Callable[..., Result]

_REGISTRY: Dict[Tuple[type, str], Executor] = {}
_BUILTINS_LOADED = False


def _ensure_builtin_executors() -> None:
    # Deferred so that importing repro.api never triggers the mechanism /
    # engine modules at import time (repro.engine.session itself imports the
    # facade; eager loading here would make that import circular).  The flag
    # flips only after a *successful* import: if the import fails once, the
    # next lookup retries and surfaces the real ImportError instead of a
    # misleading empty-registry error.  (Re-entrant imports are handled by
    # Python's import machinery via sys.modules.)
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        import repro.api.executors  # noqa: F401  (registers the built-ins)

        _BUILTINS_LOADED = True


def register_executor(
    spec_type: type, engine: str, executor: Executor, *, replace: bool = False
) -> None:
    """Register ``executor`` for ``(spec_type, engine)``.

    Parameters
    ----------
    spec_type:
        A :class:`~repro.api.specs.MechanismSpec` subclass.
    engine:
        One of the canonical engine names (validated through
        :func:`~repro.api.engines.validate_engine`).
    executor:
        Callable ``executor(spec, *, trials, rng, **options) -> Result``.
    replace:
        Allow overwriting an existing registration (default: refuse).
    """
    engine = validate_engine(engine)
    key = (spec_type, engine)
    if key in _REGISTRY and not replace:
        raise ValueError(
            f"an executor for ({spec_type.__name__}, {engine!r}) is already "
            "registered; pass replace=True to overwrite it"
        )
    _REGISTRY[key] = executor


def supported_engines(spec_type: type) -> Tuple[str, ...]:
    """Engine names with a registered executor for ``spec_type``, sorted."""
    _ensure_builtin_executors()
    return tuple(
        sorted(engine for (registered, engine) in _REGISTRY if registered is spec_type)
    )


def registered_spec_types() -> Tuple[type, ...]:
    """Every spec type with at least one registered executor."""
    _ensure_builtin_executors()
    return tuple(
        sorted({registered for (registered, _) in _REGISTRY}, key=lambda t: t.__name__)
    )


def get_executor(spec_type: type, engine: str) -> Executor:
    """Look up the executor for ``(spec_type, engine)``.

    Raises
    ------
    UnsupportedEngineError
        When the spec type has executors but not for this engine (the message
        names the supported engines), or when the spec type is entirely
        unregistered.
    """
    _ensure_builtin_executors()
    engine = validate_engine(engine)
    try:
        return _REGISTRY[(spec_type, engine)]
    except KeyError:
        supported = supported_engines(spec_type)
        if supported:
            names = ", ".join(repr(name) for name in supported)
            raise UnsupportedEngineError(
                f"spec type {spec_type.__name__} has no {engine!r} executor; "
                f"supported engine(s): {names}"
            ) from None
        raise UnsupportedEngineError(
            f"no executors are registered for spec type {spec_type.__name__}"
        ) from None
