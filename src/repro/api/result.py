"""The uniform result of running a mechanism spec through the facade.

Whatever the mechanism family and whichever engine executed it, the facade
returns one :class:`Result` whose per-trial fields all share a leading trial
axis.  The batch and reference executors populate the same fields with the
same shapes and padding conventions, which is what makes the two engines
directly comparable (the equivalence tests assert bit-identical results under
a shared explicit noise matrix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.mechanisms.results import BatchTrialViews

__all__ = ["Result"]


@dataclass(frozen=True)
class Result(BatchTrialViews):
    """Uniform outcome of ``trials`` executions of one mechanism spec.

    All per-trial arrays carry a leading trial axis of length
    :attr:`trials` -- for a single execution (``trials=1``) use the
    ``trial_*`` accessors for the squeezed, padding-free view.

    Attributes
    ----------
    mechanism:
        Name of the mechanism that produced the trials.
    engine:
        Canonical engine name that executed them (``"batch"`` or
        ``"reference"``).
    trials:
        Number of independent trials.
    epsilon:
        Privacy budget each trial was charged against.
    epsilon_consumed:
        ``(B,)`` -- budget actually consumed per trial (smaller than
        ``epsilon`` for the adaptive variant).
    indices:
        ``(B, w)`` selected / above-threshold query indexes, right-padded
        with ``-1`` for trials that answered fewer than ``w`` queries.
    gaps:
        Released gaps aligned with ``indices`` (``NaN``-padded); ``(B, 0)``
        when the mechanism releases no gaps.
    estimates:
        Selection-then-measure and Laplace specs: fused / released count
        estimates aligned with ``indices``; ``None`` otherwise.
    measurements:
        Direct noisy measurements aligned with ``indices`` (``None`` when
        the spec performs no measurement step).
    true_values:
        Exact answers of the selected queries, aligned with ``indices``.
    mask:
        ``(B, w)`` validity mask for the measurement matrices (``None`` means
        every position is valid).
    above:
        SVT family: ``(B, n)`` above-threshold mask over the full stream,
        restricted to each trial's processed prefix.
    branches:
        SVT family: ``(B, n)`` int8 branch codes
        (:attr:`BRANCH_BOTTOM`/:attr:`BRANCH_MIDDLE`/:attr:`BRANCH_TOP`).
    processed:
        SVT family: ``(B,)`` stream positions examined before stopping.
    monotonic:
        Whether monotonic-query accounting was applied.
    extra:
        Mechanism-specific scalars (noise scales, branch budgets, ...).
    """

    mechanism: str
    engine: str
    trials: int
    epsilon: float
    epsilon_consumed: np.ndarray
    indices: np.ndarray
    gaps: np.ndarray
    estimates: Optional[np.ndarray] = None
    measurements: Optional[np.ndarray] = None
    true_values: Optional[np.ndarray] = None
    mask: Optional[np.ndarray] = None
    above: Optional[np.ndarray] = None
    branches: Optional[np.ndarray] = None
    processed: Optional[np.ndarray] = None
    monotonic: bool = False
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "epsilon_consumed", np.asarray(self.epsilon_consumed, dtype=float)
        )
        object.__setattr__(self, "indices", np.asarray(self.indices))
        object.__setattr__(self, "gaps", np.asarray(self.gaps, dtype=float))
        if self.indices.ndim != 2 or self.indices.shape[0] != self.trials:
            raise ValueError("indices must be a (trials, width) matrix")
        if self.epsilon_consumed.shape != (self.trials,):
            raise ValueError("epsilon_consumed must have one entry per trial")

    # -- aggregate views --------------------------------------------------------
    # num_answered / remaining_budget_fraction / branch_totals / trial_indices /
    # trial_gaps come from BatchTrialViews, shared with BatchResult.

    @property
    def epsilon_spent(self) -> np.ndarray:
        """Alias of :attr:`epsilon_consumed` (the BatchTrialViews name)."""
        return self.epsilon_consumed

    def baseline_squared_errors(self) -> np.ndarray:
        """Flat vector of squared errors of the direct measurements."""
        if self.measurements is None or self.true_values is None:
            raise ValueError("this result carries no measurement step")
        errors = (self.measurements - self.true_values) ** 2
        return errors[self.mask] if self.mask is not None else errors.ravel()

    def fused_squared_errors(self) -> np.ndarray:
        """Flat vector of squared errors of the gap-fused estimates."""
        if self.estimates is None or self.true_values is None:
            raise ValueError("this result carries no fused estimates")
        errors = (self.estimates - self.true_values) ** 2
        return errors[self.mask] if self.mask is not None else errors.ravel()
