"""Declarative, JSON-round-trippable mechanism specifications.

A :class:`MechanismSpec` is a frozen description of *what* to run -- the query
answers, the privacy budget, the mechanism parameters -- with no opinion about
*how* it runs.  The executor registry (:mod:`repro.api.registry`) maps each
spec type to batch and reference executors, and the facade
(:func:`repro.api.run`) is the single entry point that joins the two.

Because a spec is plain data (``to_dict``/``from_dict``/``to_json`` round-trip
losslessly), it can be stored in a file, queued for a worker, cached under a
hash, or shipped across a process boundary -- which is exactly what the
production-scale roadmap (sharding, async execution, request services) needs.

Every spec type carries a ``validate()`` method; deserialization rejects
unknown fields and invalid parameter values with :class:`SpecValidationError`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "AdaptiveSvtSpec",
    "LaplaceSpec",
    "MechanismSpec",
    "NoisyTopKSpec",
    "SelectMeasureSpec",
    "SparseVectorSpec",
    "SpecValidationError",
    "SvtVariantSpec",
    "spec_from_dict",
    "spec_from_json",
    "spec_kinds",
]


class SpecValidationError(ValueError):
    """Raised when a spec's parameters (or serialized payload) are invalid."""


#: Registry of spec classes by their ``kind`` string (filled by
#: ``MechanismSpec.__init_subclass__``); drives :func:`spec_from_dict`.
_SPEC_KINDS: Dict[str, type] = {}


def spec_kinds() -> Tuple[str, ...]:
    """The ``kind`` strings of every registered spec type, sorted."""
    return tuple(sorted(_SPEC_KINDS))


def _coerce_queries(queries) -> Tuple[float, ...]:
    if isinstance(queries, np.ndarray):
        if queries.ndim != 1:
            raise SpecValidationError("queries must be a one-dimensional vector")
        queries = queries.tolist()
    try:
        return tuple(float(q) for q in queries)
    except (TypeError, ValueError) as exc:
        raise SpecValidationError(f"queries must be a sequence of numbers: {exc}") from None


def _coerce_float(name: str, value) -> float:
    # OverflowError: float(10**400)-style inputs from deserialized payloads.
    try:
        return float(value)
    except (TypeError, ValueError, OverflowError) as exc:
        raise SpecValidationError(f"{name} must be a number: {exc}") from None


def _coerce_optional_float(name: str, value) -> Optional[float]:
    return None if value is None else _coerce_float(name, value)


def _coerce_int(name: str, value) -> int:
    # OverflowError: int(float("inf")) from JSON payloads like {"k": 1e400}.
    try:
        coerced = int(value)
        exact = float(coerced) == float(value)
    except (TypeError, ValueError, OverflowError) as exc:
        raise SpecValidationError(f"{name} must be an integer: {exc}") from None
    if not exact:
        raise SpecValidationError(f"{name} must be an integer, got {value!r}")
    return coerced


def _coerce_bool(name: str, value) -> bool:
    # Strict: bool() would turn any non-empty string truthy, so a JSON
    # payload with "monotonic": "false" would silently *enable* monotonic
    # accounting (halved noise scales) and void the DP guarantee.  Only real
    # booleans and exact 0/1 are accepted.
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)) and value in (0, 1):
        return bool(value)
    raise SpecValidationError(f"{name} must be a boolean, got {value!r}")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecValidationError(message)


@dataclass(frozen=True)
class MechanismSpec:
    """Base class / protocol of all mechanism specifications.

    Attributes
    ----------
    queries:
        The exact query answers the mechanism consumes, as an immutable tuple
        (any one-dimensional sequence or array is accepted and coerced).
    epsilon:
        Total privacy budget of one execution of the spec.

    Notes
    -----
    Subclasses set the class attribute ``kind`` (the serialization tag) and
    extend :meth:`validate`.  ``to_dict``/``from_dict`` round-trip every spec
    through plain JSON-compatible dictionaries; ``from_dict`` rejects unknown
    fields and invalid parameter values.
    """

    queries: Tuple[float, ...]
    epsilon: float

    #: Serialization tag; also the default odometer charge label.
    kind: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        tag = cls.__dict__.get("kind", "")
        if tag:
            _SPEC_KINDS[tag] = cls

    def __post_init__(self) -> None:
        object.__setattr__(self, "queries", _coerce_queries(self.queries))
        object.__setattr__(self, "epsilon", _coerce_float("epsilon", self.epsilon))
        # Cache the array view once: specs are immutable, and executors read
        # the query vector on every run() call (the facade-dispatch benchmark
        # guards this path).  Read-only so nothing can mutate it in place.
        values = np.asarray(self.queries, dtype=float)
        values.flags.writeable = False
        object.__setattr__(self, "_values", values)

    # -- validation -------------------------------------------------------------

    def validate(self) -> "MechanismSpec":
        """Check parameter values, raising :class:`SpecValidationError`.

        Returns the spec itself so call sites can chain
        ``spec.validate()``.
        """
        _require(len(self.queries) >= 1, "at least one query is required")
        _require(
            bool(np.all(np.isfinite(self.values()))), "queries must all be finite"
        )
        _require(
            np.isfinite(self.epsilon) and self.epsilon > 0,
            f"epsilon must be positive and finite, got {self.epsilon}",
        )
        return self

    # -- array view -------------------------------------------------------------

    def values(self) -> np.ndarray:
        """The query answers as a float vector (the executors' input).

        The returned array is a cached, read-only view; callers that need to
        mutate it must copy.
        """
        return self._values

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-compatible dictionary with a leading ``"kind"`` tag."""
        payload = {"kind": self.kind}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "MechanismSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Called on :class:`MechanismSpec` itself this dispatches on the
        ``"kind"`` tag; called on a concrete subclass the tag must match.
        Unknown fields and invalid parameter values raise
        :class:`SpecValidationError`.
        """
        if not isinstance(data, dict):
            raise SpecValidationError("spec payload must be a mapping")
        if cls is MechanismSpec:
            return spec_from_dict(data)
        payload = dict(data)
        kind = payload.pop("kind", cls.kind)
        if kind != cls.kind:
            raise SpecValidationError(f"expected kind {cls.kind!r}, got {kind!r}")
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - field_names)
        if unknown:
            raise SpecValidationError(
                f"unknown field(s) for {cls.kind!r} spec: {', '.join(unknown)}"
            )
        try:
            spec = cls(**payload)
        except TypeError as exc:
            raise SpecValidationError(f"invalid {cls.kind!r} spec: {exc}") from None
        spec.validate()
        return spec

    def to_json(self, **kwargs) -> str:
        """Serialize to a JSON string (kwargs pass through to ``json.dumps``)."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "MechanismSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecValidationError(f"spec is not valid JSON: {exc}") from None
        return cls.from_dict(data)


def spec_from_dict(data: dict) -> MechanismSpec:
    """Rebuild any registered spec type from its ``to_dict`` payload."""
    if not isinstance(data, dict):
        raise SpecValidationError("spec payload must be a mapping")
    kind = data.get("kind")
    if kind not in _SPEC_KINDS:
        known = ", ".join(spec_kinds())
        raise SpecValidationError(f"unknown spec kind {kind!r}; known kinds: {known}")
    return _SPEC_KINDS[kind].from_dict(data)


def spec_from_json(text: str) -> MechanismSpec:
    """Rebuild any registered spec type from its ``to_json`` string."""
    return MechanismSpec.from_json(text)


# ---------------------------------------------------------------------------
# concrete spec types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NoisyTopKSpec(MechanismSpec):
    """(With-gap) Noisy Top-K selection (Algorithm 1 of the paper).

    Attributes
    ----------
    k:
        Number of queries to select.
    monotonic:
        Whether the query list is monotonic (Definition 7).
    with_gap:
        Release the free consecutive gaps (requires ``k + 1`` queries);
        ``False`` selects the classical gap-free baseline.
    sensitivity:
        Per-query sensitivity.
    """

    k: int = 1
    monotonic: bool = False
    with_gap: bool = True
    sensitivity: float = 1.0

    kind: ClassVar[str] = "noisy-top-k"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "k", _coerce_int("k", self.k))
        object.__setattr__(self, "monotonic", _coerce_bool("monotonic", self.monotonic))
        object.__setattr__(self, "with_gap", _coerce_bool("with_gap", self.with_gap))
        object.__setattr__(self, "sensitivity", _coerce_float("sensitivity", self.sensitivity))

    def validate(self) -> "NoisyTopKSpec":
        super().validate()
        _require(self.k >= 1, f"k must be at least 1, got {self.k}")
        _require(
            np.isfinite(self.sensitivity) and self.sensitivity > 0,
            f"sensitivity must be positive, got {self.sensitivity}",
        )
        need = self.k + 1 if self.with_gap else self.k
        _require(
            len(self.queries) >= need,
            f"need at least {need} queries for k={self.k}"
            + (" (with-gap requires k+1)" if self.with_gap else ""),
        )
        return self


@dataclass(frozen=True)
class SparseVectorSpec(MechanismSpec):
    """(With-gap) Sparse Vector over a query stream.

    Attributes
    ----------
    threshold:
        The public threshold ``T`` (a per-trial override can be supplied at
        run time via the facade's ``thresholds`` option).
    k:
        Maximum number of above-threshold answers before stopping.
    monotonic:
        Whether the stream is monotonic.
    with_gap:
        Release the noisy gap of every above-threshold answer for free;
        ``False`` selects the indicator-only standard SVT.
    theta:
        Optional threshold/query budget-allocation hyper-parameter in (0, 1);
        ``None`` selects the Lyu et al. ratio.
    sensitivity:
        Per-query sensitivity.
    """

    threshold: float = 0.0
    k: int = 1
    monotonic: bool = False
    with_gap: bool = True
    theta: Optional[float] = None
    sensitivity: float = 1.0

    kind: ClassVar[str] = "sparse-vector"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "threshold", _coerce_float("threshold", self.threshold))
        object.__setattr__(self, "k", _coerce_int("k", self.k))
        object.__setattr__(self, "monotonic", _coerce_bool("monotonic", self.monotonic))
        object.__setattr__(self, "with_gap", _coerce_bool("with_gap", self.with_gap))
        object.__setattr__(self, "theta", _coerce_optional_float("theta", self.theta))
        object.__setattr__(self, "sensitivity", _coerce_float("sensitivity", self.sensitivity))

    def validate(self) -> "SparseVectorSpec":
        super().validate()
        _require(self.k >= 1, f"k must be at least 1, got {self.k}")
        _require(np.isfinite(self.threshold), "threshold must be finite")
        if self.theta is not None:
            _require(0.0 < self.theta < 1.0, f"theta must lie in (0, 1), got {self.theta}")
        _require(
            np.isfinite(self.sensitivity) and self.sensitivity > 0,
            f"sensitivity must be positive, got {self.sensitivity}",
        )
        return self


@dataclass(frozen=True)
class AdaptiveSvtSpec(MechanismSpec):
    """Adaptive-Sparse-Vector-with-Gap (Algorithm 2 of the paper).

    Attributes
    ----------
    threshold:
        The public threshold ``T`` (per-trial override via the facade's
        ``thresholds`` option).
    k:
        Minimum number of above-threshold answers the budget must fund.
    monotonic:
        Whether the stream is monotonic (halves the per-query noise scales).
    theta:
        Optional budget-allocation hyper-parameter in (0, 1).
    sigma_multiplier:
        Top-branch margin in standard deviations of the top-branch noise.
    sensitivity:
        Per-query sensitivity.
    max_answers:
        Optional hard cap on above-threshold answers (the Figure 4 stop).
    """

    threshold: float = 0.0
    k: int = 1
    monotonic: bool = False
    theta: Optional[float] = None
    sigma_multiplier: float = 2.0
    sensitivity: float = 1.0
    max_answers: Optional[int] = None

    kind: ClassVar[str] = "adaptive-svt"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "threshold", _coerce_float("threshold", self.threshold))
        object.__setattr__(self, "k", _coerce_int("k", self.k))
        object.__setattr__(self, "monotonic", _coerce_bool("monotonic", self.monotonic))
        object.__setattr__(self, "theta", _coerce_optional_float("theta", self.theta))
        object.__setattr__(
            self, "sigma_multiplier", _coerce_float("sigma_multiplier", self.sigma_multiplier)
        )
        object.__setattr__(self, "sensitivity", _coerce_float("sensitivity", self.sensitivity))
        if self.max_answers is not None:
            object.__setattr__(self, "max_answers", _coerce_int("max_answers", self.max_answers))

    def validate(self) -> "AdaptiveSvtSpec":
        super().validate()
        _require(self.k >= 1, f"k must be at least 1, got {self.k}")
        _require(np.isfinite(self.threshold), "threshold must be finite")
        if self.theta is not None:
            _require(0.0 < self.theta < 1.0, f"theta must lie in (0, 1), got {self.theta}")
        _require(
            np.isfinite(self.sigma_multiplier) and self.sigma_multiplier > 0,
            f"sigma_multiplier must be positive, got {self.sigma_multiplier}",
        )
        _require(
            np.isfinite(self.sensitivity) and self.sensitivity > 0,
            f"sensitivity must be positive, got {self.sensitivity}",
        )
        if self.max_answers is not None:
            _require(self.max_answers >= 1, "max_answers must be at least 1 when given")
        return self


@dataclass(frozen=True)
class SelectMeasureSpec(MechanismSpec):
    """Selection-then-measure protocol (Sections 5.2 / 6.2 of the paper).

    Half of ``epsilon`` funds a with-gap selection, half funds direct Laplace
    measurements of the selected queries, and the free gaps are fused with the
    measurements (BLUE for Top-K, inverse-variance for SVT).

    Attributes
    ----------
    k:
        Number of queries to select (Top-K) / target answer count (SVT).
    mechanism:
        ``"top-k"`` or ``"svt"``.
    threshold:
        Public threshold, required for ``mechanism="svt"`` (per-trial
        override via the facade's ``thresholds`` option).
    monotonic:
        Whether the queries are monotonic (counting queries -- the paper's
        experiments use ``True``).
    adaptive:
        SVT only: select with Adaptive-Sparse-Vector-with-Gap instead of the
        non-adaptive variant.
    """

    k: int = 1
    mechanism: str = "top-k"
    threshold: Optional[float] = None
    monotonic: bool = True
    adaptive: bool = False

    kind: ClassVar[str] = "select-measure"

    #: Valid values of :attr:`mechanism`.
    MECHANISMS: ClassVar[Tuple[str, ...]] = ("top-k", "svt")

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "k", _coerce_int("k", self.k))
        object.__setattr__(self, "threshold", _coerce_optional_float("threshold", self.threshold))
        object.__setattr__(self, "monotonic", _coerce_bool("monotonic", self.monotonic))
        object.__setattr__(self, "adaptive", _coerce_bool("adaptive", self.adaptive))

    def validate(self) -> "SelectMeasureSpec":
        super().validate()
        _require(self.k >= 1, f"k must be at least 1, got {self.k}")
        _require(
            self.mechanism in self.MECHANISMS,
            f"mechanism must be one of {self.MECHANISMS}, got {self.mechanism!r}",
        )
        if self.mechanism == "top-k":
            _require(
                len(self.queries) >= self.k + 1,
                f"top-k selection-then-measure needs at least k+1={self.k + 1} queries",
            )
            _require(not self.adaptive, "adaptive selection only applies to mechanism='svt'")
            _require(self.threshold is None, "threshold only applies to mechanism='svt'")
        else:
            _require(
                self.threshold is not None and np.isfinite(self.threshold),
                "mechanism='svt' requires a finite threshold",
            )
        return self


@dataclass(frozen=True)
class LaplaceSpec(MechanismSpec):
    """Direct Laplace measurement of a query vector (Theorem 1).

    Attributes
    ----------
    l1_sensitivity:
        L1 sensitivity of the query vector; ``None`` defaults to the number
        of queries (the counting-query convention of Sections 5.2/6.2).
    """

    l1_sensitivity: Optional[float] = None

    kind: ClassVar[str] = "laplace"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(
            self, "l1_sensitivity", _coerce_optional_float("l1_sensitivity", self.l1_sensitivity)
        )

    @property
    def effective_l1_sensitivity(self) -> float:
        """The sensitivity actually used (defaults to the query count)."""
        if self.l1_sensitivity is None:
            return float(len(self.queries))
        return self.l1_sensitivity

    def validate(self) -> "LaplaceSpec":
        super().validate()
        if self.l1_sensitivity is not None:
            _require(
                np.isfinite(self.l1_sensitivity) and self.l1_sensitivity > 0,
                f"l1_sensitivity must be positive, got {self.l1_sensitivity}",
            )
        return self


@dataclass(frozen=True)
class SvtVariantSpec(MechanismSpec):
    """One of the six Lyu et al. SVT catalogue variants.

    The variants (including the deliberately broken ones kept as negative
    fixtures) are registered **reference-only**: running them with
    ``engine="batch"`` raises
    :class:`~repro.api.engines.UnsupportedEngineError`.

    Attributes
    ----------
    variant:
        Catalogue index 1-6 (Lyu et al. numbering).
    threshold:
        The public threshold ``T``.
    k:
        Maximum number of above-threshold answers before stopping.
    monotonic:
        Only meaningful for the correct variants 1 and 2; the broken variants
        3-6 do not implement monotonic accounting.
    sensitivity:
        Per-query sensitivity.
    """

    variant: int = 1
    threshold: float = 0.0
    k: int = 1
    monotonic: bool = False
    sensitivity: float = 1.0

    kind: ClassVar[str] = "svt-variant"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "variant", _coerce_int("variant", self.variant))
        object.__setattr__(self, "threshold", _coerce_float("threshold", self.threshold))
        object.__setattr__(self, "k", _coerce_int("k", self.k))
        object.__setattr__(self, "monotonic", _coerce_bool("monotonic", self.monotonic))
        object.__setattr__(self, "sensitivity", _coerce_float("sensitivity", self.sensitivity))

    def validate(self) -> "SvtVariantSpec":
        super().validate()
        _require(1 <= self.variant <= 6, f"variant must be 1-6, got {self.variant}")
        _require(self.k >= 1, f"k must be at least 1, got {self.k}")
        _require(np.isfinite(self.threshold), "threshold must be finite")
        _require(
            np.isfinite(self.sensitivity) and self.sensitivity > 0,
            f"sensitivity must be positive, got {self.sensitivity}",
        )
        _require(
            not (self.monotonic and self.variant >= 3),
            f"variant {self.variant} does not implement monotonic accounting",
        )
        return self
