"""Deterministic fault injection and contract checking for the service stack.

The package has three faces:

* :mod:`repro.chaos.faults` -- a seeded :class:`FaultPlan` (a pure function
  of its seed) and the :class:`FaultInjector` hook the queue, broker,
  worker and ledger accept via their optional ``injector=`` parameter;
* :mod:`repro.chaos.harness` -- a multi-process chaos campaign: real
  subprocess workers under a kill/restart schedule, client threads
  submitting multi-tenant jobs, every job driven to a terminal state;
* :mod:`repro.chaos.invariants` -- the AWDIT-style post-hoc checker that
  replays the surviving root files alone and verdicts the stack's
  contracts (ledger conservation, exactly-once settlement, no lost jobs,
  dead-letter consistency, cache integrity, oracle-identical results).

``python -m repro.evaluation.cli chaos --root DIR --seed N`` runs a
campaign and prints the verdict table.
"""

from repro.chaos.faults import (
    SITES,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    read_fired,
)
from repro.chaos.harness import (
    CampaignConfig,
    CampaignReport,
    render_report,
    run_campaign,
)
from repro.chaos.invariants import (
    Verdict,
    check_invariants,
    render_verdicts,
    result_digest,
)

__all__ = [
    "SITES",
    "CampaignConfig",
    "CampaignReport",
    "FaultInjector",
    "FaultPlan",
    "InjectedCrash",
    "Verdict",
    "check_invariants",
    "read_fired",
    "render_report",
    "render_verdicts",
    "result_digest",
    "run_campaign",
]
