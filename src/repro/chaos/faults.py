"""Seeded fault plans and the injector hook the service layers accept.

Determinism is the whole design: a :class:`FaultPlan` is a pure function of
its seed, and whether a given *occurrence* of an injection site fires is a
pure function of ``(seed, scope, site, occurrence count)`` -- no wall
clock, no global RNG.  Real concurrency still perturbs *which wall-clock
moment* an occurrence happens at, but the schedule of faults each actor
sees is identical run to run, which is what makes a failing campaign seed
replayable.

Each actor (a worker process incarnation, a client thread) owns one
:class:`FaultInjector` with a distinct ``scope`` string; the injector
counts occurrences per site and fires when::

    count % period(site) == offset(scope, site)

with the period derived from the seed and the offset from
``sha256(seed:scope:site)`` -- different actors fault at different points
of their own timelines, so one seed explores many interleavings at once.

Fired faults are appended (single ``O_APPEND`` write per line, the
journal discipline) to ``<log_dir>/fired.jsonl`` so the harness can prove
site coverage after the dust settles; :func:`read_fired` aggregates it.

The injection sites (:data:`SITES`):

``crash-before-ack``
    Worker dies after the done marker, before acking -- the duplicate
    delivery case idempotent results must absorb.
``crash-after-put``
    Worker dies between the cache put and the done marker -- a cached
    chunk the job does not know about yet.
``torn-journal-write``
    Ledger writer crashes mid-append, leaving a partial trailing line the
    next locked writer must repair.
``torn-queue-write``
    Queue producer crashes mid-put, leaving a torn temp file (never a
    torn published entry -- publication is the atomic link).
``delayed-ack``
    Worker stalls past its lease before acking, exercising the fencing
    token against a reaper's requeue.
``claim-io-error``
    Transient ``OSError`` from the claim path (an NFS hiccup).
``cache-put-io-error``
    Transient ``OSError`` from the result-cache put.
``stale-lock``
    Ledger lock holder "crashes" without releasing; the next writer must
    break the stale lock.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Union

__all__ = [
    "SITES",
    "DEFAULT_PERIOD_RANGES",
    "FaultInjector",
    "FaultPlan",
    "InjectedCrash",
    "derive_fraction",
    "read_fired",
]

#: Every named injection site, in the order the verdict table reports them.
SITES = (
    "crash-before-ack",
    "crash-after-put",
    "torn-journal-write",
    "torn-queue-write",
    "delayed-ack",
    "claim-io-error",
    "cache-put-io-error",
    "stale-lock",
)

#: Inclusive ``(lo, hi)`` bounds the seeded period of each site is drawn
#: from.  Queue/worker sites occur dozens of times per campaign (every
#: claim poll counts), so they afford long periods; ledger sites only occur
#: a handful of times per client (one append per mutation), so their
#: periods stay short enough to fire within one campaign.
DEFAULT_PERIOD_RANGES: Mapping[str, tuple] = {
    "crash-before-ack": (4, 6),
    "crash-after-put": (5, 7),
    # Torn-write and stale-lock periods must exceed the writes one retried
    # operation performs (a submit puts chunk-count files and appends one
    # journal record per attempt), or the "transient" fault becomes
    # permanent: every retry tears again and nothing ever commits.
    "torn-journal-write": (4, 6),
    "torn-queue-write": (6, 9),
    "delayed-ack": (5, 7),
    "claim-io-error": (4, 6),
    "cache-put-io-error": (3, 5),
    "stale-lock": (5, 8),
}


class InjectedCrash(BaseException):
    """A simulated worker death.

    Deliberately **not** an ``Exception``: the worker's per-task failure
    handling catches ``Exception`` (a failing task is nacked and retried),
    but a crash must take the whole actor down -- exactly like the
    ``os._exit`` a subprocess injector uses.
    """


def _digest(*parts) -> int:
    """A stable 64-bit integer from the given parts (the plan's only
    source of randomness -- no global RNG, no wall clock)."""
    text = ":".join(str(part) for part in parts)
    raw = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(raw[:8], "big")


def derive_fraction(seed: int, *labels) -> float:
    """A deterministic float in ``[0, 1)`` -- the harness derives its
    kill-schedule delays from these instead of ``random``."""
    return _digest(seed, *labels) / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """Which faults a seed injects, and how often.

    ``periods`` maps each site to its firing period (``0`` disables the
    site).  Two plans built from the same seed are equal, and
    :meth:`should_fire` is a pure function of its arguments -- the
    foundations of run-to-run reproducibility.
    """

    seed: int
    periods: Mapping[str, int] = field(default_factory=dict)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        disable: Iterable[str] = (),
        overrides: Optional[Mapping[str, int]] = None,
    ) -> "FaultPlan":
        """Derive every site's period from the seed.

        ``disable`` names sites to switch off; ``overrides`` pins explicit
        periods (tests use period 1 to make a site fire on its first
        occurrence).
        """
        unknown = set(disable) - set(SITES)
        unknown |= set(overrides or {}) - set(SITES)
        if unknown:
            raise ValueError(f"unknown injection site(s): {sorted(unknown)}")
        periods: Dict[str, int] = {}
        for site in SITES:
            lo, hi = DEFAULT_PERIOD_RANGES[site]
            periods[site] = lo + _digest(seed, "period", site) % (hi - lo + 1)
        for site in disable:
            periods[site] = 0
        if overrides:
            periods.update({site: int(n) for site, n in overrides.items()})
        return cls(seed=int(seed), periods=periods)

    def offset(self, scope: str, site: str) -> int:
        """This actor's phase within the site's period."""
        period = int(self.periods.get(site, 0))
        if period <= 0:
            return 0
        return _digest(self.seed, "offset", scope, site) % period

    def should_fire(self, scope: str, site: str, count: int) -> bool:
        """Whether occurrence ``count`` (0-based) of ``site`` fires for the
        actor named ``scope``."""
        period = int(self.periods.get(site, 0))
        if period <= 0:
            return False
        return count % period == self.offset(scope, site)


class FaultInjector:
    """One actor's per-site occurrence counter over a :class:`FaultPlan`.

    Behaviour methods (what an instrumented call site invokes):

    * :meth:`fire` -- count the occurrence; True when it fires (the caller
      implements the fault, e.g. skipping a lock release);
    * :meth:`crash` -- raise :class:`InjectedCrash` (``crash_mode="raise"``)
      or ``os._exit(23)`` (``crash_mode="exit"``, subprocess workers);
    * :meth:`io_error` -- raise a transient ``OSError``;
    * :meth:`delay` -- sleep (a stall past a lease, never an exception);
    * :meth:`torn_write` -- True when the caller should tear its write and
      raise.

    Not thread-safe by design: one injector per actor (the per-site counts
    ARE the actor's timeline, and sharing them across threads would make
    the schedule race-dependent).
    """

    #: The subprocess exit status of an injected crash, so the harness can
    #: tell a planned death from a real bug in the worker process.
    CRASH_EXIT_STATUS = 23

    def __init__(
        self,
        plan: FaultPlan,
        scope: str,
        *,
        log_dir: Union[str, os.PathLike, None] = None,
        crash_mode: str = "raise",
    ) -> None:
        if crash_mode not in ("raise", "exit"):
            raise ValueError(f"crash_mode must be 'raise' or 'exit', got {crash_mode!r}")
        self.plan = plan
        self.scope = str(scope)
        self.crash_mode = crash_mode
        self.log_path = None if log_dir is None else Path(log_dir) / "fired.jsonl"
        self.counts: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}

    def _step(self, site: str) -> bool:
        if site not in SITES:
            raise ValueError(f"unknown injection site {site!r}")
        count = self.counts.get(site, 0)
        self.counts[site] = count + 1
        if not self.plan.should_fire(self.scope, site, count):
            return False
        self.fired[site] = self.fired.get(site, 0) + 1
        self._log(site, count)
        return True

    def _log(self, site: str, count: int) -> None:
        if self.log_path is None:
            return
        record = {
            "site": site,
            "scope": self.scope,
            "count": count,
            "at": time.time(),
        }
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        # One O_APPEND write per line, like the ledger journal: concurrent
        # actors sharing the log cannot interleave mid-record.  Best
        # effort -- the log proves coverage, it must never *cause* a fault.
        try:
            self.log_path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.log_path, os.O_WRONLY | os.O_APPEND | os.O_CREAT)
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
        except OSError:
            pass

    # -- behaviours ---------------------------------------------------------

    def fire(self, site: str) -> bool:
        """Count one occurrence; the caller implements the fault on True."""
        return self._step(site)

    def crash(self, site: str) -> None:
        """Die here (when the occurrence fires)."""
        if not self._step(site):
            return
        if self.crash_mode == "exit":
            os._exit(self.CRASH_EXIT_STATUS)
        raise InjectedCrash(f"injected crash at {site} (scope {self.scope})")

    def io_error(self, site: str) -> None:
        """Raise a transient OSError (when the occurrence fires)."""
        if self._step(site):
            raise OSError(f"injected transient I/O error at {site} (scope {self.scope})")

    def delay(self, site: str, seconds: float) -> None:
        """Stall for ``seconds`` (when the occurrence fires)."""
        if self._step(site) and seconds > 0:
            time.sleep(seconds)

    def torn_write(self, site: str) -> bool:
        """True when the caller should write a torn prefix and raise."""
        return self._step(site)


def read_fired(log_dir: Union[str, os.PathLike]) -> Dict[str, int]:
    """Aggregate ``fired.jsonl``: total fires per site (absent sites 0).

    Torn trailing lines (an actor killed mid-log) are skipped, like every
    other journal reader in this codebase.
    """
    totals: Dict[str, int] = {site: 0 for site in SITES}
    path = Path(log_dir) / "fired.jsonl"
    try:
        raw = path.read_bytes()
    except OSError:
        return totals
    end = raw.rfind(b"\n")
    if end < 0:
        return totals
    for line in raw[: end + 1].splitlines():
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            continue
        if isinstance(record, dict) and record.get("site") in totals:
            totals[record["site"]] += 1
    return totals
