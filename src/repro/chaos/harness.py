"""The chaos campaign: subprocess workers, client threads, one verdict.

A campaign drives the real multi-process stack -- no mocks -- against one
service root:

1. **Setup**: write the campaign config under ``<root>/chaos/`` (the
   worker subprocesses read their fault plan from it) and grant the
   budgeted tenant enough epsilon that admission control never refuses a
   campaign job (refusals would make the job set schedule-dependent).
2. **Chaos phase**: spawn real worker subprocesses
   (``python -m repro.chaos.worker_main``), each with its own seeded
   injector scope, under a derived kill/restart schedule (SIGKILL -- no
   cleanup handlers get to run); meanwhile N client threads submit
   multi-tenant jobs through injector-wrapped brokers, retrying the
   transient faults their own submissions hit.
3. **Recovery phase**: kill whatever still runs, then drive every
   committed job to a terminal state with injector-free in-process
   workers (leases expire, the reaper requeues, retries drain), sweep
   settlements, and fetch every done job's result exactly as a client
   would.
4. **Verdict**: aggregate the fired-fault log and run the
   :mod:`repro.chaos.invariants` checker over the surviving root files.

Reproducibility: the job set, every actor's fault schedule and the kill
delays are pure functions of the seed.  OS scheduling still varies *when*
things interleave, so per-job terminal states may differ run to run --
what must hold every run is the full invariant suite, and that any job
that completes does so with the oracle-identical bytes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.api.specs import NoisyTopKSpec, SparseVectorSpec
from repro.ioutil import atomic_write_text
from repro.chaos.faults import FaultInjector, FaultPlan, derive_fraction, read_fired
from repro.chaos.invariants import (
    Verdict,
    check_invariants,
    render_verdicts,
    result_digest,
)
from repro.service.broker import Broker, ServiceError
from repro.service.queue import FileJobQueue
from repro.service.worker import Worker
from repro.tenancy.ledger import BudgetLedger

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "render_report",
    "run_campaign",
]

#: The budgeted tenant (admission-controlled) and the unbounded ones.
BUDGETED_TENANT = "acme"
TENANTS = (BUDGETED_TENANT, "free", "burst")

#: The fixed query answers every campaign job selects over (well
#: separated, so the mechanisms behave; the *jobs* differ in spec type,
#: epsilon and seed, which is what the determinism contract exercises).
_QUERIES = (
    980.0, 850.0, 720.0, 610.0, 540.0, 420.0,
    310.0, 250.0, 180.0, 120.0, 60.0, 25.0,
)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign derives from (and nothing else).

    The config is persisted to ``<root>/chaos/config.json`` so the worker
    subprocesses rebuild the identical :class:`FaultPlan` and queue/ledger
    parameters from the root alone.
    """

    seed: int = 0
    clients: int = 2
    jobs_per_client: int = 3
    workers: int = 2
    worker_restarts: int = 2
    trials: int = 180
    chunk_trials: int = 45
    max_attempts: int = 4
    lease_seconds: float = 1.0
    stale_lock_seconds: float = 1.0
    lock_timeout: float = 20.0
    kill_after: Tuple[float, float] = (0.6, 1.8)
    extra_chaos_seconds: float = 1.0
    worker_deadline_seconds: float = 120.0
    recovery_timeout: float = 90.0
    include_poison: bool = True
    include_cancel: bool = True
    disable: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["kill_after"] = list(self.kill_after)
        payload["disable"] = list(self.disable)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignConfig":
        payload = dict(payload)
        payload["kill_after"] = tuple(payload.get("kill_after", (0.6, 1.8)))
        payload["disable"] = tuple(payload.get("disable", ()))
        return cls(**payload)

    def plan(self) -> FaultPlan:
        return FaultPlan.from_seed(self.seed, disable=self.disable)


@dataclass
class CampaignReport:
    """What one campaign observed, judged and concluded."""

    seed: int
    verdicts: List[Verdict]
    fired: Dict[str, int]
    job_states: Dict[str, str]
    result_digests: Dict[str, str]
    notes: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(v.passed for v in self.verdicts)


def _job_requests(config: CampaignConfig, client: int) -> List[dict]:
    """Client ``client``'s deterministic submission list (a pure function
    of the seed -- the campaign's workload is part of its identity)."""
    from repro.chaos.faults import _digest

    requests = []
    for j in range(config.jobs_per_client):
        stamp = _digest(config.seed, "job", client, j)
        epsilon = 0.5 + (stamp % 4) * 0.25
        monotonic = bool((stamp >> 8) % 2)
        if stamp % 2:
            spec = NoisyTopKSpec(
                queries=_QUERIES, epsilon=epsilon, k=3, monotonic=monotonic
            )
        else:
            spec = SparseVectorSpec(
                queries=_QUERIES,
                epsilon=epsilon,
                threshold=400.0,
                k=3,
                monotonic=monotonic,
            )
        requests.append(
            {
                "spec": spec,
                "trials": config.trials,
                "seed": int(stamp % 100_000),
                "chunk_trials": config.chunk_trials,
                "job_id": f"chaos-{config.seed}-c{client}-j{j}",
                "tenant": TENANTS[(client + j) % len(TENANTS)],
                "priority": j % 2,
            }
        )
    if client == 0 and config.include_poison:
        # One guaranteed dead-letter: 'thresholds' passes submit-side
        # validation (the executor accepts the keyword) but raises in the
        # worker on every attempt, so the job exhausts max_attempts and
        # permanently fails -- the stranded-budget scenario the
        # dead-letter settlement exists for.
        requests.append(
            {
                "spec": SparseVectorSpec(
                    queries=_QUERIES, epsilon=0.75, threshold=400.0, k=2
                ),
                "trials": config.chunk_trials * 2,
                "seed": 7,
                "chunk_trials": config.chunk_trials,
                "options": {"thresholds": "not-a-number"},
                "job_id": f"chaos-{config.seed}-poison",
                "tenant": BUDGETED_TENANT,
                "priority": 0,
            }
        )
    return requests


def _worst_case_epsilon(requests: List[dict]) -> float:
    return sum(r["spec"].epsilon * r["trials"] for r in requests)


def _build_broker(root: Path, config: CampaignConfig, injector=None) -> Broker:
    queue = FileJobQueue(
        root / "queue",
        max_attempts=config.max_attempts,
        lease_seconds=config.lease_seconds,
        injector=injector,
    )
    ledger = BudgetLedger(
        root / "tenants",
        lock_timeout=config.lock_timeout,
        stale_lock_seconds=config.stale_lock_seconds,
        injector=injector,
    )
    return Broker(root, queue=queue, ledger=ledger)


def _client_thread(
    root: Path,
    config: CampaignConfig,
    client: int,
    chaos_dir: Path,
    committed: List[str],
    notes: List[str],
) -> None:
    injector = FaultInjector(
        config.plan(), f"client-{client}", log_dir=chaos_dir, crash_mode="raise"
    )
    broker = _build_broker(root, config, injector=injector)
    cancelled_target: Optional[str] = None
    for j, request in enumerate(_job_requests(config, client)):
        job_id = request["job_id"]
        for attempt in range(8):
            try:
                broker.submit(**request)
                committed.append(job_id)
                break
            except ServiceError as exc:
                if "already exists" in str(exc):
                    committed.append(job_id)  # a prior attempt committed
                    break
                time.sleep(0.1 * (attempt + 1))
            except Exception:  # noqa: BLE001 -- injected faults; retry
                time.sleep(0.1 * (attempt + 1))
        else:
            notes.append(f"client-{client}: job {job_id!r} never committed")
            continue
        if config.include_cancel and client == 1 and j == 0:
            cancelled_target = job_id
    if cancelled_target is not None:
        # A client changing its mind mid-flight: cancellation must settle
        # whatever the job consumed, whether or not chunks already ran.
        time.sleep(0.2)
        for attempt in range(6):
            try:
                broker.cancel(cancelled_target)
                break
            except Exception:  # noqa: BLE001 -- injected faults; retry
                time.sleep(0.1 * (attempt + 1))
        else:
            notes.append(
                f"client-{client}: cancel of {cancelled_target!r} never landed"
            )


def _spawn_worker(
    root: Path, logs_dir: Path, slot: int, incarnation: int, config: CampaignConfig
) -> dict:
    scope = f"worker-{slot}i{incarnation}"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    log = open(logs_dir / f"{scope}.log", "ab")
    try:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.chaos.worker_main", str(root), scope],
            env=env,
            stdout=log,
            stderr=subprocess.STDOUT,
        )
    finally:
        log.close()  # the child holds its own copy of the fd
    lo, hi = config.kill_after
    delay = lo + derive_fraction(config.seed, "kill", scope) * max(0.0, hi - lo)
    return {
        "proc": proc,
        "incarnation": incarnation,
        "kill_at": time.monotonic() + delay,
    }


def run_campaign(
    root: Union[str, os.PathLike], config: CampaignConfig
) -> CampaignReport:
    """Run one seeded campaign against ``root``; return the report."""
    root = Path(root)
    chaos_dir = root / "chaos"
    logs_dir = chaos_dir / "logs"
    logs_dir.mkdir(parents=True, exist_ok=True)
    # Atomic: ``worker_main`` subprocesses rebuild their fault plan from
    # this file, and a torn config would silently change their schedules.
    atomic_write_text(
        chaos_dir / "config.json",
        json.dumps(config.to_dict(), indent=2, sort_keys=True),
    )

    # Grant the budgeted tenant comfortably more than every campaign job's
    # worst case combined: admission control stays *armed* (the ledger
    # still enforces the overdraft check on every charge) but never
    # refuses, so the committed job set is schedule-independent.
    all_requests = [
        request
        for client in range(config.clients)
        for request in _job_requests(config, client)
    ]
    worst = _worst_case_epsilon(
        [r for r in all_requests if r["tenant"] == BUDGETED_TENANT]
    )
    setup_ledger = BudgetLedger(
        root / "tenants",
        lock_timeout=config.lock_timeout,
        stale_lock_seconds=config.stale_lock_seconds,
    )
    setup_ledger.grant(BUDGETED_TENANT, max(worst * 2.0, 1.0))

    notes: List[str] = []
    committed: List[str] = []
    clients = [
        threading.Thread(
            target=_client_thread,
            args=(root, config, client, chaos_dir, committed, notes),
            daemon=True,
        )
        for client in range(config.clients)
    ]

    # -- chaos phase --------------------------------------------------------
    slots = {
        slot: _spawn_worker(root, logs_dir, slot, 0, config)
        for slot in range(config.workers)
    }
    for thread in clients:
        thread.start()

    def tend_workers() -> None:
        for slot, state in list(slots.items()):
            proc = state["proc"]
            died = proc.poll() is not None
            if not died and time.monotonic() < state["kill_at"]:
                continue
            if not died:
                proc.kill()
            proc.wait()
            if state["incarnation"] < config.worker_restarts:
                slots[slot] = _spawn_worker(
                    root, logs_dir, slot, state["incarnation"] + 1, config
                )
            else:
                del slots[slot]

    for thread in clients:
        while thread.is_alive():
            tend_workers()
            thread.join(timeout=0.05)
    chaos_until = time.monotonic() + config.extra_chaos_seconds
    while time.monotonic() < chaos_until:
        tend_workers()
        time.sleep(0.05)
    for state in slots.values():
        state["proc"].kill()
        state["proc"].wait()

    # -- recovery phase -----------------------------------------------------
    broker = _build_broker(root, config)  # injector-free
    worker = Worker(broker, worker_id="recovery", poll_interval=0.01)
    committed = sorted(set(committed))
    deadline = time.monotonic() + config.recovery_timeout
    job_states: Dict[str, str] = {}
    while True:
        worker.run_until_idle()
        job_states = {
            job_id: broker.status(job_id).state for job_id in committed
        }
        counts = broker.queue.counts()
        # Terminal jobs are not enough: a duplicate claim a SIGKILLed
        # worker left behind can outlive the moment its job turns done --
        # keep driving until its lease expires, the reaper requeues it and
        # the worker retires it, or the checker would (rightly) flag an
        # orphaned claim.
        if (
            all(
                state in ("done", "failed", "cancelled")
                for state in job_states.values()
            )
            and counts["pending"] == 0
            and counts["claimed"] == 0
        ):
            break
        if time.monotonic() >= deadline:
            stuck = {j: s for j, s in job_states.items() if s not in ("done", "failed", "cancelled")}
            notes.append(f"recovery timeout: non-terminal jobs {stuck}")
            break
        time.sleep(0.1)

    # Settlement sweep + client-side fetch: done jobs are fetched exactly
    # as a client would (which also settles and warms the merged entry);
    # failed/cancelled jobs get the idempotent settle_terminal sweep -- a
    # no-op when mark_failed/cancel already settled them, the repair when
    # a chaos-time settle was torn away.
    result_digests: Dict[str, str] = {}
    for job_id, state in sorted(job_states.items()):
        try:
            if state == "done":
                result_digests[job_id] = result_digest(broker.result(job_id))
            else:
                broker.settle_terminal(job_id)
        except Exception as exc:  # noqa: BLE001 -- the checker will judge it
            notes.append(f"post-recovery {job_id!r} ({state}): {exc}")

    verdicts = check_invariants(
        root, stale_lock_seconds=config.stale_lock_seconds
    )
    if any(state not in ("done", "failed", "cancelled") for state in job_states.values()):
        verdicts.insert(
            0,
            Verdict(
                "all-jobs-terminal",
                False,
                f"non-terminal: {job_states}",
            ),
        )
    return CampaignReport(
        seed=config.seed,
        verdicts=verdicts,
        fired=read_fired(chaos_dir),
        job_states=job_states,
        result_digests=result_digests,
        notes=notes,
    )


def render_report(report: CampaignReport) -> str:
    """The chaos CLI verb's verdict table."""
    lines = [f"chaos campaign seed={report.seed}", ""]
    lines.append("injection sites fired:")
    for site, count in sorted(report.fired.items()):
        lines.append(f"  {site:<22} {count}")
    lines.append("")
    lines.append("job outcomes:")
    for job_id, state in sorted(report.job_states.items()):
        lines.append(f"  {job_id:<28} {state}")
    lines.append("")
    lines.append("contract verdicts:")
    for line in render_verdicts(report.verdicts).splitlines():
        lines.append(f"  {line}")
    for note in report.notes:
        lines.append(f"note: {note}")
    lines.append("")
    lines.append("VERDICT: " + ("PASS" if report.passed else "FAIL"))
    return "\n".join(lines) + "\n"
