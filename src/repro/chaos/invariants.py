"""The AWDIT-style post-hoc contract checker.

Everything is judged from the service root's **surviving files alone** --
the queue directories, the job manifests and markers, the ledger journal,
the cache entries -- never from what any actor *claims* happened.  That is
the point: a fleet that crashed, restarted, tore writes and abandoned
locks must still leave a root whose observable history satisfies the
stack's contracts.

The checks (one :class:`Verdict` each):

``ledger-conservation``
    An independent raw replay of the journal bytes agrees with
    :class:`BudgetLedger`'s own replay, ``granted == spent + remaining``
    for every budgeted tenant, and no budgeted tenant overdrafted.
``exactly-once-settlement``
    No job id carries two effective settle records; per job, refunds plus
    settles never exceed charges (no budget minted from thin air).
``terminal-jobs-settled``
    Every terminal job that reserved budget is settled -- the invariant
    that catches a dead-lettered job stranding its admission charge.
``no-lost-jobs``
    Every committed job is terminal, done jobs have every done marker,
    and nothing is left pending or claimed.
``no-orphaned-claims``
    The claimed directory holds no entries and no abandoned ``.take.*``
    temp files.
``dead-letter-consistency``
    Every dead-letter entry with a parseable envelope maps to a chunk its
    (terminal) job actually owns, or to an uncommitted submission's
    orphan task.
``cache-integrity``
    Every done marker's content-addressed chunk (or the job's merged
    ``run_key`` entry) loads from the cache.
``result-oracle``
    Every done job's merged result is byte-identical to the in-process
    ``run(spec, ..., shards=N)`` oracle at the same seed and chunk layout.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.api import run as api_run, spec_from_dict
from repro.dispatch.cache import _ARRAY_FIELDS
from repro.dispatch.hashing import run_key
from repro.service.broker import Broker
from repro.tenancy.ledger import BudgetLedger, _GEN_PREFIX

__all__ = ["Verdict", "check_invariants", "render_verdicts", "result_digest"]

#: Floating-point slack of the conservation checks (sums of journal
#: records accumulate rounding).
_TOL = 1e-6


@dataclass(frozen=True)
class Verdict:
    """One contract's pass/fail outcome with its evidence."""

    name: str
    passed: bool
    detail: str = ""


def result_digest(result) -> str:
    """A byte-exact digest of a :class:`~repro.api.result.Result`.

    Hashes every array field's name, dtype, shape and raw bytes plus the
    scalar metadata -- two results digest equal iff they are
    bit-identical, which is the determinism contract's currency.
    """
    digest = hashlib.sha256()
    metadata = {
        "mechanism": result.mechanism,
        "engine": result.engine,
        "trials": result.trials,
        "epsilon": result.epsilon,
        "monotonic": result.monotonic,
        "extra": dict(result.extra),
    }
    digest.update(json.dumps(metadata, sort_keys=True).encode("utf-8"))
    for name in _ARRAY_FIELDS:
        value = getattr(result, name)
        if value is None:
            digest.update(f"|{name}:none".encode("ascii"))
            continue
        array = np.ascontiguousarray(value)
        digest.update(
            f"|{name}:{array.dtype.str}:{array.shape}".encode("ascii")
        )
        digest.update(array.tobytes())
    return digest.hexdigest()


def _read_journal_records(path: Path) -> List[dict]:
    """Raw journal replay, independent of :class:`BudgetLedger`'s code
    path: complete lines only, torn/corrupt lines skipped, the
    compaction generation marker ignored (its snapshot record is what
    carries state)."""
    try:
        raw = path.read_bytes()
    except OSError:
        return []
    end = raw.rfind(b"\n")
    if end < 0:
        return []
    records = []
    for line in raw[: end + 1].splitlines():
        if line.startswith(_GEN_PREFIX):
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


class _JournalReplay:
    """Independent fold of the journal records (mirrors the ledger's
    replay semantics, reimplemented so a ledger bug cannot vouch for
    itself)."""

    def __init__(self, records: List[dict]) -> None:
        self.totals: Dict[str, float] = {}
        self.spent: Dict[str, float] = {}
        self.settled: Dict[str, int] = {}  # job_id -> effective settles
        self.duplicate_settles: List[str] = []
        self.overdrafts: List[str] = []
        #: Per-job sums since the last snapshot (a snapshot folds job
        #: history away, so per-job checks only cover what follows it).
        self.job_charged: Dict[str, float] = {}
        self.job_returned: Dict[str, float] = {}
        self.compacted = False
        for record in records:
            self._apply(record)

    def _apply(self, record: dict) -> None:
        op = record.get("op")
        if op == "snapshot":
            try:
                self.totals = {str(t): float(v) for t, v in record["totals"].items()}
                self.spent = {str(t): float(v) for t, v in record["spent"].items()}
                settled = {str(j): 1 for j in record["settled"]}
            except (KeyError, TypeError, ValueError, AttributeError):
                return
            self.settled = settled
            self.job_charged = {}
            self.job_returned = {}
            self.compacted = True
            return
        if op == "genmark":
            return
        try:
            tenant = str(record["tenant"])
            amount = float(record.get("epsilon", 0.0))
        except (KeyError, TypeError, ValueError):
            return
        job_id = record.get("job_id")
        if op == "grant":
            self.totals[tenant] = amount
        elif op == "charge":
            spent = self.spent.get(tenant, 0.0) + amount
            total = self.totals.get(tenant)
            if total is not None and spent > total + _TOL:
                self.overdrafts.append(
                    f"tenant {tenant!r} spent {spent:g} of {total:g}"
                )
            self.spent[tenant] = spent
            if job_id is not None:
                self.job_charged[str(job_id)] = (
                    self.job_charged.get(str(job_id), 0.0) + amount
                )
        elif op == "refund":
            self.spent[tenant] = max(0.0, self.spent.get(tenant, 0.0) - amount)
            if job_id is not None:
                self.job_returned[str(job_id)] = (
                    self.job_returned.get(str(job_id), 0.0) + amount
                )
        elif op == "settle":
            if job_id is not None:
                job_id = str(job_id)
                if job_id in self.settled:
                    self.duplicate_settles.append(job_id)
                    return  # inert on replay, exactly like the ledger
                self.settled[job_id] = 1
                self.job_returned[job_id] = (
                    self.job_returned.get(job_id, 0.0) + amount
                )
            self.spent[tenant] = max(0.0, self.spent.get(tenant, 0.0) - amount)


def check_invariants(
    root: Union[str, os.PathLike],
    *,
    oracle: bool = True,
    oracle_shards: int = 2,
    stale_lock_seconds: float = 30.0,
) -> List[Verdict]:
    """Run every contract check against a service root; return verdicts.

    ``oracle=False`` skips the (recomputing, hence slow) result-oracle
    check.  ``stale_lock_seconds`` configures the checker's own ledger
    handle -- a chaos campaign that abandoned a ledger lock wants the
    checker to break it on the campaign's (short) threshold, not the
    30 s production default.
    """
    root = Path(root)
    ledger = BudgetLedger(root / "tenants", stale_lock_seconds=stale_lock_seconds)
    broker = Broker(root, ledger=ledger)
    verdicts: List[Verdict] = []

    jobs: Dict[str, tuple] = {}
    for job_id in broker.list_jobs():
        manifest = broker.manifest(job_id)
        jobs[job_id] = (manifest, broker._status_from_manifest(job_id, manifest))

    replay = _JournalReplay(_read_journal_records(root / "tenants" / "ledger.jsonl"))

    # -- ledger-conservation ------------------------------------------------
    problems: List[str] = []
    snapshot = ledger.tenants()
    for tenant in sorted(set(replay.totals) | set(replay.spent) | set(snapshot)):
        view = snapshot.get(tenant)
        if view is None:
            problems.append(f"tenant {tenant!r} missing from the ledger view")
            continue
        raw_total = replay.totals.get(tenant)
        raw_spent = max(0.0, replay.spent.get(tenant, 0.0))
        if (view["total"] is None) != (raw_total is None) or (
            raw_total is not None
            and abs(view["total"] - raw_total) > _TOL
        ):
            problems.append(
                f"tenant {tenant!r}: ledger total {view['total']} != "
                f"raw replay {raw_total}"
            )
        if abs(view["spent"] - raw_spent) > _TOL:
            problems.append(
                f"tenant {tenant!r}: ledger spent {view['spent']:g} != "
                f"raw replay {raw_spent:g}"
            )
        if view["total"] is not None:
            remaining = view["remaining"] if view["remaining"] is not None else 0.0
            if abs(view["total"] - (view["spent"] + remaining)) > _TOL:
                problems.append(
                    f"tenant {tenant!r}: total {view['total']:g} != spent "
                    f"{view['spent']:g} + remaining {remaining:g}"
                )
    problems.extend(replay.overdrafts)
    verdicts.append(
        Verdict("ledger-conservation", not problems, "; ".join(problems))
    )

    # -- exactly-once-settlement --------------------------------------------
    problems = []
    if replay.duplicate_settles:
        problems.append(
            f"duplicate settle records for job(s) {sorted(set(replay.duplicate_settles))}"
        )
    for job_id, returned in sorted(replay.job_returned.items()):
        charged = replay.job_charged.get(job_id, 0.0)
        # A job charged before a snapshot but settled after it shows
        # returned > charged here without any violation; only flag jobs
        # whose full history is in view.
        if not replay.compacted and returned > charged + _TOL:
            problems.append(
                f"job {job_id!r}: returned {returned:g} > charged {charged:g}"
            )
    verdicts.append(
        Verdict("exactly-once-settlement", not problems, "; ".join(problems))
    )

    # -- terminal-jobs-settled ----------------------------------------------
    problems = []
    for job_id, (manifest, status) in sorted(jobs.items()):
        if not status.finished:
            continue
        if float(manifest.get("reserved_epsilon", 0.0)) <= 0.0:
            continue
        if not ledger.is_settled(job_id):
            problems.append(
                f"terminal job {job_id!r} ({status.state}) never settled its "
                f"reservation of {manifest['reserved_epsilon']:g}"
            )
    verdicts.append(
        Verdict("terminal-jobs-settled", not problems, "; ".join(problems))
    )

    # -- no-lost-jobs -------------------------------------------------------
    problems = []
    counts = broker.queue.counts()
    if counts["pending"] or counts["claimed"]:
        problems.append(
            f"queue not drained: {counts['pending']} pending, "
            f"{counts['claimed']} claimed"
        )
    for job_id, (manifest, status) in sorted(jobs.items()):
        if not status.finished:
            problems.append(f"job {job_id!r} stuck in state {status.state!r}")
        elif status.state == "done" and status.done_tasks != status.total_tasks:
            problems.append(
                f"done job {job_id!r} has {status.done_tasks}/"
                f"{status.total_tasks} done markers"
            )
    verdicts.append(Verdict("no-lost-jobs", not problems, "; ".join(problems)))

    # -- no-orphaned-claims -------------------------------------------------
    problems = []
    claimed_dir = root / "queue" / "claimed"
    if claimed_dir.is_dir():
        leftovers = sorted(p.name for p in claimed_dir.glob("*.json"))
        takes = sorted(p.name for p in claimed_dir.glob(".take.*"))
        if leftovers:
            problems.append(f"claimed entries remain: {leftovers}")
        if takes:
            problems.append(f"abandoned take files remain: {takes}")
    verdicts.append(
        Verdict("no-orphaned-claims", not problems, "; ".join(problems))
    )

    # -- dead-letter-consistency --------------------------------------------
    problems = []
    failed_dir = root / "queue" / "failed"
    if failed_dir.is_dir():
        for path in sorted(failed_dir.glob("*.json")):
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                envelope = json.loads(entry["payload"])
                job_id = envelope["job_id"]
                index = int(envelope["index"])
            except (OSError, KeyError, TypeError, ValueError):
                problems.append(f"unparseable dead-letter entry {path.name}")
                continue
            if job_id not in jobs:
                # An uncommitted submission's orphan task: the producer
                # crashed before the manifest landed, so there is no job to
                # attribute the dead letter to.  Documented as harmless.
                continue
            manifest, status = jobs[job_id]
            owned = {int(e["index"]) for e in manifest["tasks"]}
            if index not in owned:
                problems.append(
                    f"dead letter {path.name} names chunk {index} job "
                    f"{job_id!r} does not own"
                )
            elif not status.finished:
                problems.append(
                    f"dead letter {path.name} but job {job_id!r} is "
                    f"non-terminal ({status.state})"
                )
    verdicts.append(
        Verdict("dead-letter-consistency", not problems, "; ".join(problems))
    )

    # -- cache-integrity ----------------------------------------------------
    problems = []
    for job_id, (manifest, status) in sorted(jobs.items()):
        if status.state != "done":
            continue
        merged_ok = broker.cache.get(manifest["run_key"]) is not None
        for entry in manifest["tasks"]:
            if broker.cache.get(entry["key"]) is None and not merged_ok:
                problems.append(
                    f"done job {job_id!r}: chunk {entry['index']} missing "
                    "from the cache and no merged entry to serve it"
                )
    verdicts.append(
        Verdict("cache-integrity", not problems, "; ".join(problems))
    )

    # -- result-oracle ------------------------------------------------------
    if oracle:
        problems = []
        for job_id, (manifest, status) in sorted(jobs.items()):
            if status.state != "done":
                continue
            try:
                merged = broker.result(job_id)
            except Exception as exc:  # noqa: BLE001 -- a verdict, not a crash
                problems.append(f"job {job_id!r}: result() failed: {exc}")
                continue
            spec = spec_from_dict(manifest["spec"])
            if run_key(
                spec,
                engine=manifest["engine"],
                trials=int(manifest["trials"]),
                seed=int(manifest["seed"]),
                chunk_trials=int(manifest["chunk_trials"]),
                options={},
            ) != manifest["run_key"]:
                # The job was submitted with run-time options the manifest
                # does not record (only the sliced per-chunk views exist),
                # so the facade oracle cannot be reconstructed for it.
                continue
            expected = api_run(
                spec,
                engine=manifest["engine"],
                trials=int(manifest["trials"]),
                rng=int(manifest["seed"]),
                shards=int(oracle_shards),
                chunk_trials=int(manifest["chunk_trials"]),
            )
            if result_digest(merged) != result_digest(expected):
                problems.append(
                    f"job {job_id!r}: merged result diverges from the "
                    f"run(shards={oracle_shards}) oracle"
                )
        verdicts.append(
            Verdict("result-oracle", not problems, "; ".join(problems))
        )

    return verdicts


def render_verdicts(verdicts: List[Verdict]) -> str:
    """The pass/fail table the ``chaos`` CLI verb prints."""
    width = max(len(v.name) for v in verdicts) if verdicts else 8
    lines = []
    for verdict in verdicts:
        status = "PASS" if verdict.passed else "FAIL"
        line = f"{verdict.name:<{width}}  {status}"
        if verdict.detail and not verdict.passed:
            line += f"  {verdict.detail}"
        lines.append(line)
    return "\n".join(lines) + "\n"
