"""Subprocess entry point for chaos-campaign workers.

``python -m repro.chaos.worker_main <root> <scope>`` rebuilds the
campaign's fault plan from ``<root>/chaos/config.json`` (so the harness
passes nothing but the root and this incarnation's injector scope on the
command line), wires an injector in ``exit`` crash mode through the
queue, ledger and worker, and serves until killed.

Crash mode matters: in a real process the crash sites must end the
*process* (``os._exit`` -- no ``finally`` blocks, no atexit, no flushing),
because that is the failure the recovery machinery has to survive.  The
in-process ``raise`` mode exists for unit tests only.

The scope encodes the worker slot *and* incarnation (``worker-0i2``): a
restarted worker is a new actor with its own deterministic fault
schedule, not a resumption of the dead one's counters.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.chaos.faults import FaultInjector
from repro.chaos.harness import CampaignConfig, _build_broker
from repro.service.worker import Worker


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print("usage: python -m repro.chaos.worker_main <root> <scope>", file=sys.stderr)
        return 2
    root = Path(argv[0])
    scope = argv[1]
    chaos_dir = root / "chaos"
    config = CampaignConfig.from_dict(
        json.loads((chaos_dir / "config.json").read_text(encoding="utf-8"))
    )
    injector = FaultInjector(
        config.plan(), scope, log_dir=chaos_dir, crash_mode="exit"
    )
    broker = _build_broker(root, config, injector=injector)
    worker = Worker(
        broker, worker_id=scope, poll_interval=0.02, injector=injector
    )
    # The deadline is a safety net against a harness that dies without
    # killing its children; the normal end of life is SIGKILL.
    worker.serve(deadline=time.monotonic() + config.worker_deadline_seconds)
    return 0


if __name__ == "__main__":
    sys.exit(main())
