"""The paper's primary contributions.

* :class:`~repro.core.noisy_top_k.NoisyTopKWithGap` -- Algorithm 1 of the
  paper: Noisy Top-K that additionally releases, at no extra privacy cost,
  the noisy gap between each selected query and the next-best query.
  :class:`~repro.core.noisy_top_k.NoisyMaxWithGap` is the k = 1 special case.
* :class:`~repro.core.adaptive_svt.AdaptiveSparseVectorWithGap` -- Algorithm 2
  of the paper: Sparse Vector that spends less budget on queries that are far
  above the threshold (so it can answer more of them for the same total
  budget) and also releases the noisy query/threshold gap for free.

Both mechanisms come with the selection-then-measure convenience drivers used
in the experiments (Sections 5.2, 6.2 and 7.2); the post-processing that
fuses the free gaps with the direct measurements lives in
:mod:`repro.postprocess`.
"""

from repro.core.noisy_top_k import NoisyMaxWithGap, NoisyTopKWithGap
from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap, AdaptiveSvtConfig
from repro.core.select_measure import (
    SelectThenMeasureResult,
    select_and_measure_top_k,
    select_and_measure_svt,
)

__all__ = [
    "NoisyTopKWithGap",
    "NoisyMaxWithGap",
    "AdaptiveSparseVectorWithGap",
    "AdaptiveSvtConfig",
    "SelectThenMeasureResult",
    "select_and_measure_top_k",
    "select_and_measure_svt",
]
