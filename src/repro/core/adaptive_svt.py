"""Adaptive-Sparse-Vector-with-Gap (Algorithm 2 of the paper).

The adaptive variant keeps the structure of Sparse Vector (noisy threshold,
stream of noisy queries, stop when the budget is exhausted) but tests each
query twice:

1. **Top branch** -- first with *high* noise ``Laplace(2/epsilon_2)`` where
   ``epsilon_2 = epsilon_1 / 2``.  If the noisy gap to the noisy threshold is
   at least ``sigma`` (two standard deviations of that noise by default), the
   mechanism reports the query as above-threshold, releases the gap, and is
   only charged the *small* budget ``epsilon_2``.
2. **Middle branch** -- otherwise with the standard noise
   ``Laplace(2/epsilon_1)``.  If that noisy value clears the threshold, the
   gap is released at the standard charge ``epsilon_1``.
3. **Bottom branch** -- otherwise the query is reported below-threshold at no
   charge.

The stream is processed until the privacy budget would be exceeded by another
above-threshold answer or the stream ends.  Theorem 4 of the paper shows the
whole interaction is ``epsilon``-differentially private; because queries far
above the threshold are usually resolved in the cheap top branch, the
mechanism can answer more above-threshold queries than standard SVT at the
same budget (Figure 3) or answer the same number and return leftover budget
(Figure 4).

For monotonic query streams (footnote 6 of the paper) the per-query noise
scales can be halved (``Laplace(1/epsilon_1)`` and ``Laplace(1/epsilon_2)``),
which this implementation applies when ``monotonic=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.accounting.budget import BudgetOdometer
from repro.mechanisms.results import MechanismMetadata, NoiseTrace
from repro.mechanisms.sparse_vector import (
    SvtBranch,
    SvtOutcome,
    SvtResult,
    svt_budget_allocation,
)
from repro.primitives.laplace import LaplaceNoise
from repro.primitives.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class AdaptiveSvtConfig:
    """Resolved configuration of an Adaptive-Sparse-Vector-with-Gap run.

    Attributes
    ----------
    epsilon:
        Total privacy budget.
    epsilon_threshold:
        Budget spent on the threshold noise (``epsilon_0`` in the paper).
    epsilon_middle:
        Budget charged per middle-branch answer (``epsilon_1``).
    epsilon_top:
        Budget charged per top-branch answer (``epsilon_2 = epsilon_1 / 2``).
    sigma:
        Gap margin required by the top branch.
    threshold_scale, top_scale, middle_scale:
        Laplace scales of the threshold noise and of the two per-query noises.
    """

    epsilon: float
    epsilon_threshold: float
    epsilon_middle: float
    epsilon_top: float
    sigma: float
    threshold_scale: float
    top_scale: float
    middle_scale: float


class AdaptiveSparseVectorWithGap:
    """Adaptive Sparse Vector that releases gaps and saves budget.

    Parameters
    ----------
    epsilon:
        Total privacy budget.
    threshold:
        The public threshold ``T``.
    k:
        Minimum number of above-threshold answers the mechanism is guaranteed
        to be able to output (the budget is sized so that ``k`` middle-branch
        answers fit); if queries are large it will typically answer more.
    monotonic:
        Whether the query stream is monotonic (Definition 7); halves the
        per-query noise scales as in footnote 6 of the paper.
    theta:
        Fraction of the budget allocated to the threshold noise.  ``None``
        selects the Lyu et al. ratio ``1/(1 + k^(2/3))`` (monotonic) or
        ``1/(1 + (2k)^(2/3))`` used in the paper's experiments.
    sigma_multiplier:
        The top-branch margin ``sigma`` expressed in standard deviations of
        the top-branch noise; the paper uses 2.
    sensitivity:
        Per-query sensitivity (defaults to 1).
    max_answers:
        Optional hard cap on the number of above-threshold answers (used by
        the Figure 4 experiment, which stops the mechanism after ``k``
        answers and measures the leftover budget).  ``None`` means run until
        the budget or the stream is exhausted.
    """

    name = "adaptive-sparse-vector-with-gap"
    releases_gaps = True

    def __init__(
        self,
        epsilon: float,
        threshold: float,
        k: int = 1,
        monotonic: bool = False,
        theta: Optional[float] = None,
        sigma_multiplier: float = 2.0,
        sensitivity: float = 1.0,
        max_answers: Optional[int] = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if sigma_multiplier <= 0:
            raise ValueError(f"sigma_multiplier must be positive, got {sigma_multiplier}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        if max_answers is not None and max_answers < 1:
            raise ValueError("max_answers must be at least 1 when given")
        self.epsilon = float(epsilon)
        self.threshold = float(threshold)
        self.k = int(k)
        self.monotonic = bool(monotonic)
        self.sensitivity = float(sensitivity)
        self.sigma_multiplier = float(sigma_multiplier)
        self.max_answers = max_answers

        epsilon_threshold, epsilon_queries = svt_budget_allocation(
            epsilon, k, monotonic, theta
        )
        # Line 2 of Algorithm 2: eps_1 = (1-theta)*eps / k, eps_2 = eps_1 / 2.
        epsilon_middle = epsilon_queries / k
        epsilon_top = epsilon_middle / 2.0

        query_factor = (1.0 if monotonic else 2.0) * self.sensitivity
        threshold_scale = self.sensitivity / epsilon_threshold
        top_scale = query_factor / epsilon_top
        middle_scale = query_factor / epsilon_middle
        # sigma = sigma_multiplier standard deviations of the top-branch noise.
        sigma = self.sigma_multiplier * np.sqrt(2.0) * top_scale

        self.config = AdaptiveSvtConfig(
            epsilon=self.epsilon,
            epsilon_threshold=epsilon_threshold,
            epsilon_middle=epsilon_middle,
            epsilon_top=epsilon_top,
            sigma=float(sigma),
            threshold_scale=threshold_scale,
            top_scale=top_scale,
            middle_scale=middle_scale,
        )
        self._threshold_noise = LaplaceNoise(threshold_scale)
        self._top_noise = LaplaceNoise(top_scale)
        self._middle_noise = LaplaceNoise(middle_scale)

    # -- derived quantities -----------------------------------------------------------

    @property
    def epsilon_threshold(self) -> float:
        """Budget consumed by the threshold noise (``epsilon_0``)."""
        return self.config.epsilon_threshold

    @property
    def epsilon_middle(self) -> float:
        """Budget charged per middle-branch answer (``epsilon_1``)."""
        return self.config.epsilon_middle

    @property
    def epsilon_top(self) -> float:
        """Budget charged per top-branch answer (``epsilon_2``)."""
        return self.config.epsilon_top

    @property
    def sigma(self) -> float:
        """The top-branch gap margin."""
        return self.config.sigma

    def gap_variance(self, branch: SvtBranch) -> float:
        """Variance of the released gap for answers from the given branch."""
        if branch is SvtBranch.TOP:
            return self._threshold_noise.variance + self._top_noise.variance
        if branch is SvtBranch.MIDDLE:
            return self._threshold_noise.variance + self._middle_noise.variance
        raise ValueError("below-threshold outcomes carry no gap")

    # -- main loop ----------------------------------------------------------------------

    def run(
        self,
        true_values: Union[Sequence[float], np.ndarray],
        rng: RngLike = None,
        threshold_noise: Optional[float] = None,
        top_noise: Optional[np.ndarray] = None,
        middle_noise: Optional[np.ndarray] = None,
    ) -> SvtResult:
        """Process the query stream ``true_values``.

        The mechanism stops when (a) answering another above-threshold query
        could exceed the budget (the ``cost > epsilon - epsilon_1`` guard of
        Algorithm 2 line 16), (b) ``max_answers`` above-threshold answers
        have been produced, or (c) the stream ends.

        Parameters
        ----------
        true_values:
            Exact query answers, in stream order.
        rng:
            Seed or generator.
        threshold_noise, top_noise, middle_noise:
            Optional explicit noise used to replay an execution (the per-query
            vectors must have one entry per stream query).  The batch
            engine's equivalence tests and the alignment framework use these.

        Returns
        -------
        SvtResult
            ``result.metadata.epsilon_spent`` reports the budget actually
            consumed; ``result.remaining_budget_fraction`` is the Figure 4
            metric.
        """
        values = np.asarray(true_values, dtype=float)
        if values.ndim != 1:
            raise ValueError("true_values must be a one-dimensional vector")
        n = values.size
        generator = ensure_rng(rng)
        cfg = self.config
        if top_noise is not None:
            top_noise = np.asarray(top_noise, dtype=float)
            if top_noise.shape != values.shape:
                raise ValueError("explicit top_noise must match true_values in shape")
        if middle_noise is not None:
            middle_noise = np.asarray(middle_noise, dtype=float)
            if middle_noise.shape != values.shape:
                raise ValueError("explicit middle_noise must match true_values in shape")

        odometer = BudgetOdometer(self.epsilon)
        odometer.charge(cfg.epsilon_threshold, label="threshold")

        if threshold_noise is None:
            threshold_noise = float(self._threshold_noise.sample(rng=generator))
        else:
            threshold_noise = float(threshold_noise)
        noisy_threshold = self.threshold + threshold_noise

        # Preallocate the noise buffer (threshold + top/middle pair per
        # query); labels and scales are materialised once after the loop.
        noise_values = np.empty(2 * n + 1)
        noise_values[0] = threshold_noise

        outcomes: List[SvtOutcome] = []
        answered = 0
        for index, value in enumerate(values):
            tn = (
                float(self._top_noise.sample(rng=generator))
                if top_noise is None
                else float(top_noise[index])
            )
            mn = (
                float(self._middle_noise.sample(rng=generator))
                if middle_noise is None
                else float(middle_noise[index])
            )
            noise_values[2 * index + 1] = tn
            noise_values[2 * index + 2] = mn

            top_gap = value + tn - noisy_threshold
            if top_gap >= cfg.sigma:
                outcomes.append(
                    SvtOutcome(
                        index=index,
                        above=True,
                        gap=float(top_gap),
                        branch=SvtBranch.TOP,
                        budget_used=cfg.epsilon_top,
                    )
                )
                odometer.charge(cfg.epsilon_top, label="top-branch")
                answered += 1
            else:
                middle_gap = value + mn - noisy_threshold
                if middle_gap >= 0:
                    outcomes.append(
                        SvtOutcome(
                            index=index,
                            above=True,
                            gap=float(middle_gap),
                            branch=SvtBranch.MIDDLE,
                            budget_used=cfg.epsilon_middle,
                        )
                    )
                    odometer.charge(cfg.epsilon_middle, label="middle-branch")
                    answered += 1
                else:
                    outcomes.append(
                        SvtOutcome(
                            index=index,
                            above=False,
                            gap=None,
                            branch=SvtBranch.BOTTOM,
                            budget_used=0.0,
                        )
                    )

            if self.max_answers is not None and answered >= self.max_answers:
                break
            # Line 16 guard: stop once another middle-branch answer might not fit.
            if odometer.spent > self.epsilon - cfg.epsilon_middle + 1e-12:
                break

        metadata = MechanismMetadata(
            mechanism=self.name,
            epsilon=self.epsilon,
            epsilon_spent=odometer.spent,
            monotonic=self.monotonic,
            extra={
                "k": float(self.k),
                "threshold": self.threshold,
                "epsilon_threshold": cfg.epsilon_threshold,
                "epsilon_middle": cfg.epsilon_middle,
                "epsilon_top": cfg.epsilon_top,
                "sigma": cfg.sigma,
                "answers_top": float(
                    sum(1 for o in outcomes if o.above and o.branch is SvtBranch.TOP)
                ),
                "answers_middle": float(
                    sum(1 for o in outcomes if o.above and o.branch is SvtBranch.MIDDLE)
                ),
            },
        )
        processed = len(outcomes)
        names: List[str] = ["threshold"]
        for i in range(processed):
            names.extend([f"top[{i}]", f"middle[{i}]"])
        scales = np.empty(2 * processed + 1)
        scales[0] = cfg.threshold_scale
        scales[1::2] = cfg.top_scale
        scales[2::2] = cfg.middle_scale
        trace = NoiseTrace(
            names=names,
            values=noise_values[: 2 * processed + 1].copy(),
            scales=scales,
        )
        return SvtResult(outcomes=outcomes, metadata=metadata, noise_trace=trace)
