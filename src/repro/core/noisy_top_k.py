"""Noisy-Top-K-with-Gap (Algorithm 1 of the paper).

The mechanism adds ``Laplace(2k/epsilon)`` noise to each of ``n``
sensitivity-1 queries, finds the ``k+1`` largest noisy values, and releases
the indexes of the top ``k`` *together with the consecutive noisy gaps*
``g_i = noisy[j_i] - noisy[j_{i+1}]``.  Theorem 2 of the paper shows that
releasing the gaps costs nothing: the release is epsilon-DP in general and
(epsilon/2)-DP when the query list is monotonic (e.g. counting queries).

The implementation subclasses the classical :class:`~repro.mechanisms.noisy_max.NoisyTopK`
so that the two share noise calibration and accounting; the only behavioural
difference is the extra gap output, which is exactly the paper's point.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.mechanisms.noisy_max import NoisyTopK, SelectionResult
from repro.primitives.rng import RngLike


class NoisyTopKWithGap(NoisyTopK):
    """Noisy Top-K selection that also releases consecutive gaps for free.

    Parameters
    ----------
    epsilon:
        Privacy budget charged for the selection.
    k:
        Number of queries to select.
    monotonic:
        Whether the query list is monotonic (Definition 7 of the paper); the
        charged budget covers the release either way, but monotonic lists get
        the factor-of-two better noise for the same charge.
    sensitivity:
        Per-query sensitivity (defaults to 1, as in the paper).

    Notes
    -----
    The released gaps are ``g_i = q~_{j_i} - q~_{j_{i+1}}`` for
    ``i = 1..k`` where ``q~`` are the noisy query values and ``j_{k+1}`` is
    the index of the best *unselected* query.  Each gap is non-negative by
    construction.  The estimated gap between the a-th and b-th selected
    queries is the partial sum of consecutive gaps and has variance
    ``2 * (2 * scale**2)`` independent of ``a`` and ``b`` (Section 5.1).

    Examples
    --------
    >>> mech = NoisyTopKWithGap(epsilon=1.0, k=2, monotonic=True)
    >>> result = mech.select([100.0, 50.0, 10.0, 5.0], rng=0)
    >>> sorted(result.indices) == [0, 1]
    True
    >>> len(result.gaps)
    2
    """

    name = "noisy-top-k-with-gap"
    releases_gaps = True

    def select(
        self,
        true_values: Union[Sequence[float], np.ndarray],
        rng: RngLike = None,
        noise: Optional[np.ndarray] = None,
    ) -> SelectionResult:
        """Select the top-k queries and release the consecutive noisy gaps.

        Parameters
        ----------
        true_values:
            Exact query answers (at least ``k + 1`` of them, so that the gap
            to the runner-up of the last selected query is defined).
        rng:
            Seed or generator.
        noise:
            Optional explicit noise vector used to replay an execution (the
            alignment framework uses this).
        """
        values = np.asarray(true_values, dtype=float)
        if values.ndim != 1:
            raise ValueError("true_values must be a one-dimensional vector")
        if values.size < self.k + 1:
            raise ValueError(
                "Noisy-Top-K-with-Gap needs at least k+1 queries so the last "
                f"gap is defined; got {values.size} queries for k={self.k}"
            )
        noisy, noise = self._noisy_values(values, rng, noise)
        top = self._top_indices(noisy, self.k + 1)
        winners = top[: self.k]
        gaps = noisy[top[: self.k]] - noisy[top[1 : self.k + 1]]
        return SelectionResult(
            indices=list(winners),
            gaps=gaps,
            metadata=self._metadata(extra={"gap_variance": self.gap_variance}),
            noise_trace=self._trace(noise),
        )

    @property
    def gap_variance(self) -> float:
        """Variance of each released consecutive gap (difference of two
        independent Laplace variables with the mechanism's scale)."""
        return 2.0 * (2.0 * self.scale**2)


class NoisyMaxWithGap(NoisyTopKWithGap):
    """Noisy-Max-with-Gap: the k = 1 special case of Algorithm 1.

    Releases the index of the approximately largest query together with the
    noisy gap to the runner-up, at the same privacy cost as classical Report
    Noisy Max.
    """

    name = "noisy-max-with-gap"

    def __init__(
        self,
        epsilon: float,
        monotonic: bool = False,
        sensitivity: float = 1.0,
    ) -> None:
        super().__init__(epsilon, k=1, monotonic=monotonic, sensitivity=sensitivity)

    def select_with_gap(
        self,
        true_values: Union[Sequence[float], np.ndarray],
        rng: RngLike = None,
    ) -> tuple:
        """Convenience wrapper returning ``(index, gap)`` directly."""
        result = self.select(true_values, rng=rng)
        return result.indices[0], float(result.gaps[0])
