"""Selection-then-measure drivers (the Section 7.2 experimental protocol).

Both applications of the free gap information follow the same pattern: split
the privacy budget in half, select k queries with the first half, measure the
selected queries directly with the second half, and (optionally) fuse the
free gaps with the measurements via post-processing.  These drivers package
that protocol so that examples, tests and the benchmark harness all exercise
exactly the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.accounting.composition import CompositionAccountant
from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.core.noisy_top_k import NoisyTopKWithGap
from repro.mechanisms.laplace_mechanism import LaplaceMechanism
from repro.mechanisms.sparse_vector import SparseVectorWithGap, SvtBranch
from repro.postprocess.blue import blue_top_k_estimate
from repro.postprocess.svt_fusion import fuse_gap_and_measurement
from repro.primitives.rng import RngLike, ensure_rng

ArrayLike = Union[Sequence[float], np.ndarray]


@dataclass(frozen=True)
class SelectThenMeasureResult:
    """Result of a selection-then-measure experiment on one noise draw.

    Attributes
    ----------
    indices:
        Indexes of the selected queries, in selection order.
    true_values:
        True answers of the selected queries.
    measurements:
        Direct noisy measurements (the gap-free baseline estimates).
    fused:
        Gap-fused estimates (BLUE for Top-K, inverse-variance for SVT).
    gaps:
        The free gaps released by the selection mechanism.
    total_epsilon:
        The overall privacy budget consumed by selection plus measurement.
    details:
        Extra per-run metadata (branch counts, budget spent, etc.).
    """

    indices: List[int]
    true_values: np.ndarray
    measurements: np.ndarray
    fused: np.ndarray
    gaps: np.ndarray
    total_epsilon: float
    details: Dict[str, float] = field(default_factory=dict)

    def baseline_squared_errors(self) -> np.ndarray:
        """Squared errors of the direct measurements."""
        return (self.measurements - self.true_values) ** 2

    def fused_squared_errors(self) -> np.ndarray:
        """Squared errors of the gap-fused estimates."""
        return (self.fused - self.true_values) ** 2


def select_and_measure_top_k(
    true_values: ArrayLike,
    epsilon: float,
    k: int,
    monotonic: bool = True,
    rng: RngLike = None,
    accountant: Optional[CompositionAccountant] = None,
) -> SelectThenMeasureResult:
    """Run the Noisy-Top-K-with-Gap selection-then-measure protocol once.

    Half of ``epsilon`` funds the selection (Noisy-Top-K-with-Gap), half
    funds even per-query Laplace measurements of the selected queries; the
    BLUE post-processing of Theorem 3 fuses the two.

    Parameters
    ----------
    true_values:
        Exact answers of all candidate queries.
    epsilon:
        Total privacy budget for selection plus measurement.
    k:
        Number of queries to select and measure.
    monotonic:
        Whether the query list is monotonic (counting queries).
    rng:
        Seed or generator.
    accountant:
        Optional composition accountant to record the two releases on.
    """
    values = np.asarray(true_values, dtype=float)
    generator = ensure_rng(rng)
    half = epsilon / 2.0

    selector = NoisyTopKWithGap(epsilon=half, k=k, monotonic=monotonic)
    selection = selector.select(values, rng=generator)

    # Measurement: eps/2 split evenly across the k selected counting queries.
    measurer = LaplaceMechanism(epsilon=half, l1_sensitivity=float(k))
    measured = measurer.release(values[selection.indices], rng=generator)

    if accountant is not None:
        accountant.record(selector.name, half, notes=f"k={k}")
        accountant.record(measurer.name, half, notes=f"k={k}")

    lam = selector.gap_variance / 2.0 / measured.variance  # per-query noise var ratio
    # gap_variance = 2 * per-query noise variance, so per-query var = gap_variance / 2.
    fused = blue_top_k_estimate(measured.values, selection.gaps[: k - 1], lam=lam)

    return SelectThenMeasureResult(
        indices=list(selection.indices),
        true_values=values[selection.indices],
        measurements=np.asarray(measured.values),
        fused=fused,
        gaps=np.asarray(selection.gaps),
        total_epsilon=epsilon,
        details={
            "lambda": float(lam),
            "measurement_variance": measured.variance,
            "selection_scale": selector.scale,
        },
    )


def select_and_measure_svt(
    true_values: ArrayLike,
    epsilon: float,
    k: int,
    threshold: float,
    monotonic: bool = True,
    adaptive: bool = False,
    rng: RngLike = None,
    accountant: Optional[CompositionAccountant] = None,
) -> SelectThenMeasureResult:
    """Run the Sparse-Vector selection-then-measure protocol once.

    Half of ``epsilon`` funds the with-gap Sparse Vector run (adaptive or
    not), half funds Laplace measurements of the selected queries; the
    inverse-variance fusion of Section 6.2 combines gap + threshold with the
    direct measurement of each selected query.

    Parameters
    ----------
    true_values:
        Exact answers of the query stream, in stream order.
    epsilon:
        Total privacy budget for selection plus measurement.
    k:
        Target number of above-threshold answers.
    threshold:
        The public threshold ``T``.
    monotonic:
        Whether the stream is monotonic.
    adaptive:
        Use :class:`AdaptiveSparseVectorWithGap` instead of the non-adaptive
        :class:`SparseVectorWithGap`.
    rng:
        Seed or generator.
    accountant:
        Optional composition accountant to record the releases on.
    """
    values = np.asarray(true_values, dtype=float)
    generator = ensure_rng(rng)
    half = epsilon / 2.0

    if adaptive:
        selector = AdaptiveSparseVectorWithGap(
            epsilon=half, threshold=threshold, k=k, monotonic=monotonic
        )
        run = selector.run(values, rng=generator)
        gap_variances = {
            SvtBranch.TOP: selector.gap_variance(SvtBranch.TOP),
            SvtBranch.MIDDLE: selector.gap_variance(SvtBranch.MIDDLE),
        }
    else:
        selector = SparseVectorWithGap(
            epsilon=half, threshold=threshold, k=k, monotonic=monotonic
        )
        run = selector.run(values, rng=generator)
        gap_variances = {
            SvtBranch.MIDDLE: selector.gap_variance,
            SvtBranch.TOP: selector.gap_variance,
        }

    indices = run.above_indices
    gap_estimates = []
    gap_vars = []
    for outcome in run.outcomes:
        if outcome.above and outcome.gap is not None:
            gap_estimates.append(outcome.gap + threshold)
            gap_vars.append(gap_variances[outcome.branch])
    gap_estimates = np.asarray(gap_estimates)
    gap_vars = np.asarray(gap_vars)

    if len(indices) == 0:
        empty = np.asarray([], dtype=float)
        return SelectThenMeasureResult(
            indices=[],
            true_values=empty,
            measurements=empty,
            fused=empty,
            gaps=empty,
            total_epsilon=epsilon,
            details={"num_answered": 0.0, "epsilon_spent": run.metadata.epsilon_spent},
        )

    # Measurement: the second eps/2 split evenly over the answered queries.
    measurer = LaplaceMechanism(epsilon=half, l1_sensitivity=float(len(indices)))
    measured = measurer.release(values[indices], rng=generator)

    if accountant is not None:
        accountant.record(selector.name, run.metadata.epsilon_spent, notes=f"k={k}")
        accountant.record(measurer.name, half, notes=f"answered={len(indices)}")

    fused = fuse_gap_and_measurement(
        gap_estimates, gap_vars, measured.values, measured.variance
    )

    return SelectThenMeasureResult(
        indices=list(indices),
        true_values=values[indices],
        measurements=np.asarray(measured.values),
        fused=fused,
        gaps=np.asarray(run.gaps),
        total_epsilon=epsilon,
        details={
            "num_answered": float(len(indices)),
            "epsilon_spent": float(run.metadata.epsilon_spent + half),
            "measurement_variance": measured.variance,
        },
    )
