"""Transaction-dataset substrate.

The paper evaluates its mechanisms on three transaction datasets (BMS-POS,
Kosarak and the synthetic T40I10D100K produced by the IBM Almaden Quest
generator).  Those raw files are not redistributable and are not available in
this environment, so -- per the documented substitution in DESIGN.md -- this
subpackage provides:

* :class:`~repro.datasets.transactions.TransactionDatabase` -- an in-memory
  transaction database with the item-count histogram interface the
  experiments consume.
* :mod:`~repro.datasets.generators` -- synthetic generators calibrated to the
  published statistics of the three datasets (record counts, unique item
  counts, heavy-tailed item-popularity profile).  The generator for
  T40I10D100K follows the IBM Quest recipe (average transaction length 40,
  pattern-based co-occurrence), while BMS-POS-like and Kosarak-like data are
  produced from Zipf-distributed item popularity with matching scale.
* :mod:`~repro.datasets.loaders` -- a reader for the standard FIMI
  whitespace-separated transaction file format, so that the real datasets can
  be dropped in when available.

Only the *item-count histogram* matters to the mechanisms under test, so the
synthetic equivalents preserve the experimental behaviour: the top of the
histogram is heavy-tailed and well-separated, which is what drives the
adaptive budget savings and the gap-based accuracy improvements.
"""

from repro.datasets.transactions import TransactionDatabase
from repro.datasets.generators import (
    DatasetSpec,
    generate_bms_pos_like,
    generate_kosarak_like,
    generate_quest_t40_like,
    generate_zipf_transactions,
    make_dataset,
    PAPER_DATASETS,
)
from repro.datasets.loaders import load_fimi_file, save_fimi_file

__all__ = [
    "TransactionDatabase",
    "DatasetSpec",
    "generate_zipf_transactions",
    "generate_bms_pos_like",
    "generate_kosarak_like",
    "generate_quest_t40_like",
    "make_dataset",
    "PAPER_DATASETS",
    "load_fimi_file",
    "save_fimi_file",
]
