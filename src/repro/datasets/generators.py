"""Synthetic transaction-data generators.

The paper's experiments use the BMS-POS and Kosarak retail/click-stream
datasets and the synthetic T40I10D100K dataset produced by the IBM Almaden
Quest generator.  The raw files are not available offline, so this module
provides synthetic equivalents calibrated to the published statistics
(record counts, unique item counts) with the heavy-tailed item-popularity
profile that such data exhibits.  The mechanisms under test only consume the
item-count histogram, so matching its shape preserves the experimental
behaviour; see DESIGN.md (Substitutions) for the full argument.

Three generator families are provided:

* :func:`generate_zipf_transactions` -- the generic engine: item popularity
  follows a Zipf-Mandelbrot law, transaction lengths follow a clipped
  Poisson.
* :func:`generate_bms_pos_like` / :func:`generate_kosarak_like` -- presets
  calibrated to the two real datasets' published sizes.
* :func:`generate_quest_t40_like` -- a lightweight re-implementation of the
  IBM Quest recipe (maximal potential itemsets drawn first and then sampled
  into transactions) with the T40I10D100K parameters: average transaction
  length 40, average pattern length 10, 100k transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.primitives.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of a paper dataset and its synthetic stand-in.

    Attributes
    ----------
    name:
        Dataset identifier as used in the paper.
    num_records:
        Number of transactions in the real dataset.
    num_unique_items:
        Number of distinct items in the real dataset.
    default_scale:
        Down-scaling factor applied by :func:`make_dataset` so the default
        benchmark runs stay laptop-sized; the histogram shape (and therefore
        mechanism behaviour) is preserved under this scaling.
    """

    name: str
    num_records: int
    num_unique_items: int
    default_scale: float = 1.0


#: Published statistics of the three evaluation datasets (Section 7.1).
PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "BMS-POS": DatasetSpec("BMS-POS", 515_597, 1_657, default_scale=0.02),
    "kosarak": DatasetSpec("kosarak", 990_002, 41_270, default_scale=0.01),
    "T40I10D100K": DatasetSpec("T40I10D100K", 100_000, 942, default_scale=0.05),
}


def _zipf_popularity(num_items: int, exponent: float, shift: float) -> np.ndarray:
    """Zipf-Mandelbrot popularity weights ``(rank + shift)^-exponent``."""
    ranks = np.arange(1, num_items + 1, dtype=float)
    weights = (ranks + shift) ** (-exponent)
    return weights / weights.sum()


def generate_zipf_transactions(
    num_records: int,
    num_items: int,
    avg_length: float = 8.0,
    zipf_exponent: float = 1.05,
    zipf_shift: float = 2.7,
    rng: RngLike = None,
    name: str = "zipf-synthetic",
) -> TransactionDatabase:
    """Generate transactions with Zipf-distributed item popularity.

    Parameters
    ----------
    num_records:
        Number of transactions to generate.
    num_items:
        Size of the item catalogue (items are labelled ``0..num_items-1``).
    avg_length:
        Mean transaction length (Poisson distributed, clipped to
        ``[1, num_items]``).
    zipf_exponent, zipf_shift:
        Parameters of the Zipf-Mandelbrot popularity law.  The defaults give
        the heavy-tailed profile typical of retail basket data.
    rng:
        Seed or generator for reproducibility.
    name:
        Name recorded on the resulting database.
    """
    if num_records <= 0:
        raise ValueError("num_records must be positive")
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    generator = ensure_rng(rng)
    popularity = _zipf_popularity(num_items, zipf_exponent, zipf_shift)
    lengths = np.clip(generator.poisson(avg_length, num_records), 1, num_items)

    transactions: List[np.ndarray] = []
    for length in lengths:
        # Sampling with replacement then deduplicating is much faster than
        # repeated weighted sampling without replacement and yields the same
        # heavy-tailed histogram shape.
        picked = generator.choice(num_items, size=int(length), replace=True, p=popularity)
        transactions.append(np.unique(picked))
    return TransactionDatabase(transactions, name=name)


def generate_bms_pos_like(
    scale: float = 1.0,
    rng: RngLike = None,
) -> TransactionDatabase:
    """A synthetic stand-in for the BMS-POS point-of-sale dataset.

    BMS-POS has ~515k transactions over ~1.6k items with average basket size
    around 6.5.  ``scale`` multiplies the number of transactions (items are
    kept fixed) so that smaller, faster instances can be generated while
    preserving the histogram shape.
    """
    spec = PAPER_DATASETS["BMS-POS"]
    num_records = max(1, int(spec.num_records * scale))
    return generate_zipf_transactions(
        num_records=num_records,
        num_items=spec.num_unique_items,
        avg_length=6.5,
        zipf_exponent=1.0,
        zipf_shift=10.0,
        rng=rng,
        name=f"BMS-POS-like(scale={scale:g})",
    )


def generate_kosarak_like(
    scale: float = 1.0,
    rng: RngLike = None,
) -> TransactionDatabase:
    """A synthetic stand-in for the Kosarak click-stream dataset.

    Kosarak has ~990k transactions over ~41k items with average transaction
    length around 8 and an extremely skewed item distribution (news-portal
    click-stream).  ``scale`` multiplies the number of transactions; the item
    catalogue is scaled with the square root of ``scale`` to keep the
    occupied fraction of the histogram realistic for small instances.
    """
    spec = PAPER_DATASETS["kosarak"]
    num_records = max(1, int(spec.num_records * scale))
    num_items = max(100, int(spec.num_unique_items * min(1.0, np.sqrt(scale))))
    return generate_zipf_transactions(
        num_records=num_records,
        num_items=num_items,
        avg_length=8.1,
        zipf_exponent=1.35,
        zipf_shift=1.0,
        rng=rng,
        name=f"kosarak-like(scale={scale:g})",
    )


def generate_quest_t40_like(
    scale: float = 1.0,
    rng: RngLike = None,
    num_patterns: int = 500,
    avg_pattern_length: int = 10,
    avg_transaction_length: int = 40,
    corruption: float = 0.5,
) -> TransactionDatabase:
    """A synthetic stand-in for T40I10D100K (IBM Quest generator).

    The IBM Quest recipe first draws a pool of "potential maximal itemsets"
    (patterns) whose lengths are Poisson with the given mean and whose items
    are Zipf-popular; each transaction is then assembled by unioning patterns
    (possibly corrupted by dropping items) until the target transaction
    length is reached.  T40I10D100K uses average transaction length 40,
    average pattern length 10 and 100k transactions over ~1k items.

    Parameters
    ----------
    scale:
        Multiplier on the number of transactions.
    rng:
        Seed or generator.
    num_patterns:
        Size of the potential-itemset pool.
    avg_pattern_length:
        Mean length of a potential itemset (the "I10" in the name).
    avg_transaction_length:
        Mean transaction length (the "T40").
    corruption:
        Probability of dropping each item when a pattern is inserted into a
        transaction, mimicking Quest's corruption level.
    """
    spec = PAPER_DATASETS["T40I10D100K"]
    generator = ensure_rng(rng)
    num_records = max(1, int(spec.num_records * scale))
    num_items = spec.num_unique_items
    popularity = _zipf_popularity(num_items, exponent=0.9, shift=5.0)

    # Draw the pool of potential maximal itemsets.
    pattern_lengths = np.clip(
        generator.poisson(avg_pattern_length, num_patterns), 1, num_items
    )
    patterns = [
        np.unique(generator.choice(num_items, size=int(length), replace=True, p=popularity))
        for length in pattern_lengths
    ]
    # Patterns themselves are picked with an exponential popularity profile,
    # as in the Quest generator.
    pattern_weights = generator.exponential(1.0, num_patterns)
    pattern_weights /= pattern_weights.sum()

    transactions: List[np.ndarray] = []
    target_lengths = np.clip(
        generator.poisson(avg_transaction_length, num_records), 1, 3 * avg_transaction_length
    )
    for target in target_lengths:
        items: List[int] = []
        while len(items) < target:
            pattern = patterns[int(generator.choice(num_patterns, p=pattern_weights))]
            keep = generator.uniform(size=len(pattern)) >= corruption
            items.extend(int(i) for i in pattern[keep])
            if not np.any(keep):
                # Guarantee progress even if the whole pattern was corrupted.
                items.append(int(pattern[0]))
        transactions.append(np.unique(np.asarray(items[: int(target)], dtype=int)))
    return TransactionDatabase(transactions, name=f"T40I10D100K-like(scale={scale:g})")


def make_dataset(
    name: str,
    scale: Optional[float] = None,
    rng: RngLike = None,
) -> TransactionDatabase:
    """Generate the synthetic stand-in for a paper dataset by name.

    Parameters
    ----------
    name:
        One of ``"BMS-POS"``, ``"kosarak"`` or ``"T40I10D100K"``
        (case-insensitive).
    scale:
        Multiplier on the number of transactions; defaults to the dataset's
        ``default_scale`` so that benchmark runs stay fast.
    rng:
        Seed or generator.
    """
    key = {k.lower(): k for k in PAPER_DATASETS}.get(name.lower())
    if key is None:
        raise KeyError(
            f"unknown dataset {name!r}; expected one of {sorted(PAPER_DATASETS)}"
        )
    spec = PAPER_DATASETS[key]
    if scale is None:
        scale = spec.default_scale
    if key == "BMS-POS":
        return generate_bms_pos_like(scale=scale, rng=rng)
    if key == "kosarak":
        return generate_kosarak_like(scale=scale, rng=rng)
    return generate_quest_t40_like(scale=scale, rng=rng)
