"""Readers and writers for the FIMI transaction file format.

The real BMS-POS, Kosarak and T40I10D100K datasets are distributed in the
FIMI repository format: one transaction per line, whitespace-separated item
identifiers.  When those files are available they can be dropped into the
experiment harness through :func:`load_fimi_file`; otherwise the synthetic
generators in :mod:`repro.datasets.generators` are used.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.datasets.transactions import TransactionDatabase
from repro.ioutil import atomic_write_text

PathLike = Union[str, "os.PathLike[str]"]


def load_fimi_file(
    path: PathLike,
    max_records: Optional[int] = None,
    name: Optional[str] = None,
) -> TransactionDatabase:
    """Load a FIMI-format transaction file.

    Parameters
    ----------
    path:
        Path to a text file with one transaction per line, item ids separated
        by whitespace.  Blank lines are ignored.
    max_records:
        If given, stop after this many transactions (useful for smoke tests).
    name:
        Name for the resulting database; defaults to the file's basename.

    Raises
    ------
    FileNotFoundError
        If ``path`` does not exist.
    ValueError
        If a line contains a token that is not an integer.
    """
    path = os.fspath(path)
    transactions = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                items = [int(token) for token in stripped.split()]
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_number}: non-integer item identifier"
                ) from exc
            transactions.append(items)
            if max_records is not None and len(transactions) >= max_records:
                break
    if name is None:
        name = os.path.basename(path)
    return TransactionDatabase(transactions, name=name)


def save_fimi_file(database: TransactionDatabase, path: PathLike) -> None:
    """Write a transaction database in FIMI format.

    Items within a transaction are written in ascending order, one
    transaction per line.  The write is atomic (temp file + ``os.replace``):
    a dataset file another process may be loading is never observed torn.
    """
    path = os.fspath(path)
    lines = [
        " ".join(str(item) for item in sorted(transaction))
        for transaction in database
    ]
    atomic_write_text(path, "\n".join(lines) + "\n" if lines else "")
