"""In-memory transaction databases.

A transaction database is a list of transactions; a transaction is a set of
item identifiers.  The paper's experiments reduce such a database to its
*item-count histogram* -- for every item, the number of transactions that
contain it -- and pose one counting query per item.  This module provides
that reduction along with neighbouring-database helpers used by the
sensitivity checks and the numerical DP verifier.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class TransactionDatabase:
    """A database of transactions (each transaction is a set of items).

    Parameters
    ----------
    transactions:
        Iterable of transactions.  Each transaction may be any iterable of
        hashable item identifiers; it is normalised to a frozenset.
    name:
        Optional identifier used in reports.
    """

    def __init__(self, transactions: Iterable[Iterable[int]], name: str = "") -> None:
        self._transactions: List[FrozenSet[int]] = [
            frozenset(t) for t in transactions
        ]
        self.name = name
        self._histogram: Optional[Counter] = None

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[FrozenSet[int]]:
        return iter(self._transactions)

    def __getitem__(self, index: int) -> FrozenSet[int]:
        return self._transactions[index]

    @property
    def num_records(self) -> int:
        """Number of transactions."""
        return len(self._transactions)

    # -- histogram interface ------------------------------------------------------

    def item_histogram(self) -> Dict[int, int]:
        """Item -> number of transactions containing that item (cached)."""
        if self._histogram is None:
            counter: Counter = Counter()
            for transaction in self._transactions:
                counter.update(transaction)
            self._histogram = counter
        return dict(self._histogram)

    def unique_items(self) -> List[int]:
        """Sorted list of all items that appear in at least one transaction."""
        return sorted(self.item_histogram().keys())

    @property
    def num_unique_items(self) -> int:
        """Number of distinct items in the database."""
        return len(self.item_histogram())

    def item_counts(self, items: Optional[Sequence[int]] = None) -> np.ndarray:
        """Counts for ``items`` (all unique items, sorted, by default)."""
        histogram = self.item_histogram()
        if items is None:
            items = self.unique_items()
        return np.asarray([histogram.get(item, 0) for item in items], dtype=float)

    def top_items(self, k: int) -> List[Tuple[int, int]]:
        """The ``k`` most frequent items as ``(item, count)`` pairs."""
        if k < 0:
            raise ValueError("k must be non-negative")
        histogram = self.item_histogram()
        return sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def kth_largest_count(self, k: int) -> float:
        """The count of the k-th most frequent item (1-indexed)."""
        if k < 1:
            raise ValueError("k must be at least 1")
        counts = sorted(self.item_histogram().values(), reverse=True)
        if k > len(counts):
            return 0.0
        return float(counts[k - 1])

    # -- neighbouring databases ---------------------------------------------------

    def remove_record(self, index: int) -> "TransactionDatabase":
        """A neighbouring database with the transaction at ``index`` removed."""
        if not 0 <= index < len(self._transactions):
            raise IndexError(f"record index {index} out of range")
        remaining = self._transactions[:index] + self._transactions[index + 1 :]
        return TransactionDatabase(remaining, name=self.name)

    def add_record(self, transaction: Iterable[int]) -> "TransactionDatabase":
        """A neighbouring database with one extra transaction appended."""
        return TransactionDatabase(
            self._transactions + [frozenset(transaction)], name=self.name
        )

    def adjacent_pairs(self, max_pairs: int = 10) -> List[Tuple["TransactionDatabase", "TransactionDatabase"]]:
        """A sample of (D, D') adjacent pairs obtained by removing one record.

        Used by the sensitivity validators and the numerical DP verifier.
        """
        pairs = []
        step = max(1, len(self._transactions) // max(1, max_pairs))
        for index in range(0, len(self._transactions), step):
            pairs.append((self, self.remove_record(index)))
            if len(pairs) >= max_pairs:
                break
        return pairs

    # -- summary ------------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        """Summary statistics matching the table in Section 7.1 of the paper."""
        lengths = [len(t) for t in self._transactions]
        return {
            "num_records": float(len(self._transactions)),
            "num_unique_items": float(self.num_unique_items),
            "avg_transaction_length": float(np.mean(lengths)) if lengths else 0.0,
            "max_item_count": float(max(self.item_histogram().values(), default=0)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransactionDatabase(name={self.name!r}, records={len(self)}, "
            f"items={self.num_unique_items})"
        )
