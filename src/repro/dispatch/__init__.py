"""Sharded spec execution and content-addressed result caching.

This package ships serialized mechanism specs to workers -- the step the
unified API was built for ("a spec can be queued, hashed, or shipped to a
worker as-is").  Four pieces:

* :mod:`~repro.dispatch.hashing` -- canonical spec / execution-request
  hashing (:func:`spec_hash`, :func:`run_key`): stable across process
  restarts and dict key order.
* :mod:`~repro.dispatch.cache` -- content-addressed :class:`ResultCache`
  backends (:class:`MemoryResultCache`, :class:`DiskResultCache`), so a
  ``(spec, engine, trials, seed)`` request is never recomputed.
* :mod:`~repro.dispatch.sharding` -- deterministic splitting of the trial
  axis into :class:`ShardTask` chunks (per-chunk seeds via
  ``SeedSequence.spawn``) and :func:`merge_results` to reassemble them.
* :mod:`~repro.dispatch.pool` -- :class:`WorkerPool`
  (``ProcessPoolExecutor``) and :class:`SerialPool`, both consuming queued
  task JSON.

Most callers never import this package directly: the facade grew
``run(spec, ..., shards=, cache=)`` and the CLI ``run-spec --shards N
--cache DIR``, both of which route through :func:`run_sharded` below.
"""

from __future__ import annotations

from typing import Optional

from repro.api.engines import validate_engine
from repro.api.registry import get_executor
from repro.api.result import Result
from repro.api.specs import MechanismSpec
from repro.dispatch.cache import (
    DiskResultCache,
    MemoryResultCache,
    ResultCache,
    as_result_cache,
)
from repro.dispatch.hashing import canonical_json, run_key, spec_hash
from repro.dispatch.pool import SerialPool, WorkerPool, resolve_pool
from repro.dispatch.sharding import (
    DEFAULT_CHUNK_TRIALS,
    ShardMergeError,
    ShardTask,
    execute_task,
    execute_task_json,
    make_tasks,
    merge_results,
    plan_chunks,
)

__all__ = [
    "DEFAULT_CHUNK_TRIALS",
    "DiskResultCache",
    "MemoryResultCache",
    "ResultCache",
    "SerialPool",
    "ShardMergeError",
    "ShardTask",
    "WorkerPool",
    "as_result_cache",
    "canonical_json",
    "execute_task",
    "execute_task_json",
    "make_tasks",
    "merge_results",
    "plan_chunks",
    "resolve_pool",
    "run_key",
    "run_sharded",
    "spec_hash",
]


def run_sharded(
    spec: MechanismSpec,
    *,
    engine: str = "batch",
    trials: int = 1,
    seed=None,
    shards: int = 1,
    chunk_trials: Optional[int] = None,
    pool=None,
    **options,
) -> Result:
    """Execute ``trials`` runs of ``spec`` sharded across workers.

    The trial axis is split into deterministic chunks
    (:func:`~repro.dispatch.sharding.make_tasks`), executed on ``shards``
    workers of ``pool``, and merged back
    (:func:`~repro.dispatch.sharding.merge_results`).  The result is a pure
    function of ``(spec, engine, trials, seed, chunk_trials)`` -- never of
    the shard count or pool type.

    Most callers should use ``repro.api.run(spec, shards=...)`` instead,
    which adds budget accounting and result caching on top.
    """
    if not isinstance(spec, MechanismSpec):
        raise TypeError(
            f"spec must be a MechanismSpec, got {type(spec).__name__}"
        )
    spec.validate()
    engine_name = validate_engine(engine)
    # Resolve the executor up front: an unsupported (spec, engine) pair --
    # e.g. the reference-only SVT catalogue variants on engine="batch" --
    # raises UnsupportedEngineError before any worker is spawned.
    get_executor(type(spec), engine_name)
    shards = int(shards)
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    tasks = make_tasks(
        spec,
        engine=engine_name,
        trials=trials,
        seed=seed,
        chunk_trials=chunk_trials,
        options=options,
    )
    pool, owned = resolve_pool(pool, shards)
    try:
        results = pool.run_tasks(tasks)
    finally:
        if owned:
            pool.close()
    return merge_results(results)
