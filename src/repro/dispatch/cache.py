"""Content-addressed result caches keyed by :func:`repro.dispatch.run_key`.

A cache stores the uniform :class:`~repro.api.result.Result` of one
deterministic execution request under its content address, so a ``(spec,
engine, trials, seed)`` pair is never recomputed.  Two backends:

* :class:`MemoryResultCache` -- a process-local dict, for sessions and tests;
* :class:`DiskResultCache` -- one ``<key>.npz`` (the result's arrays, exact
  dtypes) plus one ``<key>.json`` (the scalar metadata) per entry, surviving
  process restarts and shareable between workers on a common filesystem.

Robustness contract: a corrupted, truncated or half-written entry is
**treated as a miss, never an error** -- the caller recomputes and rewrites.
Writes are atomic (temp file + ``os.replace``) and ordered arrays-first, so a
crash between the two files leaves either no entry or a payload without its
metadata marker; neither ever serves a partial result.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.api.result import Result
from repro.ioutil import atomic_write_bytes

__all__ = [
    "DiskResultCache",
    "MemoryResultCache",
    "ResultCache",
    "as_result_cache",
    "atomic_write_bytes",
    "check_safe_name",
]


def check_safe_name(value: str, kind: str = "cache key") -> str:
    """Reject names that could escape their directory.

    The one copy of the rule for every name that becomes a filename in this
    system: cache keys here, task ids and job ids in the service layer.
    """
    if not value or any(ch in value for ch in "/\\.") or value.startswith("~"):
        raise ValueError(f"invalid {kind} {value!r}")
    return value

#: Result fields stored as arrays in the ``.npz`` payload (in declaration
#: order); optional fields that are ``None`` are simply absent.
_ARRAY_FIELDS = (
    "epsilon_consumed",
    "indices",
    "gaps",
    "estimates",
    "measurements",
    "true_values",
    "mask",
    "above",
    "branches",
    "processed",
)


class ResultCache:
    """Interface of a content-addressed result store.

    ``get`` returns the stored :class:`Result` or ``None`` on a miss (which
    includes unreadable entries); ``put`` stores a result under a key,
    overwriting silently (content addressing makes overwrites idempotent).
    """

    def get(self, key: str) -> Optional[Result]:
        raise NotImplementedError

    def put(self, key: str, result: Result) -> None:
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        """Cheap existence probe (counts as a use for LRU purposes).

        Backends override this where existence can be checked without
        deserializing the stored arrays.  Like ``get``, an unreadable entry
        reports ``False``.
        """
        return self.get(key) is not None

    def evict(self, key: str) -> None:
        """Drop an entry (missing keys are a no-op).

        Callers use this to purge an entry they found unreadable, so
        existence probes stop reporting it and the next writer recomputes.
        The default is a no-op, so pre-existing get/put-only backends keep
        working (they just cannot purge).
        """

    def __contains__(self, key: str) -> bool:
        return self.contains(key)


class MemoryResultCache(ResultCache):
    """A process-local in-memory cache (dict of key -> Result)."""

    def __init__(self) -> None:
        self._entries: Dict[str, Result] = {}

    def get(self, key: str) -> Optional[Result]:
        return self._entries.get(key)

    def put(self, key: str, result: Result) -> None:
        if not isinstance(result, Result):
            raise TypeError(f"can only cache Result objects, got {type(result).__name__}")
        self._entries[key] = result

    def evict(self, key: str) -> None:
        self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)


class DiskResultCache(ResultCache):
    """An on-disk cache: ``<key>.npz`` arrays + ``<key>.json`` metadata.

    Parameters
    ----------
    directory:
        Cache root; created (with parents) if missing.
    max_bytes:
        ``None`` (default) for an unbounded cache.  An integer caps the total
        on-disk size with an LRU policy: every hit touches the entry's mtimes
        (so recently-read entries stay resident), and every ``put`` evicts the
        oldest entries until the cache fits the cap again.  The entry just
        written is never evicted by its own ``put``, so a single oversized
        result can transiently exceed the cap rather than thrash.  Long-lived
        workers sharing one cache directory set this so the cache cannot grow
        unboundedly; hits on retained keys stay exact.

        Cap enforcement is O(1) per put: a running byte total (persisted to
        a ``.size`` sidecar index, lazily reconciled by the periodic and
        eviction-time scans) decides whether eviction is needed, so only
        the rare over-cap put pays a directory scan.
    """

    #: Incremental mutations between two full reconciling rescans.  The
    #: running byte total drifts only when *other* processes share the
    #: directory (their puts/evictions are invisible to this process's
    #: counter), so an occasional rescan re-anchors it; between rescans
    #: every capped put is O(1).
    RECONCILE_EVERY = 128

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        max_bytes: Optional[int] = None,
    ) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            # Read-only root: gets/probes over an existing (or absent)
            # directory still work; the first put fails with the real error.
            pass
        if max_bytes is not None:
            max_bytes = int(max_bytes)
            if max_bytes < 1:
                raise ValueError(f"max_bytes must be at least 1, got {max_bytes}")
        self.max_bytes = max_bytes
        # O(1) size accounting: a running byte total maintained on every
        # put/evict, persisted to a sidecar index (".size" -- no .json/.npz
        # suffix, so entry globs never see it) as a warm start for the next
        # process, and lazily reconciled against a real directory scan --
        # at construction-miss, every RECONCILE_EVERY mutations, and
        # whenever an eviction pass scans the directory anyway.
        self._size_lock = threading.Lock()
        self._size_bytes: Optional[int] = None
        self._mutations = 0
        self._index_path = self.directory / ".size"

    def _paths(self, key: str) -> tuple:
        check_safe_name(key)
        return self.directory / f"{key}.json", self.directory / f"{key}.npz"

    def put(self, key: str, result: Result) -> None:
        if not isinstance(result, Result):
            raise TypeError(f"can only cache Result objects, got {type(result).__name__}")
        meta_path, array_path = self._paths(key)
        arrays = {
            name: getattr(result, name)
            for name in _ARRAY_FIELDS
            if getattr(result, name) is not None
        }
        metadata = {
            "mechanism": result.mechanism,
            "engine": result.engine,
            "trials": result.trials,
            "epsilon": result.epsilon,
            "monotonic": result.monotonic,
            "extra": dict(result.extra),
            "arrays": sorted(arrays),
        }
        # Arrays first, metadata last: the .json file is the commit marker,
        # so get() never observes metadata pointing at a missing payload.
        import io

        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        payload = buffer.getvalue()
        meta_bytes = json.dumps(metadata, sort_keys=True).encode("utf-8")
        old_bytes = (
            self._stat_bytes(meta_path) + self._stat_bytes(array_path)
            if self.max_bytes is not None
            else 0
        )
        atomic_write_bytes(array_path, payload)
        atomic_write_bytes(meta_path, meta_bytes)
        if self.max_bytes is not None:
            self._account(len(payload) + len(meta_bytes) - old_bytes)
            # O(1) cap check: the running total decides whether an eviction
            # pass (the only remaining directory scan) is needed at all --
            # an under-cap put never rescans the cache directory.
            if self._total_bytes() > self.max_bytes:
                self._evict(keep=key)

    def get(self, key: str) -> Optional[Result]:
        meta_path, array_path = self._paths(key)
        try:
            metadata = json.loads(meta_path.read_text(encoding="utf-8"))
            with np.load(array_path, allow_pickle=False) as payload:
                arrays = {name: payload[name] for name in metadata["arrays"]}
            # Touch-on-get: a hit refreshes both mtimes so LRU eviction (see
            # max_bytes) removes cold entries, not recently-served ones.  A
            # failed touch (e.g. a concurrent eviction) never fails the hit.
            for path in (array_path, meta_path):
                try:
                    os.utime(path)
                except OSError:
                    pass
            return Result(
                mechanism=metadata["mechanism"],
                engine=metadata["engine"],
                trials=int(metadata["trials"]),
                epsilon=float(metadata["epsilon"]),
                monotonic=bool(metadata["monotonic"]),
                extra=dict(metadata["extra"]),
                **{name: None for name in _ARRAY_FIELDS if name not in arrays},
                **arrays,
            )
        except Exception:  # noqa: BLE001 -- any unreadable entry is a miss
            # Missing, truncated, corrupted or shape-inconsistent entries
            # (np.load raises anything from OSError to zipfile.BadZipFile to
            # pickle errors; Result.__post_init__ raises ValueError) are all
            # equivalent to "not cached" -- the caller recomputes.  A
            # *committed* entry that fails to load is additionally
            # quarantined, so the corrupt bytes cannot shadow the key (a
            # contains() probe reporting a payload get() cannot serve) or
            # pollute the byte accounting until eviction.
            self._quarantine(key)
            return None

    def contains(self, key: str) -> bool:
        """Existence probe without deserializing the arrays.

        Parses the metadata and opens the ``.npz`` zip directory (which
        lives at the end of the file, so truncation is caught) but never
        decompresses the array payloads -- the hot path of a worker
        checking whether a task's result already exists.  A positive probe
        touches the entry's mtimes like a hit.
        """
        meta_path, array_path = self._paths(key)
        try:
            metadata = json.loads(meta_path.read_text(encoding="utf-8"))
            with np.load(array_path, allow_pickle=False) as payload:
                if not set(metadata["arrays"]) <= set(payload.files):
                    return False
        except Exception:  # noqa: BLE001 -- an unreadable entry probes False
            return False
        for path in (array_path, meta_path):
            try:
                os.utime(path)
            except OSError:
                pass
        return True

    def _quarantine(self, key: str) -> None:
        """Move a corrupt *committed* entry aside as ``*.corrupt``.

        Only acts when the ``.json`` commit marker exists: a payload
        without metadata is an in-flight arrays-first ``put`` (or a clean
        miss), and quarantining it would destroy a healthy write in
        progress.  The renames overwrite any previous quarantine of the
        same key (``os.replace``), so repeated corruption is bounded at
        one ``.corrupt`` pair per key, and the freed bytes are folded out
        of the running size total -- quarantined files no longer shadow
        the key (entry scans glob ``*.json``/``*.npz``) nor count against
        the cap.
        """
        meta_path, array_path = self._paths(key)
        if not meta_path.exists():
            return
        freed = 0
        for path in (meta_path, array_path):
            size = self._stat_bytes(path) if self.max_bytes is not None else 0
            try:
                os.replace(path, path.with_name(f"{path.name}.corrupt"))
            except OSError:
                continue  # vanished concurrently (eviction/overwrite won)
            freed += size
        if freed:
            self._account(-freed)

    def evict(self, key: str) -> None:
        """Remove both files of an entry (metadata first, as in eviction)."""
        meta_path, array_path = self._paths(key)
        freed = 0
        for path in (meta_path, array_path):
            if self.max_bytes is not None:
                freed += self._stat_bytes(path)
            try:
                path.unlink()
            except OSError:
                pass
        if freed:
            self._account(-freed)

    # -- size accounting ----------------------------------------------------

    @staticmethod
    def _stat_bytes(path: Path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0

    def _load_index(self) -> Optional[int]:
        try:
            payload = json.loads(self._index_path.read_text(encoding="utf-8"))
            return max(0, int(payload["bytes"]))
        except (OSError, TypeError, KeyError, ValueError):
            return None

    def _account(self, delta: int) -> None:
        """Fold one mutation into the running total and the sidecar index.

        Only capped caches maintain the machinery: an unbounded cache never
        consults the total, so charging its hot path stats and a sidecar
        write per mutation would be pure overhead.
        """
        if self.max_bytes is None:
            return
        with self._size_lock:
            if self._size_bytes is None:
                # Establish from the persisted sidecar so this very
                # mutation is not lost: anchoring to the stale sidecar
                # *after* dropping the delta would hide the new entry from
                # the cap check until the next reconcile.  With no sidecar
                # either, stay unestablished -- the next _total_bytes()
                # scan runs after the write and already includes it.
                loaded = self._load_index()
                if loaded is None:
                    return
                self._size_bytes = loaded
            self._size_bytes = max(0, self._size_bytes + int(delta))
            self._mutations += 1
            self._write_index(self._size_bytes)

    def _write_index(self, total: int) -> None:
        # Best effort: a lost sidecar only costs the next process one scan.
        try:
            atomic_write_bytes(
                self._index_path,
                json.dumps(
                    # repro-lint: disable=no-wallclock -- operator diagnostic stamp; never enters a result, a key or the byte accounting
                    {"bytes": int(total), "at": time.time()},
                    sort_keys=True,
                ).encode("utf-8"),
            )
        except OSError:
            pass

    def _total_bytes(self) -> int:
        """The cache's byte total in O(1) where possible.

        Resolution order: the in-process running total (unless it is due
        for its periodic reconcile), then the persisted sidecar index (a
        previous process's running total), then -- lazily, only when
        neither exists -- a real directory scan.  Concurrent writers
        sharing the directory make the cheap answers drift; the periodic
        and eviction-time rescans bound that drift.
        """
        with self._size_lock:
            if (
                self._size_bytes is not None
                and self._mutations < self.RECONCILE_EVERY
            ):
                return self._size_bytes
            if self._size_bytes is None:
                loaded = self._load_index()
                if loaded is not None:
                    self._size_bytes = loaded
                    return self._size_bytes
                # no (or torn) sidecar: fall through to the scan
        return self.size_bytes()

    def size_bytes(self) -> int:
        """Total on-disk bytes of committed entries (payloads + metadata).

        Always a real directory scan -- the exact, reconciling answer that
        also re-anchors the running total (and sidecar) the capped ``put``
        fast path consults.
        """
        total = sum(size for _, _, _, size in self._entries())
        if self.max_bytes is not None:
            with self._size_lock:
                self._size_bytes = total
                self._mutations = 0
                self._write_index(total)
        return total

    def _entries(self):
        """``(mtime, key, (meta_path, array_path), size)`` per committed
        entry -- entries are enumerated by their ``.json`` commit marker, so
        in-flight temp files and orphaned payloads are not counted."""
        entries = []
        for meta_path in self.directory.glob("*.json"):
            key = meta_path.name[: -len(".json")]
            array_path = self.directory / f"{key}.npz"
            try:
                meta_stat = meta_path.stat()
            except OSError:  # evicted or replaced concurrently
                continue
            size = meta_stat.st_size
            try:
                size += array_path.stat().st_size
            except OSError:
                pass
            entries.append((meta_stat.st_mtime, key, (meta_path, array_path), size))
        return entries

    def _evict(self, keep: str) -> None:
        """Remove least-recently-used entries until the cap fits.

        ``keep`` (the key just written) is exempt.  The ``.json`` commit
        marker is removed first, so a reader racing an eviction observes a
        miss, never a metadata file pointing at a vanished payload mid-read.
        Already-vanished files (a concurrent eviction won) are skipped.

        The directory scan this needs for LRU order doubles as the lazy
        reconcile of the running byte total: eviction is the rare, already
        O(N) episode, so anchoring the O(1) fast path here is free.
        """
        entries = sorted(self._entries(), key=lambda entry: entry[:2])
        total = sum(entry[3] for entry in entries)
        for _, key, paths, size in entries:
            if total <= self.max_bytes:
                break
            if key == keep:
                continue
            for path in paths:
                try:
                    path.unlink()
                except OSError:
                    pass
            total -= size
        with self._size_lock:
            self._size_bytes = total
            self._mutations = 0
            self._write_index(total)


def as_result_cache(cache) -> Optional[ResultCache]:
    """Coerce a cache argument: ``None``, a :class:`ResultCache`, or a
    directory path (which selects :class:`DiskResultCache`)."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, os.PathLike)):
        return DiskResultCache(cache)
    raise TypeError(
        "cache must be None, a ResultCache instance or a directory path; "
        f"got {type(cache).__name__}"
    )
