"""Content-addressed result caches keyed by :func:`repro.dispatch.run_key`.

A cache stores the uniform :class:`~repro.api.result.Result` of one
deterministic execution request under its content address, so a ``(spec,
engine, trials, seed)`` pair is never recomputed.  Two backends:

* :class:`MemoryResultCache` -- a process-local dict, for sessions and tests;
* :class:`DiskResultCache` -- one ``<key>.npz`` (the result's arrays, exact
  dtypes) plus one ``<key>.json`` (the scalar metadata) per entry, surviving
  process restarts and shareable between workers on a common filesystem.

Robustness contract: a corrupted, truncated or half-written entry is
**treated as a miss, never an error** -- the caller recomputes and rewrites.
Writes are atomic (temp file + ``os.replace``) and ordered arrays-first, so a
crash between the two files leaves either no entry or a payload without its
metadata marker; neither ever serves a partial result.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.api.result import Result

__all__ = [
    "DiskResultCache",
    "MemoryResultCache",
    "ResultCache",
    "as_result_cache",
]

#: Result fields stored as arrays in the ``.npz`` payload (in declaration
#: order); optional fields that are ``None`` are simply absent.
_ARRAY_FIELDS = (
    "epsilon_consumed",
    "indices",
    "gaps",
    "estimates",
    "measurements",
    "true_values",
    "mask",
    "above",
    "branches",
    "processed",
)


class ResultCache:
    """Interface of a content-addressed result store.

    ``get`` returns the stored :class:`Result` or ``None`` on a miss (which
    includes unreadable entries); ``put`` stores a result under a key,
    overwriting silently (content addressing makes overwrites idempotent).
    """

    def get(self, key: str) -> Optional[Result]:
        raise NotImplementedError

    def put(self, key: str, result: Result) -> None:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None


class MemoryResultCache(ResultCache):
    """A process-local in-memory cache (dict of key -> Result)."""

    def __init__(self) -> None:
        self._entries: Dict[str, Result] = {}

    def get(self, key: str) -> Optional[Result]:
        return self._entries.get(key)

    def put(self, key: str, result: Result) -> None:
        if not isinstance(result, Result):
            raise TypeError(f"can only cache Result objects, got {type(result).__name__}")
        self._entries[key] = result

    def __len__(self) -> int:
        return len(self._entries)


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    handle, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class DiskResultCache(ResultCache):
    """An on-disk cache: ``<key>.npz`` arrays + ``<key>.json`` metadata.

    Parameters
    ----------
    directory:
        Cache root; created (with parents) if missing.
    """

    def __init__(self, directory: Union[str, os.PathLike]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _paths(self, key: str) -> tuple:
        if not key or any(ch in key for ch in "/\\.") or key.startswith("~"):
            raise ValueError(f"invalid cache key {key!r}")
        return self.directory / f"{key}.json", self.directory / f"{key}.npz"

    def put(self, key: str, result: Result) -> None:
        if not isinstance(result, Result):
            raise TypeError(f"can only cache Result objects, got {type(result).__name__}")
        meta_path, array_path = self._paths(key)
        arrays = {
            name: getattr(result, name)
            for name in _ARRAY_FIELDS
            if getattr(result, name) is not None
        }
        metadata = {
            "mechanism": result.mechanism,
            "engine": result.engine,
            "trials": result.trials,
            "epsilon": result.epsilon,
            "monotonic": result.monotonic,
            "extra": dict(result.extra),
            "arrays": sorted(arrays),
        }
        # Arrays first, metadata last: the .json file is the commit marker,
        # so get() never observes metadata pointing at a missing payload.
        import io

        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        _atomic_write_bytes(array_path, buffer.getvalue())
        _atomic_write_bytes(meta_path, json.dumps(metadata).encode("utf-8"))

    def get(self, key: str) -> Optional[Result]:
        meta_path, array_path = self._paths(key)
        try:
            metadata = json.loads(meta_path.read_text(encoding="utf-8"))
            with np.load(array_path, allow_pickle=False) as payload:
                arrays = {name: payload[name] for name in metadata["arrays"]}
            return Result(
                mechanism=metadata["mechanism"],
                engine=metadata["engine"],
                trials=int(metadata["trials"]),
                epsilon=float(metadata["epsilon"]),
                monotonic=bool(metadata["monotonic"]),
                extra=dict(metadata["extra"]),
                **{name: None for name in _ARRAY_FIELDS if name not in arrays},
                **arrays,
            )
        except Exception:
            # Missing, truncated, corrupted or shape-inconsistent entries
            # (np.load raises anything from OSError to zipfile.BadZipFile to
            # pickle errors; Result.__post_init__ raises ValueError) are all
            # equivalent to "not cached" -- the caller recomputes.
            return None


def as_result_cache(cache) -> Optional[ResultCache]:
    """Coerce a cache argument: ``None``, a :class:`ResultCache`, or a
    directory path (which selects :class:`DiskResultCache`)."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, os.PathLike)):
        return DiskResultCache(cache)
    raise TypeError(
        "cache must be None, a ResultCache instance or a directory path; "
        f"got {type(cache).__name__}"
    )
