"""Canonical hashing of mechanism specs and execution requests.

A frozen :class:`~repro.api.specs.MechanismSpec` serializes losslessly, so an
*execution request* -- the spec plus everything else that determines the
outcome of a seeded :func:`repro.api.run` call (engine, trial count, seed,
chunking, run-time options) -- can be reduced to a stable content address.
The result cache (:mod:`repro.dispatch.cache`) stores results under that
address; two requests collide exactly when they would produce bit-identical
results.

Stability requirements, all load-bearing:

* **Key order must not matter** -- ``canonical_json`` sorts keys, so a spec
  payload that went through a round-trip (or was written by hand in a
  different order) hashes the same.
* **Process restarts must not matter** -- no ``id()``-, ``hash()``- or
  environment-dependent state enters the digest; floats are rendered with
  ``repr`` (shortest round-trip form, stable across CPython builds).
* **Equal specs hash equal, unequal specs hash unequal** -- the property
  tests in ``tests/test_property_based.py`` pin this down, including the
  one genuine subtlety: ``-0.0 == 0.0`` in Python, so negative zero is
  normalised to positive zero before hashing.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Optional

import numpy as np

from repro.api.engines import validate_engine
from repro.api.specs import MechanismSpec

__all__ = ["canonical_json", "run_key", "spec_hash"]

#: Version tag mixed into every run key.  Bump when the execution semantics
#: behind a key change (e.g. a different per-chunk seed derivation), so stale
#: on-disk caches miss instead of replaying results of the old semantics.
KEY_VERSION = 1


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to JSON-safe primitives with deterministic identity."""
    if value is None or isinstance(value, str):
        return value
    # bool before int: bool is an int subclass but "true" != "1" in JSON.
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if not math.isfinite(value):
            raise ValueError("cannot hash non-finite numbers")
        # -0.0 == 0.0 must hash identically for hash-equality to track
        # spec equality.
        return 0.0 if value == 0.0 else value
    if isinstance(value, np.ndarray):
        return _canonical(value.tolist())
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    raise TypeError(f"cannot canonicalize {type(value).__name__} for hashing")


def canonical_json(payload: Any) -> str:
    """A stable JSON serialization: sorted keys, no whitespace, exact floats."""
    return json.dumps(
        _canonical(payload), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def _digest(payload: Any) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def spec_hash(spec: MechanismSpec) -> str:
    """Content address of a spec alone (sha256 hex of its canonical payload).

    Equal specs hash equal; specs differing in any field (including the
    ``kind`` tag) hash differently.  Specs are frozen, so the digest is
    memoized on the instance -- repeated cache lookups for the same spec
    (the hot path of a warm cache) do not re-serialize the query vector.
    """
    if not isinstance(spec, MechanismSpec):
        raise TypeError(f"spec must be a MechanismSpec, got {type(spec).__name__}")
    cached = spec.__dict__.get("_content_hash")
    if cached is None:
        cached = _digest(spec.to_dict())
        # repro-lint: disable=spec-immutability -- write-once memo of a value derived from the frozen fields; it can never disagree with them
        object.__setattr__(spec, "_content_hash", cached)
    return cached


def run_key(
    spec: MechanismSpec,
    *,
    engine: str,
    trials: int,
    seed: int,
    chunk_trials: Optional[int] = None,
    options: Optional[dict] = None,
) -> str:
    """Content address of one deterministic execution request.

    Parameters
    ----------
    spec:
        The mechanism spec to execute.
    engine:
        Canonical engine name (validated here, so ``"batch"`` and
        ``Engine.BATCH`` produce the same key).
    trials:
        Number of independent trials.
    seed:
        The integer root seed.  Only deterministic requests are addressable:
        an OS-seeded run has no stable identity to cache under.
    chunk_trials:
        ``None`` for a plain unsharded run (the seed feeds one generator for
        the whole trial axis); an integer for the dispatch layer's chunked
        execution, whose per-chunk derived seeds produce a *different*
        (equally valid) sample -- the two must never share a key.
    options:
        Run-time options forwarded to the executor (per-trial thresholds,
        explicit noise matrices, ``fast_noise``).  Arrays are canonicalized
        element-exactly, so an option change of any kind changes the key.
    """
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        raise TypeError(
            f"seed must be an integer for content addressing, got {seed!r}"
        )
    payload = {
        "version": KEY_VERSION,
        # The spec enters by its (memoized) content hash, not its full
        # payload: sha256 composition is just as collision-resistant and
        # keeps warm-cache lookups O(1) in the query-vector length.
        "spec": spec_hash(spec),
        "engine": validate_engine(engine),
        "trials": int(trials),
        "seed": int(seed),
        "chunk_trials": None if chunk_trials is None else int(chunk_trials),
        "options": options or {},
    }
    return _digest(payload)
