"""Worker pools that consume queued shard-task JSON and execute it.

Two interchangeable executors behind one tiny protocol
(``run_tasks(tasks) -> [Result]``, results in task order):

* :class:`SerialPool` -- runs every task in-process, in order.  The debug /
  test executor, and the fastest choice for single-chunk runs (no process
  startup, no pickling).
* :class:`WorkerPool` -- a ``concurrent.futures.ProcessPoolExecutor`` fan-out
  across CPU cores.

Both pools feed workers the *serialized* task (``ShardTask.to_json``), not
the live object: what crosses the queue is exactly the JSON a future
service/broker layer would enqueue, so serial-vs-process equivalence tests
also prove the JSON envelope is lossless.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Union

from repro.api.result import Result
from repro.dispatch.sharding import ShardTask, execute_task_json

__all__ = ["SerialPool", "WorkerPool", "resolve_pool"]


class SerialPool:
    """Executes shard tasks in-process, in order (tests, debugging, and the
    no-parallelism fast path)."""

    def run_tasks(self, tasks: Sequence[ShardTask]) -> List[Result]:
        """Execute every task and return results in task order."""
        return [execute_task_json(task.to_json()) for task in tasks]

    def close(self) -> None:
        """Nothing to release; present for pool-protocol symmetry."""

    def __enter__(self) -> "SerialPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class WorkerPool:
    """A process pool executing queued shard-task JSON across CPU cores.

    Parameters
    ----------
    workers:
        Worker process count; ``None`` uses ``os.cpu_count()``.

    The underlying ``ProcessPoolExecutor`` is created lazily on first use and
    reused across ``run_tasks`` calls, so a long-lived pool amortises worker
    startup over many runs (the ``throughput-sharded`` benchmarks measure
    this steady state).  Use as a context manager -- or call :meth:`close` --
    to release the workers.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None:
            workers = int(workers)
            if workers < 1:
                raise ValueError(f"workers must be at least 1, got {workers}")
        self._workers = workers or os.cpu_count() or 1
        self._executor: Optional[ProcessPoolExecutor] = None

    @property
    def workers(self) -> int:
        """Number of worker processes the pool runs."""
        return self._workers

    def run_tasks(self, tasks: Sequence[ShardTask]) -> List[Result]:
        """Execute every task across the workers; results in task order."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self._workers)
        payloads = [task.to_json() for task in tasks]
        return list(self._executor.map(execute_task_json, payloads))

    def close(self, cancel_futures: bool = True) -> None:
        """Shut the worker processes down.

        ``cancel_futures`` (default ``True``) drops still-queued tasks
        instead of waiting for them: when one chunk of a sharded run raises,
        ``run_sharded``'s ``finally`` must propagate the error immediately,
        not after every remaining queued chunk has executed.  Running tasks
        always complete either way; after a normal ``run_tasks`` there is
        nothing queued, so cancelling is a no-op.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=cancel_futures)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def resolve_pool(pool: Union[None, str, SerialPool, WorkerPool], shards: int):
    """Resolve a facade ``pool=`` argument to a pool instance.

    Returns ``(pool, owned)`` -- ``owned`` tells the caller whether it
    created the pool (and must close it) or borrowed a caller-managed one.

    ``None`` picks :class:`SerialPool` for one shard and a
    :class:`WorkerPool` with ``shards`` workers otherwise; the strings
    ``"serial"`` / ``"process"`` force a choice; any object with a
    ``run_tasks`` method is used as-is.
    """
    if pool is None:
        pool = "serial" if shards <= 1 else "process"
    if isinstance(pool, str):
        if pool == "serial":
            return SerialPool(), True
        if pool == "process":
            return WorkerPool(workers=shards), True
        raise ValueError(f"pool must be 'serial' or 'process', got {pool!r}")
    if hasattr(pool, "run_tasks"):
        return pool, False
    raise TypeError(
        "pool must be None, 'serial', 'process', or an object with a "
        f"run_tasks method; got {type(pool).__name__}"
    )
