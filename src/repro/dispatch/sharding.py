"""Sharded execution of a spec's trial axis, with deterministic seeding.

The trial axis of a :func:`repro.api.run` call is split into fixed-size
**chunks** (:func:`plan_chunks`), each of which becomes one self-contained
:class:`ShardTask`: the spec as JSON, the engine name, the chunk's trial
count, a deterministically derived seed, and the chunk's slice of any
per-trial run-time options.  A worker pool (:mod:`repro.dispatch.pool`)
executes tasks in any order and on any number of workers;
:func:`merge_results` reassembles the per-chunk :class:`Result` objects into
one, in chunk order.

Determinism contract
--------------------
Chunk seeds come from ``numpy.random.SeedSequence(seed).spawn(num_chunks)``.
Because the chunk layout depends only on ``(trials, chunk_trials)`` -- never
on how many workers execute them -- a seeded sharded run is a pure function
of ``(spec, engine, trials, seed, chunk_trials)``:

* the same run on 1, 2 or 8 shards, on a serial or a process pool, is
  **bit-identical**;
* with a single chunk (``trials <= chunk_trials``) it is bit-identical to
  the plain unsharded ``run(spec, trials=trials,
  rng=numpy.random.default_rng(SeedSequence(seed).spawn(1)[0]))``.

``tests/test_dispatch_sharding.py`` asserts both.

Tasks cross the process boundary as JSON (``ShardTask.to_json``), which is
also what a future queue/service layer would enqueue: a task is executable
by any worker that can import :mod:`repro`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.result import Result
from repro.api.specs import MechanismSpec, spec_from_json

__all__ = [
    "DEFAULT_CHUNK_TRIALS",
    "ShardTask",
    "execute_task",
    "execute_task_json",
    "make_tasks",
    "merge_results",
    "plan_chunks",
]

#: Default trials per chunk.  Large enough that each chunk amortises the
#: facade/dispatch overhead and runs fully vectorized; small enough that the
#: batch engine's ``(B, n)`` trial matrices stay cache-resident (the very
#: large single-batch runs fall off a memory cliff -- see the
#: ``throughput-sharded`` benchmark group).
DEFAULT_CHUNK_TRIALS = 1024

#: Options whose leading axis is the trial axis; their rows are split across
#: chunks so the sharded run consumes exactly the per-trial inputs the
#: unsharded run would.  Everything else (``fast_noise``) passes through.
PER_TRIAL_OPTIONS = (
    "thresholds",
    "noise",
    "threshold_noise",
    "query_noise",
    "top_noise",
    "middle_noise",
)


def _json_safe_option(value):
    """An option value ``json.dumps`` can serialize.

    Arrays become nested lists; numpy *scalars* -- a user-passed
    ``np.float64``, or the 0-d ``thresholds`` array that ``_slice_options``
    unwraps to ``value[()]`` -- become plain Python scalars via ``.item()``
    (``json.dumps`` raises ``TypeError`` on numpy scalar types).
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass(frozen=True)
class ShardTask:
    """One self-contained unit of sharded work: a chunk of a run's trials.

    Attributes
    ----------
    spec_json:
        The mechanism spec, serialized (``MechanismSpec.to_json``).
    engine:
        Canonical engine name to execute on.
    trials:
        Number of trials in this chunk.
    entropy:
        Root entropy of the run's ``SeedSequence`` (shared by every chunk).
    spawn_key:
        The chunk's spawn key; ``SeedSequence(entropy=..., spawn_key=...)``
        reconstructs the chunk's generator identically in any process.
    options:
        Run-time executor options for this chunk (per-trial options already
        sliced to the chunk's rows).
    index:
        Position of the chunk on the trial axis (merge order).
    """

    spec_json: str
    engine: str
    trials: int
    entropy: int
    spawn_key: Tuple[int, ...]
    options: Dict = field(default_factory=dict)
    index: int = 0

    def seed_sequence(self) -> np.random.SeedSequence:
        """The chunk's deterministic seed, identical in every process."""
        return np.random.SeedSequence(
            entropy=self.entropy, spawn_key=tuple(self.spawn_key)
        )

    def to_payload(self) -> dict:
        """A JSON-compatible dict (arrays in options become nested lists,
        numpy scalars become Python scalars)."""
        options = {
            name: _json_safe_option(value) for name, value in self.options.items()
        }
        return {
            "spec": json.loads(self.spec_json),
            "engine": self.engine,
            "trials": self.trials,
            "entropy": self.entropy,
            "spawn_key": list(self.spawn_key),
            "options": options,
            "index": self.index,
        }

    def to_json(self) -> str:
        """Serialize the task for a queue or a worker process."""
        return json.dumps(self.to_payload())

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardTask":
        return cls(
            spec_json=json.dumps(payload["spec"]),
            engine=payload["engine"],
            trials=int(payload["trials"]),
            entropy=int(payload["entropy"]),
            spawn_key=tuple(int(k) for k in payload["spawn_key"]),
            options=dict(payload.get("options", {})),
            index=int(payload.get("index", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "ShardTask":
        return cls.from_payload(json.loads(text))


def plan_chunks(trials: int, chunk_trials: Optional[int] = None) -> List[int]:
    """Chunk sizes covering ``trials``: full chunks plus one remainder.

    The layout depends only on ``(trials, chunk_trials)`` -- never on the
    worker count -- which is what makes sharded runs partition-independent.
    """
    trials = int(trials)
    if trials < 1:
        raise ValueError(f"trials must be at least 1, got {trials}")
    chunk_trials = DEFAULT_CHUNK_TRIALS if chunk_trials is None else int(chunk_trials)
    if chunk_trials < 1:
        raise ValueError(f"chunk_trials must be at least 1, got {chunk_trials}")
    full, remainder = divmod(trials, chunk_trials)
    return [chunk_trials] * full + ([remainder] if remainder else [])


def _slice_options(options: Dict, trials: int, start: int, stop: int) -> Dict:
    """The chunk's view of the run-time options (per-trial rows sliced)."""
    sliced = {}
    for name, value in options.items():
        if name in PER_TRIAL_OPTIONS and value is not None and not np.isscalar(value):
            value = np.asarray(value)
            if value.ndim == 0:
                value = value[()]  # scalar threshold: broadcast per chunk
            elif value.shape[0] != trials:
                raise ValueError(
                    f"per-trial option {name!r} must have leading axis {trials}, "
                    f"got shape {value.shape}"
                )
            else:
                value = value[start:stop]
        sliced[name] = value
    return sliced


def make_tasks(
    spec: MechanismSpec,
    *,
    engine: str,
    trials: int,
    seed=None,
    chunk_trials: Optional[int] = None,
    options: Optional[Dict] = None,
) -> List[ShardTask]:
    """Split one run request into deterministic, self-contained chunk tasks.

    ``seed`` is anything ``numpy.random.SeedSequence`` accepts as entropy
    (``None`` draws fresh OS entropy -- the run is then unique but still
    internally consistent: every chunk derives from the same root).
    """
    root = np.random.SeedSequence(seed)
    sizes = plan_chunks(trials, chunk_trials)
    children = root.spawn(len(sizes))
    spec_json = spec.to_json()
    options = options or {}
    tasks = []
    start = 0
    for index, (size, child) in enumerate(zip(sizes, children)):
        tasks.append(
            ShardTask(
                spec_json=spec_json,
                engine=engine,
                trials=size,
                entropy=child.entropy,
                spawn_key=tuple(int(k) for k in child.spawn_key),
                options=_slice_options(options, trials, start, start + size),
                index=index,
            )
        )
        start += size
    return tasks


def execute_task(task: ShardTask) -> Result:
    """Run one chunk through the facade with its derived generator."""
    # Imported here, not at module scope: the facade imports this package
    # lazily for the same reason (dispatch and facade reference each other).
    from repro.api.facade import run

    spec = spec_from_json(task.spec_json)
    rng = np.random.default_rng(task.seed_sequence())
    # Options that crossed a JSON boundary arrive as nested lists; the
    # executors coerce array-likes themselves, so they pass through as-is.
    return run(spec, engine=task.engine, trials=task.trials, rng=rng, **task.options)


def execute_task_json(payload: str) -> Result:
    """Worker entry point: execute a task from its queued JSON form."""
    return execute_task(ShardTask.from_json(payload))


def _concat_padded(arrays: Sequence[np.ndarray], pad) -> np.ndarray:
    """Concatenate ``(B_i, w_i)`` matrices on the trial axis, right-padding
    narrower ones with ``pad`` to the widest ``w`` (the unsharded padding
    convention: a merged run's width is the maximum over all trials)."""
    width = max(a.shape[1] for a in arrays)
    if all(a.shape[1] == width for a in arrays):
        return np.concatenate(arrays, axis=0)
    padded = []
    for a in arrays:
        if a.shape[1] < width:
            filler = np.full((a.shape[0], width - a.shape[1]), pad, dtype=a.dtype)
            a = np.concatenate([a, filler], axis=1)
        padded.append(a)
    return np.concatenate(padded, axis=0)


#: Padding value per optional (B, w) matrix field, matching the executors'
#: own conventions (indices -1, measurement-family NaN, mask False).
_PAD_VALUES = {
    "indices": -1,
    "gaps": np.nan,
    "estimates": np.nan,
    "measurements": np.nan,
    "true_values": np.nan,
    "mask": False,
}


class ShardMergeError(ValueError):
    """Raised when per-shard results are not slices of one coherent run."""


def merge_results(results: Sequence[Result]) -> Result:
    """Reassemble per-chunk results into one, in the given (chunk) order.

    Trial-axis arrays are concatenated (width-padded where chunks answered
    fewer queries than the widest chunk); scalar metadata must agree across
    chunks.  Budget accounting composes additively: the merged
    ``epsilon_consumed`` is the concatenation, so facade-level odometer
    charges (``sum(epsilon_consumed)``) equal the sum over shards.
    """
    results = list(results)
    if not results:
        raise ShardMergeError("cannot merge zero shard results")
    if len(results) == 1:
        return results[0]
    first = results[0]
    for other in results[1:]:
        for name in ("mechanism", "engine", "epsilon", "monotonic"):
            if getattr(other, name) != getattr(first, name):
                raise ShardMergeError(
                    f"shard results disagree on {name}: "
                    f"{getattr(first, name)!r} vs {getattr(other, name)!r}"
                )
        # ``extra`` holds spec-derived scalars (noise scales, branch
        # budgets), so coherent shards of one run must agree on it exactly
        # -- silently keeping only the first shard's copy would mask a merge
        # of incompatible runs.
        if other.extra != first.extra:
            raise ShardMergeError(
                f"shard results disagree on extra: "
                f"{first.extra!r} vs {other.extra!r}"
            )
        for name in ("estimates", "measurements", "true_values", "mask",
                     "above", "branches", "processed"):
            if (getattr(other, name) is None) != (getattr(first, name) is None):
                raise ShardMergeError(
                    f"shard results disagree on presence of field {name!r}"
                )

    def merged(name):
        value = getattr(first, name)
        if value is None:
            return None
        arrays = [getattr(r, name) for r in results]
        if arrays[0].ndim == 1:
            return np.concatenate(arrays)
        if name in _PAD_VALUES:
            return _concat_padded(arrays, _PAD_VALUES[name])
        # (B, n) stream-axis fields: widths are the stream length, equal by
        # construction (same spec); a mismatch means incompatible runs.
        if len({a.shape[1] for a in arrays}) != 1:
            raise ShardMergeError(f"shard results disagree on {name} width")
        return np.concatenate(arrays, axis=0)

    return Result(
        mechanism=first.mechanism,
        engine=first.engine,
        trials=sum(r.trials for r in results),
        epsilon=first.epsilon,
        epsilon_consumed=merged("epsilon_consumed"),
        indices=merged("indices"),
        gaps=merged("gaps"),
        estimates=merged("estimates"),
        measurements=merged("measurements"),
        true_values=merged("true_values"),
        mask=merged("mask"),
        above=merged("above"),
        branches=merged("branches"),
        processed=merged("processed"),
        monotonic=first.monotonic,
        extra=dict(first.extra),
    )
