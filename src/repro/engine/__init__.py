"""A small private-analytics session engine.

The mechanisms in :mod:`repro.core` are stateless building blocks.  Real
deployments (the database-querying systems cited in the paper's introduction)
wrap such blocks in a *session* that owns the data, tracks the remaining
privacy budget across questions, and refuses to answer once the budget is
exhausted.  :class:`~repro.engine.session.PrivateAnalyticsSession` provides
that layer for transaction databases:

* ``top_k_items`` -- Noisy-Top-K-with-Gap selection over the item counts,
  optionally followed by measurement and BLUE fusion;
* ``items_above`` -- Adaptive-Sparse-Vector-with-Gap over the item counts,
  with optional confidence bounds;
* ``measure_items`` -- Laplace measurements of chosen items;
* a per-session :class:`~repro.accounting.budget.BudgetOdometer` that every
  call charges, so the total privacy loss of a session is explicit.

Because unused budget from the adaptive mechanism is returned to the session,
the engine demonstrates the practical value of the paper's Figure 4 result:
the saved budget funds later questions in the same session.
"""

from repro.engine.session import PrivateAnalyticsSession, SessionReport

__all__ = ["PrivateAnalyticsSession", "SessionReport"]
