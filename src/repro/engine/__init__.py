"""The private-analytics execution engine: sessions plus batch trials.

The mechanisms in :mod:`repro.core` are stateless building blocks.  This
package wraps them in two execution layers:

* :class:`~repro.engine.session.PrivateAnalyticsSession` -- an interactive,
  budget-tracked session over one transaction database (``top_k_items``,
  ``items_above``, ``measure_items``), with budget-free ``simulate_*``
  what-if planning powered by the batch engine;
* :class:`~repro.engine.batch.BatchExecutionEngine` -- a vectorized runner
  that executes ``B`` independent Monte-Carlo trials of a mechanism as
  ``(B, n)`` NumPy matrix operations, which is what lets the evaluation
  harness average thousands of trials per plotted point at hardware speed.

Consumers normally reach both layers through the unified mechanism API
(:mod:`repro.api`): a declarative spec executed via ``run(spec,
engine="batch" | "reference")`` dispatches to the batch runners in
:mod:`repro.engine.batch` or to the per-trial reference classes through the
executor registry -- the session's question methods are themselves thin
facade consumers.  The module-level ``batch_*`` functions remain public for
code that wants direct, allocation-free access to the vectorized kernels.

Batch semantics
---------------
What is vectorized, and how the sequential mechanisms are emulated:

* **Noise**: each trial matrix is filled by ONE batched Laplace draw
  (``sample_batch``).  By default the engine uses the fast inverse-CDF
  sampler (``fast=True``) -- same distribution, roughly half the draw cost,
  different variate stream.  With ``fast_noise=False`` the draw goes through
  ``Generator.laplace``, and because NumPy generators fill arrays in C
  (row-major) order a ``(B, n)`` draw then consumes exactly the same variate
  stream as ``B`` sequential length-``n`` draws: row ``b`` is bit-identical
  to what trial ``b`` of a per-trial Noisy-Max loop would have drawn.  (The
  per-trial SVT reference draws lazily and stops early, so its stream
  ordering is only reproduced when explicit noise matrices are supplied --
  which is how the equivalence tests pin down bit-identical behaviour.)
* **Noisy-Max family**: per-row ``argpartition`` restricts each trial to its
  top ``k+1`` noisy candidates, which are then ordered with a stable sort
  that reproduces the reference tie-breaking exactly; consecutive gaps come
  from one gather.
* **SVT early stopping**: the above/below (and top/middle/bottom branch)
  decision of *every* stream position is computed eagerly for all trials,
  then each trial's outputs are masked down to its stopping prefix.  The
  "stop after ``k`` above-threshold answers" rule becomes a cumulative count
  and the Algorithm 2 budget guard a cumulative cost; consumed budgets are
  accumulated with ``cumsum`` so they match the reference's sequential
  ``+=`` / odometer arithmetic bit-for-bit.
* **Draw counting**: batched draws through a
  :class:`~repro.primitives.rng.RandomSource` are counted one per *scalar*
  variate (``B * n`` for a trial matrix), keeping the Lemma 1 condition (ii)
  draw-count reasoning valid regardless of batching.

The per-trial classes remain the reference implementation; the equivalence
tests in ``tests/test_engine_batch.py`` assert that, under a shared noise
matrix, the batch engine reproduces their selected indices, gaps, branches
and consumed budgets exactly.
"""

from repro.engine.batch import (
    BatchExecutionEngine,
    BatchSelectThenMeasure,
    batch_adaptive_svt,
    batch_noisy_top_k,
    batch_pick_thresholds,
    batch_select_and_measure_svt,
    batch_select_and_measure_top_k,
    batch_sparse_vector,
)
from repro.engine.session import PrivateAnalyticsSession, SessionReport

__all__ = [
    "BatchExecutionEngine",
    "BatchSelectThenMeasure",
    "PrivateAnalyticsSession",
    "SessionReport",
    "batch_adaptive_svt",
    "batch_noisy_top_k",
    "batch_pick_thresholds",
    "batch_select_and_measure_svt",
    "batch_select_and_measure_top_k",
    "batch_sparse_vector",
]
