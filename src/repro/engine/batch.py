"""Vectorized batch-trial execution of the gap mechanisms.

The Monte-Carlo harness needs tens of thousands of independent trials per
plotted point (the paper averages 10,000).  Running each trial through the
per-object reference implementations costs a Python-level loop per query;
this module instead runs ``B`` independent trials as ``(B, n)`` NumPy matrix
operations:

* one batched Laplace draw fills a whole trial matrix
  (:meth:`~repro.primitives.base.NoiseDistribution.sample_batch`);
* the Noisy-Max family uses ``argpartition``-based top-k selection per row,
  with the consecutive gaps extracted by a single gather;
* the SVT family emulates the sequential "stop after k above-threshold
  answers" / "stop when the budget is exhausted" semantics with
  cumulative-count (and cumulative-cost) masking -- the above/below decision
  of every stream position is computed eagerly for all trials, then each
  trial's outputs are restricted to its stopping prefix.

Under a shared explicit noise matrix the batch runners are *bit-identical*
to the per-trial reference classes: decisions use the same floating-point
expressions in the same association order, and consumed budgets are
accumulated with ``cumsum`` (sequential left-to-right addition, exactly like
the reference's repeated ``+=`` / odometer charges).  The equivalence tests
in ``tests/test_engine_batch.py`` pin this down.

Tie-breaking note: the reference top-k sorts the full noisy vector with a
stable sort and reverses it; the batch path partitions first and only sorts
the top ``m`` candidates.  Ordering among *retained* candidates matches the
reference exactly (including ties); a tie that straddles the partition
boundary could in principle select a different-but-equally-noisy index, an
event of probability zero under continuous noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.core.noisy_top_k import NoisyTopKWithGap
from repro.mechanisms.laplace_mechanism import LaplaceMechanism
from repro.mechanisms.noisy_max import NoisyTopK
from repro.mechanisms.results import BatchResult
from repro.mechanisms.sparse_vector import SparseVector, SparseVectorWithGap
from repro.postprocess.blue import blue_top_k_estimate_batch
from repro.primitives.laplace import LaplaceNoise
from repro.primitives.rng import RandomSource, RngLike, ensure_rng

ArrayLike = Union[Sequence[float], np.ndarray]

#: Column-block width of the SVT stream scan.  The scan evaluates one block
#: of stream positions for all trials at once and terminates as soon as every
#: trial has stopped, so short-prefix workloads do not pay for the full
#: stream; 256 columns keeps each block operation comfortably vectorized
#: (B * 256 elements) without overshooting typical stopping prefixes.
_SCAN_BLOCK = 256

__all__ = [
    "BatchExecutionEngine",
    "BatchSelectThenMeasure",
    "batch_adaptive_svt",
    "batch_noisy_top_k",
    "batch_pick_thresholds",
    "batch_select_and_measure_svt",
    "batch_select_and_measure_top_k",
    "batch_sparse_vector",
]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _rng_handle(rng: RngLike):
    """Resolve ``rng`` without discarding a RandomSource's draw counting.

    ``ensure_rng`` unwraps a :class:`RandomSource` to its raw generator; the
    batch runners must keep the wrapper so that every batched draw is counted
    one per scalar variate (Lemma 1 condition (ii)).  A RandomSource exposes
    the same ``uniform``/``laplace`` sampling signatures as a generator, so
    the handle is drop-in for direct draws too.
    """
    if isinstance(rng, RandomSource):
        return rng
    return ensure_rng(rng)


def _as_values(true_values: ArrayLike) -> np.ndarray:
    values = np.asarray(true_values, dtype=float)
    if values.ndim != 1:
        raise ValueError("true_values must be a one-dimensional vector")
    return values


def _check_trials(trials: int) -> int:
    trials = int(trials)
    if trials < 1:
        raise ValueError(f"trials must be at least 1, got {trials}")
    return trials


def _as_noise_matrix(noise, shape, name: str) -> np.ndarray:
    noise = np.asarray(noise, dtype=float)
    if noise.shape != shape:
        raise ValueError(f"explicit {name} must have shape {shape}, got {noise.shape}")
    return noise


def _as_thresholds(thresholds, default: float, trials: int) -> np.ndarray:
    if thresholds is None:
        return np.full(trials, float(default))
    thresholds = np.asarray(thresholds, dtype=float)
    if thresholds.ndim == 0:
        return np.full(trials, float(thresholds))
    if thresholds.shape != (trials,):
        raise ValueError(
            f"per-trial thresholds must have shape ({trials},), got {thresholds.shape}"
        )
    return thresholds


def _batch_top_indices(noisy: np.ndarray, m: int) -> np.ndarray:
    """Per-row indexes of the ``m`` largest entries, in descending order.

    Matches the reference ``np.argsort(row, kind="stable")[::-1][:m]``
    ordering exactly for the retained candidates: candidates are pre-sorted
    by ascending original index, so the stable value sort breaks ties the
    same way the full-vector sort does (higher index first after reversal).
    """
    n = noisy.shape[1]
    if m >= n:
        order = np.argsort(noisy, axis=1, kind="stable")[:, ::-1]
        return np.ascontiguousarray(order[:, :m])
    part = np.argpartition(noisy, n - m, axis=1)[:, n - m :]
    part = np.sort(part, axis=1)
    vals = np.take_along_axis(noisy, part, axis=1)
    order = np.argsort(vals, axis=1, kind="stable")[:, ::-1]
    return np.take_along_axis(part, order, axis=1)


def _pad_ragged(
    mask: np.ndarray, width: int, payload: Optional[np.ndarray] = None
) -> np.ndarray:
    """Pack the True positions of each row of ``mask`` into ``width`` columns.

    Returns a ``(B, width)`` matrix of column indexes right-padded with
    ``-1``, or -- when ``payload`` is given -- the payload values at those
    positions right-padded with ``NaN``.
    """
    trials = mask.shape[0]
    rows, cols = np.nonzero(mask)
    # np.nonzero walks the mask in row-major order, so the within-row rank of
    # each hit is its running position minus the row's starting offset --
    # O(hits) instead of a full (B, n) cumsum.
    row_counts = np.count_nonzero(mask, axis=1)
    starts = np.concatenate([[0], np.cumsum(row_counts[:-1])])
    rank = np.arange(rows.size) - starts[rows]
    if payload is None:
        packed = np.full((trials, width), -1, dtype=np.int64)
        packed[rows, rank] = cols
    else:
        packed = np.full((trials, width), np.nan)
        packed[rows, rank] = payload[rows, cols]
    return packed


def batch_pick_thresholds(
    counts: ArrayLike,
    k: int,
    trials: int,
    rng: RngLike = None,
    low_multiple: int = 2,
    high_multiple: int = 8,
) -> np.ndarray:
    """Draw one per-trial threshold between the top-2k-th and top-8k-th counts.

    The vectorized counterpart of
    :func:`repro.evaluation.harness.pick_threshold`: one uniform draw per
    trial from the same range, in one generator call.
    """
    trials = _check_trials(trials)
    counts = np.sort(np.asarray(counts, dtype=float))[::-1]
    generator = _rng_handle(rng)
    lo_rank = min(low_multiple * k, counts.size) - 1
    hi_rank = min(high_multiple * k, counts.size) - 1
    if hi_rank <= lo_rank:
        return np.full(trials, float(counts[lo_rank]))
    return generator.uniform(counts[hi_rank], counts[lo_rank], trials)


# ---------------------------------------------------------------------------
# mechanism-level batch runners
# ---------------------------------------------------------------------------


def batch_noisy_top_k(
    mechanism: NoisyTopK,
    true_values: ArrayLike,
    trials: int,
    rng: RngLike = None,
    noise: Optional[np.ndarray] = None,
    fast_noise: bool = True,
) -> BatchResult:
    """Run ``trials`` independent executions of (with-gap) Noisy Top-K.

    Parameters
    ----------
    mechanism:
        A configured :class:`~repro.mechanisms.noisy_max.NoisyTopK` or
        :class:`~repro.core.noisy_top_k.NoisyTopKWithGap`; supplies the noise
        scale, ``k`` and the accounting.
    true_values:
        Exact query answers (shared by all trials).
    trials:
        Number of independent trials ``B``.
    rng:
        Seed or generator.  Row ``b`` of the single ``(B, n)`` Laplace draw
        is bit-identical to what trial ``b`` of a sequential per-trial loop
        would have drawn from the same generator state.
    noise:
        Optional explicit ``(B, n)`` noise matrix used to replay executions.
    """
    values = _as_values(true_values)
    trials = _check_trials(trials)
    n = values.size
    k = mechanism.k
    releases_gaps = bool(mechanism.releases_gaps)
    need = k + 1 if releases_gaps else k
    if n < need:
        raise ValueError(f"need at least {need} queries for k={k}, got {n}")

    if noise is None:
        noise = LaplaceNoise(mechanism.scale).sample_batch(
            (trials, n), rng=rng, fast=fast_noise
        )
        # The engine owns this buffer, so the noisy values can be formed
        # in place instead of allocating a second (B, n) matrix.
        noisy = np.add(noise, values[None, :], out=noise)
    else:
        noise = _as_noise_matrix(noise, (trials, n), "noise")
        noisy = values[None, :] + noise
    top = _batch_top_indices(noisy, min(need, n))
    winners = np.ascontiguousarray(top[:, :k])
    if releases_gaps:
        top_vals = np.take_along_axis(noisy, top, axis=1)
        gaps = top_vals[:, :k] - top_vals[:, 1 : k + 1]
    else:
        gaps = np.zeros((trials, 0))

    return BatchResult(
        mechanism=mechanism.name,
        epsilon=mechanism.epsilon,
        epsilon_spent=np.full(trials, mechanism.epsilon),
        indices=winners,
        gaps=gaps,
        monotonic=mechanism.monotonic,
        extra={"k": float(k), "scale": mechanism.scale},
    )


def batch_sparse_vector(
    mechanism: SparseVector,
    true_values: ArrayLike,
    trials: int,
    thresholds: Optional[ArrayLike] = None,
    rng: RngLike = None,
    threshold_noise: Optional[np.ndarray] = None,
    query_noise: Optional[np.ndarray] = None,
    fast_noise: bool = True,
) -> BatchResult:
    """Run ``trials`` independent (with-gap) Sparse Vector executions.

    The sequential "stop after ``k`` above-threshold answers" semantics are
    emulated without a Python loop: the above/below decision of every stream
    position is computed for all trials at once, the per-trial stopping point
    is the position of the ``k``-th above-threshold decision (found with a
    cumulative count), and all outputs are masked to the stopping prefix.

    Parameters
    ----------
    mechanism:
        A configured :class:`~repro.mechanisms.sparse_vector.SparseVector` or
        :class:`~repro.mechanisms.sparse_vector.SparseVectorWithGap`.
    true_values:
        Exact query answers, in stream order (shared by all trials).
    trials:
        Number of independent trials ``B``.
    thresholds:
        Optional per-trial public thresholds ``(B,)`` (the harness re-draws
        the threshold every trial); defaults to ``mechanism.threshold``.
    rng:
        Seed or generator.
    threshold_noise, query_noise:
        Optional explicit ``(B,)`` / ``(B, n)`` noise used to replay
        executions against the per-trial reference.
    """
    values = _as_values(true_values)
    trials = _check_trials(trials)
    n = values.size
    k = mechanism.k
    generator = _rng_handle(rng)
    thresholds = _as_thresholds(thresholds, mechanism.threshold, trials)

    if threshold_noise is None:
        threshold_noise = LaplaceNoise(mechanism.threshold_scale).sample_batch(
            (trials,), rng=generator, fast=fast_noise
        )
    else:
        threshold_noise = _as_noise_matrix(threshold_noise, (trials,), "threshold_noise")
    if query_noise is not None:
        query_noise = _as_noise_matrix(query_noise, (trials, n), "query_noise")

    noisy_threshold = thresholds + threshold_noise

    # Blockwise stream scan with early termination and active-row
    # compaction: decisions for a column block are evaluated only for the
    # trials that are still running, and scanning stops as soon as every
    # trial has produced its k-th above-threshold answer.  This is the
    # data-skipping move that keeps the batch path fast even when the
    # per-trial loop would stop after a short prefix.
    above_raw = np.zeros((trials, n), dtype=bool)
    # The released-gap buffer is only needed by the with-gap variant.
    gap = np.empty((trials, n)) if mechanism.releases_gaps else None
    processed = np.full(trials, n, dtype=np.int64)
    answered_so_far = np.zeros(trials, dtype=np.int64)
    # Running budget, accumulated sequentially (cumsum seeded with the
    # running total) so it reproduces the reference's `spent +=` bit-for-bit.
    spent = np.full(trials, mechanism.epsilon_threshold)
    query_dist = LaplaceNoise(mechanism.query_scale)
    act = np.arange(trials)
    start = 0
    while start < n and act.size:
        stop_col = min(n, start + _SCAN_BLOCK)
        if query_noise is None:
            noise_block = query_dist.sample_batch(
                (act.size, stop_col - start), rng=generator, fast=fast_noise
            )
        else:
            noise_block = query_noise[act, start:stop_col]
        # Same association order as the reference: (value + noise) - threshold.
        gap_block = (
            values[None, start:stop_col] + noise_block
        ) - noisy_threshold[act, None]
        above_block = gap_block >= 0.0
        if gap is not None:
            gap[act, start:stop_col] = gap_block
        above_raw[act, start:stop_col] = above_block

        cum_cost = np.cumsum(
            np.concatenate(
                [
                    spent[act, None],
                    np.where(above_block, mechanism.epsilon_per_query, 0.0),
                ],
                axis=1,
            ),
            axis=1,
        )
        cum_answered = answered_so_far[act, None] + np.cumsum(above_block, axis=1)
        reached = cum_answered >= k
        done = reached[:, -1]
        local_stop = np.argmax(reached, axis=1)
        processed[act[done]] = start + local_stop[done] + 1
        # Trials stopping in this block take the budget at their stop column;
        # still-running trials take the running total.
        spent[act] = np.where(
            done, cum_cost[np.arange(act.size), local_stop + 1], cum_cost[:, -1]
        )
        answered_so_far[act] = cum_answered[:, -1]
        act = act[~done]
        start = stop_col

    valid = np.arange(n)[None, :] < processed[:, None]
    above = above_raw & valid
    epsilon_spent = np.minimum(spent, mechanism.epsilon)

    indices = _pad_ragged(above, k)
    if mechanism.releases_gaps:
        gaps = _pad_ragged(above, k, payload=gap)
    else:
        gaps = np.zeros((trials, 0))

    branches = np.where(above, BatchResult.BRANCH_MIDDLE, BatchResult.BRANCH_BOTTOM)
    return BatchResult(
        mechanism=mechanism.name,
        epsilon=mechanism.epsilon,
        epsilon_spent=epsilon_spent,
        indices=indices,
        gaps=gaps,
        above=above,
        branches=branches.astype(np.int8),
        processed=processed,
        monotonic=mechanism.monotonic,
        extra={
            "k": float(k),
            "epsilon_threshold": mechanism.epsilon_threshold,
            "epsilon_per_query": mechanism.epsilon_per_query,
        },
    )


def batch_adaptive_svt(
    mechanism: AdaptiveSparseVectorWithGap,
    true_values: ArrayLike,
    trials: int,
    thresholds: Optional[ArrayLike] = None,
    rng: RngLike = None,
    threshold_noise: Optional[np.ndarray] = None,
    top_noise: Optional[np.ndarray] = None,
    middle_noise: Optional[np.ndarray] = None,
    fast_noise: bool = True,
) -> BatchResult:
    """Run ``trials`` independent Adaptive-Sparse-Vector-with-Gap executions.

    Branch decisions (top / middle / bottom) are evaluated for every stream
    position of every trial at once; the Algorithm 2 line 16 budget guard and
    the optional ``max_answers`` cap are emulated with cumulative-cost /
    cumulative-count masking, and consumed budgets are accumulated with
    ``cumsum`` so they match the reference odometer bit-for-bit.
    """
    values = _as_values(true_values)
    trials = _check_trials(trials)
    n = values.size
    cfg = mechanism.config
    generator = _rng_handle(rng)
    thresholds = _as_thresholds(thresholds, mechanism.threshold, trials)

    if threshold_noise is None:
        threshold_noise = LaplaceNoise(cfg.threshold_scale).sample_batch(
            (trials,), rng=generator, fast=fast_noise
        )
    else:
        threshold_noise = _as_noise_matrix(threshold_noise, (trials,), "threshold_noise")
    if top_noise is not None:
        top_noise = _as_noise_matrix(top_noise, (trials, n), "top_noise")
    if middle_noise is not None:
        middle_noise = _as_noise_matrix(middle_noise, (trials, n), "middle_noise")

    noisy_threshold = thresholds + threshold_noise
    guard = mechanism.epsilon - cfg.epsilon_middle + 1e-12

    # Blockwise stream scan with early termination and active-row compaction
    # (see batch_sparse_vector): branch decisions for a column block are
    # evaluated only for still-running trials; the Algorithm 2 line 16
    # budget guard and the max_answers cap are checked per column via running
    # cumulative cost / count.
    top_above_raw = np.zeros((trials, n), dtype=bool)
    middle_above_raw = np.zeros((trials, n), dtype=bool)
    gap = np.empty((trials, n))
    processed = np.full(trials, n, dtype=np.int64)
    answered_so_far = np.zeros(trials, dtype=np.int64)
    spent = np.full(trials, cfg.epsilon_threshold)
    top_dist = LaplaceNoise(cfg.top_scale)
    middle_dist = LaplaceNoise(cfg.middle_scale)
    act = np.arange(trials)
    start = 0
    while start < n and act.size:
        stop_col = min(n, start + _SCAN_BLOCK)
        width_blk = stop_col - start
        if top_noise is None:
            top_block = top_dist.sample_batch(
                (act.size, width_blk), rng=generator, fast=fast_noise
            )
        else:
            top_block = top_noise[act, start:stop_col]
        if middle_noise is None:
            middle_block = middle_dist.sample_batch(
                (act.size, width_blk), rng=generator, fast=fast_noise
            )
        else:
            middle_block = middle_noise[act, start:stop_col]

        top_gap_blk = (
            values[None, start:stop_col] + top_block
        ) - noisy_threshold[act, None]
        middle_gap_blk = (
            values[None, start:stop_col] + middle_block
        ) - noisy_threshold[act, None]
        top_blk = top_gap_blk >= cfg.sigma
        middle_blk = ~top_blk & (middle_gap_blk >= 0.0)
        top_above_raw[act, start:stop_col] = top_blk
        middle_above_raw[act, start:stop_col] = middle_blk
        gap[act, start:stop_col] = np.where(top_blk, top_gap_blk, middle_gap_blk)

        cost_blk = np.where(
            top_blk, cfg.epsilon_top, np.where(middle_blk, cfg.epsilon_middle, 0.0)
        )
        # cumsum seeded with the running total reproduces the reference
        # odometer's sequential addition bit-for-bit.
        cum_cost = np.cumsum(
            np.concatenate([spent[act, None], cost_blk], axis=1), axis=1
        )
        cum_answered = answered_so_far[act, None] + np.cumsum(
            top_blk | middle_blk, axis=1
        )
        stop_flag = cum_cost[:, 1:] > guard
        if mechanism.max_answers is not None:
            stop_flag |= cum_answered >= mechanism.max_answers
        done = stop_flag.any(axis=1)
        local_stop = np.argmax(stop_flag, axis=1)
        processed[act[done]] = start + local_stop[done] + 1
        spent[act] = np.where(
            done, cum_cost[np.arange(act.size), local_stop + 1], cum_cost[:, -1]
        )
        answered_so_far[act] = cum_answered[:, -1]
        act = act[~done]
        start = stop_col

    valid = np.arange(n)[None, :] < processed[:, None]
    top_above = top_above_raw & valid
    middle_above = middle_above_raw & valid
    above = top_above | middle_above
    epsilon_spent = spent

    answered = np.count_nonzero(above, axis=1)
    width = int(answered.max()) if trials else 0
    indices = _pad_ragged(above, width)
    gaps = _pad_ragged(above, width, payload=gap)

    branches = np.full((trials, n), BatchResult.BRANCH_BOTTOM, dtype=np.int8)
    branches[middle_above] = BatchResult.BRANCH_MIDDLE
    branches[top_above] = BatchResult.BRANCH_TOP

    return BatchResult(
        mechanism=mechanism.name,
        epsilon=mechanism.epsilon,
        epsilon_spent=epsilon_spent,
        indices=indices,
        gaps=gaps,
        above=above,
        branches=branches,
        processed=processed,
        monotonic=mechanism.monotonic,
        extra={
            "k": float(mechanism.k),
            "epsilon_threshold": cfg.epsilon_threshold,
            "epsilon_middle": cfg.epsilon_middle,
            "epsilon_top": cfg.epsilon_top,
            "sigma": cfg.sigma,
        },
    )


# ---------------------------------------------------------------------------
# selection-then-measure protocols (the Section 7.2 drivers, batched)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchSelectThenMeasure:
    """Per-trial arrays of a batched selection-then-measure experiment.

    Attributes
    ----------
    indices:
        ``(B, k)`` selected query indexes (``-1``-padded for the SVT family).
    true_values, measurements, fused:
        ``(B, k)`` matrices aligned with ``indices`` (padding positions hold
        unspecified values -- use :attr:`mask`).
    gaps:
        The free gaps released by the selection step, aligned with
        ``indices``.
    mask:
        ``(B, k)`` validity mask (``None`` means every position is valid).
    total_epsilon:
        Overall budget per trial (selection plus measurement).
    epsilon_spent:
        ``(B,)`` budget actually consumed per trial.
    """

    indices: np.ndarray
    true_values: np.ndarray
    measurements: np.ndarray
    fused: np.ndarray
    gaps: np.ndarray
    mask: Optional[np.ndarray]
    total_epsilon: float
    epsilon_spent: np.ndarray

    @property
    def trials(self) -> int:
        """Number of trials in the batch."""
        return int(self.indices.shape[0])

    def baseline_squared_errors(self) -> np.ndarray:
        """Flat vector of squared errors of the direct measurements."""
        errors = (self.measurements - self.true_values) ** 2
        return errors[self.mask] if self.mask is not None else errors.ravel()

    def fused_squared_errors(self) -> np.ndarray:
        """Flat vector of squared errors of the gap-fused estimates."""
        errors = (self.fused - self.true_values) ** 2
        return errors[self.mask] if self.mask is not None else errors.ravel()


def batch_select_and_measure_top_k(
    true_values: ArrayLike,
    epsilon: float,
    k: int,
    trials: int,
    monotonic: bool = True,
    rng: RngLike = None,
) -> BatchSelectThenMeasure:
    """Batched Noisy-Top-K-with-Gap selection-then-measure (Section 5.2).

    The vectorized counterpart of
    :func:`repro.core.select_measure.select_and_measure_top_k`: half the
    budget funds a batched Noisy-Top-K-with-Gap selection, half funds one
    batched Laplace measurement of the selected queries, and the BLUE
    post-processing of Theorem 3 fuses the two, row by row.
    """
    values = _as_values(true_values)
    trials = _check_trials(trials)
    generator = _rng_handle(rng)
    half = epsilon / 2.0

    selector = NoisyTopKWithGap(epsilon=half, k=k, monotonic=monotonic)
    selection = batch_noisy_top_k(selector, values, trials, rng=generator)

    measurer = LaplaceMechanism(epsilon=half, l1_sensitivity=float(k))
    measurement_noise = LaplaceNoise(measurer.scale).sample_batch(
        (trials, k), rng=generator
    )
    selected_true = values[selection.indices]
    measurements = selected_true + measurement_noise

    lam = selector.gap_variance / 2.0 / measurer.variance
    fused = blue_top_k_estimate_batch(measurements, selection.gaps[:, : k - 1], lam=lam)

    return BatchSelectThenMeasure(
        indices=selection.indices,
        true_values=selected_true,
        measurements=measurements,
        fused=fused,
        gaps=selection.gaps,
        mask=None,
        total_epsilon=float(epsilon),
        epsilon_spent=np.full(trials, float(epsilon)),
    )


def batch_select_and_measure_svt(
    true_values: ArrayLike,
    epsilon: float,
    k: int,
    thresholds: ArrayLike,
    trials: int,
    monotonic: bool = True,
    adaptive: bool = False,
    rng: RngLike = None,
) -> BatchSelectThenMeasure:
    """Batched Sparse-Vector selection-then-measure (Section 6.2).

    The vectorized counterpart of
    :func:`repro.core.select_measure.select_and_measure_svt` over ``trials``
    independent trials with per-trial thresholds.  Trials that answered no
    queries carry an all-False row in :attr:`BatchSelectThenMeasure.mask`
    and contribute no error terms, exactly like the per-trial driver skips
    them.
    """
    values = _as_values(true_values)
    trials = _check_trials(trials)
    generator = _rng_handle(rng)
    half = epsilon / 2.0
    if thresholds is None:
        raise ValueError(
            "batch_select_and_measure_svt requires per-trial (or scalar) thresholds"
        )
    thresholds = _as_thresholds(thresholds, 0.0, trials)

    if adaptive:
        selector = AdaptiveSparseVectorWithGap(
            epsilon=half, threshold=0.0, k=k, monotonic=monotonic
        )
        run = batch_adaptive_svt(
            selector, values, trials, thresholds=thresholds, rng=generator
        )
        from repro.mechanisms.sparse_vector import SvtBranch

        var_top = selector.gap_variance(SvtBranch.TOP)
        var_middle = selector.gap_variance(SvtBranch.MIDDLE)
    else:
        selector = SparseVectorWithGap(
            epsilon=half, threshold=0.0, k=k, monotonic=monotonic
        )
        run = batch_sparse_vector(
            selector, values, trials, thresholds=thresholds, rng=generator
        )
        var_top = var_middle = selector.gap_variance

    mask = run.indices >= 0
    answered = np.count_nonzero(mask, axis=1)
    width = mask.shape[1]
    safe_idx = np.where(mask, run.indices, 0)
    selected_true = values[safe_idx]

    # Measurement: eps/2 split evenly over each trial's answered queries, so
    # the per-trial Laplace scale is answered / (eps/2).
    with np.errstate(divide="ignore", invalid="ignore"):
        scale = answered / half
    unit_noise = generator.laplace(0.0, 1.0, (trials, width)) if width else np.zeros(
        (trials, 0)
    )
    measurements = selected_true + unit_noise * scale[:, None]
    measurement_variance = 2.0 * scale**2

    # Gap-based estimates and their per-branch variances.
    gap_estimates = run.gaps + thresholds[:, None]
    if adaptive and run.branches is not None:
        rows = np.arange(trials)[:, None]
        padded_branch = np.where(
            mask, run.branches[rows, safe_idx], BatchResult.BRANCH_BOTTOM
        )
        gap_variances = np.where(
            padded_branch == BatchResult.BRANCH_TOP, var_top, var_middle
        )
    else:
        gap_variances = np.full((trials, width), var_middle)

    with np.errstate(divide="ignore", invalid="ignore"):
        w_gap = 1.0 / gap_variances
        w_meas = 1.0 / measurement_variance[:, None]
        fused = (w_meas * measurements + w_gap * gap_estimates) / (w_meas + w_gap)

    return BatchSelectThenMeasure(
        indices=run.indices,
        true_values=selected_true,
        measurements=measurements,
        fused=fused,
        gaps=run.gaps,
        mask=mask,
        total_epsilon=float(epsilon),
        # Trials that answered nothing perform no measurement release, so
        # only the selection budget is consumed (as in the per-trial driver).
        epsilon_spent=np.where(answered > 0, run.epsilon_spent + half, run.epsilon_spent),
    )


# ---------------------------------------------------------------------------
# the engine facade
# ---------------------------------------------------------------------------


class BatchExecutionEngine:
    """Runs ``B`` independent Monte-Carlo trials of a mechanism at once.

    A thin facade over the module-level batch runners that owns a generator,
    so repeated calls consume one RNG stream (like an interactive session).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.noisy_top_k import NoisyTopKWithGap
    >>> engine = BatchExecutionEngine(rng=0)
    >>> mech = NoisyTopKWithGap(epsilon=1.0, k=2, monotonic=True)
    >>> batch = engine.run(mech, np.array([100.0, 50.0, 10.0, 5.0]), trials=64)
    >>> batch.indices.shape
    (64, 2)
    """

    def __init__(self, rng: RngLike = None) -> None:
        self._generator = _rng_handle(rng)

    @property
    def generator(self) -> np.random.Generator:
        """The engine's underlying numpy generator."""
        return self._generator

    def run(self, mechanism, true_values: ArrayLike, trials: int, **kwargs) -> BatchResult:
        """Dispatch ``mechanism`` to the matching batch runner."""
        if isinstance(mechanism, AdaptiveSparseVectorWithGap):
            return batch_adaptive_svt(
                mechanism, true_values, trials, rng=self._generator, **kwargs
            )
        if isinstance(mechanism, SparseVector):
            return batch_sparse_vector(
                mechanism, true_values, trials, rng=self._generator, **kwargs
            )
        if isinstance(mechanism, NoisyTopK):
            return batch_noisy_top_k(
                mechanism, true_values, trials, rng=self._generator, **kwargs
            )
        raise TypeError(
            f"no batch runner for mechanism of type {type(mechanism).__name__}"
        )

    def select_and_measure_top_k(
        self, true_values: ArrayLike, epsilon: float, k: int, trials: int,
        monotonic: bool = True,
    ) -> BatchSelectThenMeasure:
        """Batched Section 5.2 selection-then-measure protocol."""
        return batch_select_and_measure_top_k(
            true_values, epsilon, k, trials, monotonic=monotonic, rng=self._generator
        )

    def select_and_measure_svt(
        self, true_values: ArrayLike, epsilon: float, k: int, thresholds: ArrayLike,
        trials: int, monotonic: bool = True, adaptive: bool = False,
    ) -> BatchSelectThenMeasure:
        """Batched Section 6.2 selection-then-measure protocol."""
        return batch_select_and_measure_svt(
            true_values, epsilon, k, thresholds, trials,
            monotonic=monotonic, adaptive=adaptive, rng=self._generator,
        )

    def pick_thresholds(
        self, counts: ArrayLike, k: int, trials: int,
        low_multiple: int = 2, high_multiple: int = 8,
    ) -> np.ndarray:
        """Per-trial thresholds from the paper's top-2k..top-8k policy."""
        return batch_pick_thresholds(
            counts, k, trials, rng=self._generator,
            low_multiple=low_multiple, high_multiple=high_multiple,
        )
