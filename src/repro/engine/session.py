"""Budget-tracked private analytics sessions over transaction databases.

Every question a session answers is expressed as a declarative mechanism
spec and executed through the :func:`repro.api.run` facade: live questions
run one trial on the ``reference`` engine (charging the session's budget
odometer through the facade), while the ``simulate_*`` what-ifs run many
trials on the vectorized ``batch`` engine without touching the budget or the
session's RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.accounting.budget import BudgetExceededError, BudgetOdometer
from repro.api.engines import Engine
from repro.api.facade import run as api_run
from repro.api.result import Result
from repro.api.specs import (
    AdaptiveSvtSpec,
    LaplaceSpec,
    NoisyTopKSpec,
    SelectMeasureSpec,
)
from repro.postprocess.confidence import gap_lower_confidence_bound
from repro.primitives.rng import RngLike, ensure_rng


@dataclass
class TopKAnswer:
    """Answer to a :meth:`PrivateAnalyticsSession.top_k_items` question.

    Attributes
    ----------
    items:
        The selected item identifiers, in descending (noisy) frequency order.
    gaps:
        The free consecutive gaps between the selected items' noisy counts.
    estimates:
        Estimated counts of the selected items.  Present only when
        ``measure=True`` was requested; fused with the gaps via the BLUE
        post-processing of Theorem 3.
    epsilon_charged:
        Total budget this question consumed.
    """

    items: List[int]
    gaps: np.ndarray
    estimates: Optional[np.ndarray]
    epsilon_charged: float


@dataclass
class AboveThresholdAnswer:
    """Answer to a :meth:`PrivateAnalyticsSession.items_above` question.

    Attributes
    ----------
    items:
        Item identifiers reported above the threshold, in stream order.
    estimates:
        Gap-based count estimates (gap + threshold) for each reported item.
    lower_bounds:
        Lower confidence bounds on the true counts (None if not requested).
    epsilon_charged:
        Budget actually consumed (the adaptive mechanism may use less than
        the amount reserved; only the consumed part is charged).
    """

    items: List[int]
    estimates: np.ndarray
    lower_bounds: Optional[np.ndarray]
    epsilon_charged: float


@dataclass
class SessionReport:
    """Summary of a session's privacy-budget usage.

    Attributes
    ----------
    total_epsilon:
        The session's overall budget.
    spent:
        Budget consumed so far.
    remaining:
        Budget still available.
    questions:
        Per-question records ``(label, epsilon_charged)`` in ask order.
    """

    total_epsilon: float
    spent: float
    remaining: float
    questions: List[Dict[str, float]] = field(default_factory=list)


class PrivateAnalyticsSession:
    """An interactive, budget-tracked analytics session on one database.

    Parameters
    ----------
    database:
        A :class:`~repro.datasets.transactions.TransactionDatabase` (or any
        object exposing ``unique_items()`` and ``item_counts(items)``).
    total_epsilon:
        The privacy budget available to the whole session.
    rng:
        Seed or generator used for all noise in the session.

    Examples
    --------
    >>> from repro.datasets.generators import generate_zipf_transactions
    >>> database = generate_zipf_transactions(500, 50, rng=0)
    >>> session = PrivateAnalyticsSession(database, total_epsilon=1.0, rng=0)
    >>> answer = session.top_k_items(k=3)
    >>> len(answer.items)
    3
    >>> session.remaining_epsilon < 1.0
    True
    """

    def __init__(self, database, total_epsilon: float, rng: RngLike = None) -> None:
        if total_epsilon <= 0:
            raise ValueError("total_epsilon must be positive")
        self._database = database
        self._odometer = BudgetOdometer(total_epsilon)
        self._generator = ensure_rng(rng)
        self._items: List[int] = list(database.unique_items())
        self._counts = np.asarray(database.item_counts(self._items), dtype=float)
        self._questions: List[Dict[str, float]] = []

    # -- budget state -----------------------------------------------------------

    @property
    def total_epsilon(self) -> float:
        """The session's overall privacy budget."""
        return self._odometer.total

    @property
    def spent_epsilon(self) -> float:
        """Budget consumed so far."""
        return self._odometer.spent

    @property
    def remaining_epsilon(self) -> float:
        """Budget still available for further questions."""
        return self._odometer.remaining

    def report(self) -> SessionReport:
        """A summary of the session's budget usage."""
        return SessionReport(
            total_epsilon=self.total_epsilon,
            spent=self.spent_epsilon,
            remaining=self.remaining_epsilon,
            questions=list(self._questions),
        )

    def _reserve(self, epsilon: float, label: str) -> None:
        if epsilon <= 0:
            raise ValueError("the budget for a question must be positive")
        if not self._odometer.can_charge(epsilon):
            raise BudgetExceededError(
                f"question '{label}' needs epsilon={epsilon:g} but only "
                f"{self.remaining_epsilon:g} of the session budget remains"
            )

    def _ask(self, spec, label: str) -> Result:
        """Execute one live question through the facade.

        The facade charges the session odometer with the budget the run
        actually consumed (labelled by spec kind); the session additionally
        records a per-question ledger entry under the question label.
        """
        result = api_run(
            spec,
            engine=Engine.REFERENCE,
            trials=1,
            rng=self._generator,
            budget=self._odometer,
        )
        charged = float(result.epsilon_consumed[0])
        self._questions.append({"label": label, "epsilon": charged})
        return result

    # -- questions --------------------------------------------------------------

    def top_k_items(
        self,
        k: int,
        epsilon: Optional[float] = None,
        measure: bool = False,
    ) -> TopKAnswer:
        """Identify the k most frequent items (optionally with count estimates).

        Parameters
        ----------
        k:
            Number of items to select.
        epsilon:
            Budget for this question; defaults to a quarter of the session's
            total budget.
        measure:
            If True, the budget is split in half between selection and
            Laplace measurements and the answer carries BLUE-fused count
            estimates (the Section 5.2 protocol); otherwise the full budget
            funds the selection alone.
        """
        if epsilon is None:
            epsilon = self.total_epsilon / 4.0
        label = f"top_{k}_items"
        self._reserve(epsilon, label)

        if measure:
            spec = SelectMeasureSpec(
                queries=self._counts,
                epsilon=epsilon,
                k=k,
                mechanism="top-k",
                monotonic=True,
            )
        else:
            spec = NoisyTopKSpec(
                queries=self._counts, epsilon=epsilon, k=k, monotonic=True, with_gap=True
            )
        result = self._ask(spec, label)

        items = [self._items[i] for i in result.trial_indices(0)]
        estimates = np.asarray(result.estimates[0]) if measure else None
        return TopKAnswer(
            items=items,
            gaps=np.asarray(result.gaps[0]),
            estimates=estimates,
            epsilon_charged=float(result.epsilon_consumed[0]),
        )

    def items_above(
        self,
        threshold: float,
        k: int,
        epsilon: Optional[float] = None,
        confidence: Optional[float] = None,
    ) -> AboveThresholdAnswer:
        """Find items whose counts are (likely) above a public threshold.

        Uses Adaptive-Sparse-Vector-with-Gap, so only the budget actually
        consumed is charged to the session -- queries far above the threshold
        cost half as much, and the saved budget remains available for later
        questions (the practical upshot of the paper's Figure 4).

        Parameters
        ----------
        threshold:
            Public count threshold.
        k:
            Minimum number of above-threshold answers the reserved budget
            must be able to fund.
        epsilon:
            Budget to *reserve* for this question; defaults to a quarter of
            the session's total.  Only the consumed part is charged.
        confidence:
            If given (e.g. 0.95), lower confidence bounds on the true counts
            are attached to the answer using Lemma 5.
        """
        if epsilon is None:
            epsilon = self.total_epsilon / 4.0
        label = f"items_above_{threshold:g}"
        self._reserve(epsilon, label)

        spec = AdaptiveSvtSpec(
            queries=self._counts,
            epsilon=epsilon,
            threshold=threshold,
            k=k,
            monotonic=True,
        )
        result = self._ask(spec, label)

        indices = result.trial_indices(0)
        gaps = result.trial_gaps(0)
        items = [self._items[i] for i in indices]
        estimates = gaps + threshold

        bounds: Optional[np.ndarray] = None
        if confidence is not None:
            branch_row = result.branches[0]
            bound_values = []
            for index, gap in zip(indices, gaps):
                eps_star = (
                    result.extra["epsilon_top"]
                    if branch_row[index] == Result.BRANCH_TOP
                    else result.extra["epsilon_middle"]
                )
                bound_values.append(
                    gap_lower_confidence_bound(
                        float(gap),
                        threshold,
                        eps0=result.extra["epsilon_threshold"],
                        eps_star=eps_star,
                        confidence=confidence,
                    )
                )
            bounds = np.asarray(bound_values)

        return AboveThresholdAnswer(
            items=items,
            estimates=np.asarray(estimates),
            lower_bounds=bounds,
            epsilon_charged=float(result.epsilon_consumed[0]),
        )

    # -- budget-free what-if simulation (batch engine) --------------------------

    def simulate_top_k_items(
        self,
        k: int,
        epsilon: Optional[float] = None,
        trials: int = 512,
        rng: RngLike = None,
    ) -> Dict[str, float]:
        """Predict the accuracy of a ``top_k_items(measure=True)`` question.

        Runs ``trials`` vectorized Monte-Carlo trials of the
        selection-then-measure protocol on the session's own counts via the
        facade's batch engine.  No privacy budget is consumed and the
        session's RNG stream is untouched (DP composition covers releases,
        not hypothetical computations kept inside the curator).

        Returns a dict with ``baseline_mse``, ``fused_mse``,
        ``improvement_percent`` and ``trials``.
        """
        if epsilon is None:
            epsilon = self.total_epsilon / 4.0
        spec = SelectMeasureSpec(
            queries=self._counts, epsilon=epsilon, k=k, mechanism="top-k", monotonic=True
        )
        batch = api_run(spec, engine=Engine.BATCH, trials=trials, rng=rng)
        baseline_mse = float(np.mean(batch.baseline_squared_errors()))
        fused_mse = float(np.mean(batch.fused_squared_errors()))
        return {
            "baseline_mse": baseline_mse,
            "fused_mse": fused_mse,
            "improvement_percent": 100.0 * (1.0 - fused_mse / baseline_mse),
            "trials": float(trials),
        }

    def simulate_items_above(
        self,
        threshold: float,
        k: int,
        epsilon: Optional[float] = None,
        trials: int = 512,
        rng: RngLike = None,
    ) -> Dict[str, float]:
        """Predict the behaviour of an ``items_above`` question.

        Vectorized Monte-Carlo preview of the adaptive mechanism on the
        session's counts: how many answers to expect, and how much of the
        reserved budget will actually be charged.  Consumes no budget and
        leaves the session's RNG stream untouched.

        Returns a dict with ``expected_answers``, ``expected_epsilon_spent``,
        ``expected_remaining_fraction`` and ``trials``.
        """
        if epsilon is None:
            epsilon = self.total_epsilon / 4.0
        spec = AdaptiveSvtSpec(
            queries=self._counts,
            epsilon=epsilon,
            threshold=threshold,
            k=k,
            monotonic=True,
        )
        batch = api_run(spec, engine=Engine.BATCH, trials=trials, rng=rng)
        return {
            "expected_answers": float(np.mean(batch.num_answered)),
            "expected_epsilon_spent": float(np.mean(batch.epsilon_consumed)),
            "expected_remaining_fraction": float(
                np.mean(batch.remaining_budget_fraction)
            ),
            "trials": float(trials),
        }

    def measure_items(
        self,
        items: Sequence[int],
        epsilon: Optional[float] = None,
    ) -> Dict[int, float]:
        """Release noisy counts for specific items via the Laplace mechanism.

        Parameters
        ----------
        items:
            Item identifiers to measure (must exist in the database's
            catalogue).
        epsilon:
            Budget for the measurement; defaults to a quarter of the
            session's total.
        """
        if not items:
            raise ValueError("at least one item must be requested")
        position_of = {item: i for i, item in enumerate(self._items)}
        missing = [item for item in items if item not in position_of]
        if missing:
            raise KeyError(f"items not present in the database: {missing}")
        if epsilon is None:
            epsilon = self.total_epsilon / 4.0
        label = f"measure_{len(items)}_items"
        self._reserve(epsilon, label)

        positions = [position_of[item] for item in items]
        spec = LaplaceSpec(
            queries=self._counts[positions],
            epsilon=epsilon,
            l1_sensitivity=float(len(items)),
        )
        result = self._ask(spec, label)
        return {
            item: float(value)
            for item, value in zip(items, result.measurements[0])
        }
