"""Budget-tracked private analytics sessions over transaction databases."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.accounting.budget import BudgetExceededError, BudgetOdometer
from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.core.noisy_top_k import NoisyTopKWithGap
from repro.engine.batch import (
    batch_adaptive_svt,
    batch_select_and_measure_top_k,
)
from repro.mechanisms.laplace_mechanism import LaplaceMechanism
from repro.mechanisms.sparse_vector import SvtBranch
from repro.postprocess.blue import blue_top_k_estimate
from repro.postprocess.confidence import gap_lower_confidence_bound
from repro.primitives.rng import RngLike, ensure_rng


@dataclass
class TopKAnswer:
    """Answer to a :meth:`PrivateAnalyticsSession.top_k_items` question.

    Attributes
    ----------
    items:
        The selected item identifiers, in descending (noisy) frequency order.
    gaps:
        The free consecutive gaps between the selected items' noisy counts.
    estimates:
        Estimated counts of the selected items.  Present only when
        ``measure=True`` was requested; fused with the gaps via the BLUE
        post-processing of Theorem 3.
    epsilon_charged:
        Total budget this question consumed.
    """

    items: List[int]
    gaps: np.ndarray
    estimates: Optional[np.ndarray]
    epsilon_charged: float


@dataclass
class AboveThresholdAnswer:
    """Answer to a :meth:`PrivateAnalyticsSession.items_above` question.

    Attributes
    ----------
    items:
        Item identifiers reported above the threshold, in stream order.
    estimates:
        Gap-based count estimates (gap + threshold) for each reported item.
    lower_bounds:
        Lower confidence bounds on the true counts (None if not requested).
    epsilon_charged:
        Budget actually consumed (the adaptive mechanism may use less than
        the amount reserved; only the consumed part is charged).
    """

    items: List[int]
    estimates: np.ndarray
    lower_bounds: Optional[np.ndarray]
    epsilon_charged: float


@dataclass
class SessionReport:
    """Summary of a session's privacy-budget usage.

    Attributes
    ----------
    total_epsilon:
        The session's overall budget.
    spent:
        Budget consumed so far.
    remaining:
        Budget still available.
    questions:
        Per-question records ``(label, epsilon_charged)`` in ask order.
    """

    total_epsilon: float
    spent: float
    remaining: float
    questions: List[Dict[str, float]] = field(default_factory=list)


class PrivateAnalyticsSession:
    """An interactive, budget-tracked analytics session on one database.

    Parameters
    ----------
    database:
        A :class:`~repro.datasets.transactions.TransactionDatabase` (or any
        object exposing ``unique_items()`` and ``item_counts(items)``).
    total_epsilon:
        The privacy budget available to the whole session.
    rng:
        Seed or generator used for all noise in the session.

    Examples
    --------
    >>> from repro.datasets.generators import generate_zipf_transactions
    >>> database = generate_zipf_transactions(500, 50, rng=0)
    >>> session = PrivateAnalyticsSession(database, total_epsilon=1.0, rng=0)
    >>> answer = session.top_k_items(k=3)
    >>> len(answer.items)
    3
    >>> session.remaining_epsilon < 1.0
    True
    """

    def __init__(self, database, total_epsilon: float, rng: RngLike = None) -> None:
        if total_epsilon <= 0:
            raise ValueError("total_epsilon must be positive")
        self._database = database
        self._odometer = BudgetOdometer(total_epsilon)
        self._generator = ensure_rng(rng)
        self._items: List[int] = list(database.unique_items())
        self._counts = np.asarray(database.item_counts(self._items), dtype=float)
        self._questions: List[Dict[str, float]] = []

    # -- budget state -----------------------------------------------------------

    @property
    def total_epsilon(self) -> float:
        """The session's overall privacy budget."""
        return self._odometer.total

    @property
    def spent_epsilon(self) -> float:
        """Budget consumed so far."""
        return self._odometer.spent

    @property
    def remaining_epsilon(self) -> float:
        """Budget still available for further questions."""
        return self._odometer.remaining

    def report(self) -> SessionReport:
        """A summary of the session's budget usage."""
        return SessionReport(
            total_epsilon=self.total_epsilon,
            spent=self.spent_epsilon,
            remaining=self.remaining_epsilon,
            questions=list(self._questions),
        )

    def _reserve(self, epsilon: float, label: str) -> None:
        if epsilon <= 0:
            raise ValueError("the budget for a question must be positive")
        if not self._odometer.can_charge(epsilon):
            raise BudgetExceededError(
                f"question '{label}' needs epsilon={epsilon:g} but only "
                f"{self.remaining_epsilon:g} of the session budget remains"
            )

    def _charge(self, epsilon: float, label: str) -> None:
        self._odometer.charge(epsilon, label=label)
        self._questions.append({"label": label, "epsilon": float(epsilon)})

    # -- questions --------------------------------------------------------------

    def top_k_items(
        self,
        k: int,
        epsilon: Optional[float] = None,
        measure: bool = False,
    ) -> TopKAnswer:
        """Identify the k most frequent items (optionally with count estimates).

        Parameters
        ----------
        k:
            Number of items to select.
        epsilon:
            Budget for this question; defaults to a quarter of the session's
            total budget.
        measure:
            If True, the budget is split in half between selection and
            Laplace measurements and the answer carries BLUE-fused count
            estimates (the Section 5.2 protocol); otherwise the full budget
            funds the selection alone.
        """
        if epsilon is None:
            epsilon = self.total_epsilon / 4.0
        label = f"top_{k}_items"
        self._reserve(epsilon, label)

        selection_epsilon = epsilon / 2.0 if measure else epsilon
        selector = NoisyTopKWithGap(epsilon=selection_epsilon, k=k, monotonic=True)
        selection = selector.select(self._counts, rng=self._generator)
        items = [self._items[i] for i in selection.indices]

        estimates = None
        if measure:
            measurer = LaplaceMechanism(epsilon=epsilon / 2.0, l1_sensitivity=float(k))
            measured = measurer.release(
                self._counts[selection.indices], rng=self._generator
            )
            lam = (2.0 * selector.scale**2) / measured.variance
            estimates = blue_top_k_estimate(
                measured.values, selection.gaps[: k - 1], lam=lam
            )

        self._charge(epsilon, label)
        return TopKAnswer(
            items=items,
            gaps=np.asarray(selection.gaps),
            estimates=estimates,
            epsilon_charged=epsilon,
        )

    def items_above(
        self,
        threshold: float,
        k: int,
        epsilon: Optional[float] = None,
        confidence: Optional[float] = None,
    ) -> AboveThresholdAnswer:
        """Find items whose counts are (likely) above a public threshold.

        Uses Adaptive-Sparse-Vector-with-Gap, so only the budget actually
        consumed is charged to the session -- queries far above the threshold
        cost half as much, and the saved budget remains available for later
        questions (the practical upshot of the paper's Figure 4).

        Parameters
        ----------
        threshold:
            Public count threshold.
        k:
            Minimum number of above-threshold answers the reserved budget
            must be able to fund.
        epsilon:
            Budget to *reserve* for this question; defaults to a quarter of
            the session's total.  Only the consumed part is charged.
        confidence:
            If given (e.g. 0.95), lower confidence bounds on the true counts
            are attached to the answer using Lemma 5.
        """
        if epsilon is None:
            epsilon = self.total_epsilon / 4.0
        label = f"items_above_{threshold:g}"
        self._reserve(epsilon, label)

        mechanism = AdaptiveSparseVectorWithGap(
            epsilon=epsilon, threshold=threshold, k=k, monotonic=True
        )
        result = mechanism.run(self._counts, rng=self._generator)

        items: List[int] = []
        estimates: List[float] = []
        bounds: List[float] = []
        for outcome in result.outcomes:
            if not outcome.above or outcome.gap is None:
                continue
            items.append(self._items[outcome.index])
            estimates.append(outcome.gap + threshold)
            if confidence is not None:
                eps_star = (
                    mechanism.epsilon_top
                    if outcome.branch is SvtBranch.TOP
                    else mechanism.epsilon_middle
                )
                bounds.append(
                    gap_lower_confidence_bound(
                        outcome.gap,
                        threshold,
                        eps0=mechanism.epsilon_threshold,
                        eps_star=eps_star,
                        confidence=confidence,
                    )
                )

        charged = float(result.metadata.epsilon_spent)
        self._charge(charged, label)
        return AboveThresholdAnswer(
            items=items,
            estimates=np.asarray(estimates),
            lower_bounds=np.asarray(bounds) if confidence is not None else None,
            epsilon_charged=charged,
        )

    # -- budget-free what-if simulation (batch engine) --------------------------

    def simulate_top_k_items(
        self,
        k: int,
        epsilon: Optional[float] = None,
        trials: int = 512,
        rng: RngLike = None,
    ) -> Dict[str, float]:
        """Predict the accuracy of a ``top_k_items(measure=True)`` question.

        Runs ``trials`` vectorized Monte-Carlo trials of the
        selection-then-measure protocol on the session's own counts via the
        batch execution engine.  No privacy budget is consumed and the
        session's RNG stream is untouched (DP composition covers releases,
        not hypothetical computations kept inside the curator).

        Returns a dict with ``baseline_mse``, ``fused_mse``,
        ``improvement_percent`` and ``trials``.
        """
        if epsilon is None:
            epsilon = self.total_epsilon / 4.0
        batch = batch_select_and_measure_top_k(
            self._counts, epsilon=epsilon, k=k, trials=trials,
            monotonic=True, rng=rng,
        )
        baseline_mse = float(np.mean(batch.baseline_squared_errors()))
        fused_mse = float(np.mean(batch.fused_squared_errors()))
        return {
            "baseline_mse": baseline_mse,
            "fused_mse": fused_mse,
            "improvement_percent": 100.0 * (1.0 - fused_mse / baseline_mse),
            "trials": float(trials),
        }

    def simulate_items_above(
        self,
        threshold: float,
        k: int,
        epsilon: Optional[float] = None,
        trials: int = 512,
        rng: RngLike = None,
    ) -> Dict[str, float]:
        """Predict the behaviour of an ``items_above`` question.

        Vectorized Monte-Carlo preview of the adaptive mechanism on the
        session's counts: how many answers to expect, and how much of the
        reserved budget will actually be charged.  Consumes no budget and
        leaves the session's RNG stream untouched.

        Returns a dict with ``expected_answers``, ``expected_epsilon_spent``,
        ``expected_remaining_fraction`` and ``trials``.
        """
        if epsilon is None:
            epsilon = self.total_epsilon / 4.0
        mechanism = AdaptiveSparseVectorWithGap(
            epsilon=epsilon, threshold=threshold, k=k, monotonic=True
        )
        batch = batch_adaptive_svt(mechanism, self._counts, trials, rng=rng)
        return {
            "expected_answers": float(np.mean(batch.num_answered)),
            "expected_epsilon_spent": float(np.mean(batch.epsilon_spent)),
            "expected_remaining_fraction": float(
                np.mean(batch.remaining_budget_fraction)
            ),
            "trials": float(trials),
        }

    def measure_items(
        self,
        items: Sequence[int],
        epsilon: Optional[float] = None,
    ) -> Dict[int, float]:
        """Release noisy counts for specific items via the Laplace mechanism.

        Parameters
        ----------
        items:
            Item identifiers to measure (must exist in the database's
            catalogue).
        epsilon:
            Budget for the measurement; defaults to a quarter of the
            session's total.
        """
        if not items:
            raise ValueError("at least one item must be requested")
        missing = [item for item in items if item not in set(self._items)]
        if missing:
            raise KeyError(f"items not present in the database: {missing}")
        if epsilon is None:
            epsilon = self.total_epsilon / 4.0
        label = f"measure_{len(items)}_items"
        self._reserve(epsilon, label)

        positions = [self._items.index(item) for item in items]
        mechanism = LaplaceMechanism(epsilon=epsilon, l1_sensitivity=float(len(items)))
        released = mechanism.release(self._counts[positions], rng=self._generator)
        self._charge(epsilon, label)
        return {item: float(value) for item, value in zip(items, released.values)}
