"""Experiment harness and metrics for reproducing the paper's evaluation.

* :mod:`~repro.evaluation.metrics` -- mean-squared-error improvement,
  precision/recall/F-measure of above-threshold selection, and remaining
  budget summaries.
* :mod:`~repro.evaluation.harness` -- Monte-Carlo experiment runners, one per
  paper figure family: the MSE-improvement experiments (Figures 1 and 2), the
  answer-count / precision / F-measure experiments (Figure 3) and the
  remaining-budget experiment (Figure 4).
* :mod:`~repro.evaluation.figures` -- text renderers that print each figure's
  data series in a table, used by the benchmark harness and EXPERIMENTS.md.
"""

from repro.evaluation.metrics import (
    f_measure,
    improvement_percentage,
    mean_squared_error,
    precision_recall,
)
from repro.evaluation.harness import (
    AdaptiveComparisonResult,
    MseImprovementResult,
    RemainingBudgetResult,
    run_adaptive_comparison,
    run_remaining_budget,
    run_svt_mse_improvement,
    run_top_k_mse_improvement,
)
from repro.evaluation.figures import (
    render_series_table,
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    dataset_statistics_table,
)
from repro.evaluation.reporting import (
    ExperimentRecord,
    compare_series,
    read_experiment_json,
    read_rows_csv,
    write_experiment_json,
    write_rows_csv,
)

__all__ = [
    "ExperimentRecord",
    "compare_series",
    "read_rows_csv",
    "write_rows_csv",
    "read_experiment_json",
    "write_experiment_json",
    "mean_squared_error",
    "improvement_percentage",
    "precision_recall",
    "f_measure",
    "MseImprovementResult",
    "AdaptiveComparisonResult",
    "RemainingBudgetResult",
    "run_top_k_mse_improvement",
    "run_svt_mse_improvement",
    "run_adaptive_comparison",
    "run_remaining_budget",
    "render_series_table",
    "figure1_data",
    "figure2_data",
    "figure3_data",
    "figure4_data",
    "dataset_statistics_table",
]
