"""Command-line experiment runner.

Regenerates the paper's figures from the terminal without going through the
pytest benchmark harness::

    python -m repro.evaluation.cli figure1 --dataset BMS-POS --trials 200
    python -m repro.evaluation.cli figure3 --dataset kosarak --epsilon 0.7
    python -m repro.evaluation.cli all --trials 50 --output results.txt

Each sub-command prints the same data-series tables that the corresponding
benchmark module emits (and that EXPERIMENTS.md records).

The ``run-spec`` sub-command executes an arbitrary serialized mechanism spec
(the JSON produced by ``MechanismSpec.to_dict``) through the unified
:func:`repro.api.run` facade::

    python -m repro.evaluation.cli run-spec spec.json --engine batch \\
        --trials 1000 --seed 0

making the CLI a thin consumer of the spec -> registry -> facade flow: any
mechanism registered in :mod:`repro.api` is runnable from a file with no
CLI changes.  ``--shards N`` fans the trial axis out over ``N`` worker
processes (bit-identical to fewer or more shards at the same seed), and
``--cache DIR`` serves repeated requests from a content-addressed on-disk
result cache::

    python -m repro.evaluation.cli run-spec spec.json --trials 100000 \\
        --seed 0 --shards 4 --cache ./results-cache
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.api import (
    ENGINE_NAMES,
    SpecValidationError,
    UnsupportedEngineError,
    run as api_run,
    spec_from_json,
)
from repro.evaluation.figures import (
    dataset_statistics_table,
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    render_series_table,
)
from repro.evaluation.plots import bar_chart, line_plot

DATASET_CHOICES = ("BMS-POS", "kosarak", "T40I10D100K")


def _emit(title: str, table: str, stream) -> None:
    stream.write(f"\n=== {title} ===\n{table}\n")


def _maybe_plot(args, stream, rows, x_column: str, y_columns) -> None:
    if getattr(args, "plot", False):
        stream.write(line_plot(rows, x_column, list(y_columns)) + "\n")


def _run_datasets(args, stream) -> None:
    rows = dataset_statistics_table(scale=args.scale, rng=args.seed)
    _emit("Section 7.1 dataset statistics", render_series_table(rows), stream)


def _run_figure1(args, stream) -> None:
    data = figure1_data(
        dataset=args.dataset,
        epsilon=args.epsilon,
        trials=args.trials,
        rng=args.seed,
    )
    _emit(
        f"Figure 1a: SVT-with-Gap with Measures, {args.dataset}, eps={args.epsilon}",
        render_series_table(data["svt"]),
        stream,
    )
    _maybe_plot(args, stream, data["svt"], "k", ["improvement_percent", "theoretical_percent"])
    _emit(
        f"Figure 1b: Noisy-Top-K-with-Gap with Measures, {args.dataset}, eps={args.epsilon}",
        render_series_table(data["top_k"]),
        stream,
    )
    _maybe_plot(args, stream, data["top_k"], "k", ["improvement_percent", "theoretical_percent"])


def _run_figure2(args, stream) -> None:
    data = figure2_data(
        dataset=args.dataset, k=args.k, trials=args.trials, rng=args.seed
    )
    _emit(
        f"Figure 2a: SVT-with-Gap with Measures, {args.dataset}, k={args.k}",
        render_series_table(data["svt"]),
        stream,
    )
    _maybe_plot(
        args, stream, data["svt"], "epsilon", ["improvement_percent", "theoretical_percent"]
    )
    _emit(
        f"Figure 2b: Noisy-Top-K-with-Gap with Measures, {args.dataset}, k={args.k}",
        render_series_table(data["top_k"]),
        stream,
    )
    _maybe_plot(
        args, stream, data["top_k"], "epsilon", ["improvement_percent", "theoretical_percent"]
    )


def _run_figure3(args, stream) -> None:
    rows = figure3_data(
        dataset=args.dataset,
        epsilon=args.epsilon,
        trials=args.trials,
        rng=args.seed,
    )
    _emit(
        f"Figure 3: SVT vs Adaptive SVT, {args.dataset}, eps={args.epsilon}",
        render_series_table(rows),
        stream,
    )


def _run_figure4(args, stream) -> None:
    rows = figure4_data(epsilon=args.epsilon, trials=args.trials, rng=args.seed)
    _emit(
        f"Figure 4: remaining budget after k adaptive answers, eps={args.epsilon}",
        render_series_table(rows),
        stream,
    )
    if getattr(args, "plot", False):
        labelled = [
            {"setting": f"{row['dataset']}@k={row['k']}", **row} for row in rows
        ]
        stream.write(
            bar_chart(labelled, "setting", "remaining_percent", title="remaining %")
            + "\n"
        )


def _run_all(args, stream) -> None:
    _run_datasets(args, stream)
    _run_figure1(args, stream)
    _run_figure2(args, stream)
    _run_figure3(args, stream)
    _run_figure4(args, stream)


def _run_run_spec(args, stream) -> None:
    """Load a spec JSON file and execute it through the facade."""
    with open(args.spec, "r", encoding="utf-8") as handle:
        spec = spec_from_json(handle.read())
    result = api_run(
        spec,
        engine=args.engine,
        trials=args.trials,
        rng=args.seed,
        shards=args.shards,
        cache=args.cache,
        chunk_trials=args.chunk_trials,
    )
    rows = [
        {
            "mechanism": result.mechanism,
            "engine": result.engine,
            "trials": result.trials,
            "epsilon": result.epsilon,
            "mean_answers": float(np.mean(result.num_answered)),
            "mean_epsilon_consumed": float(np.mean(result.epsilon_consumed)),
        }
    ]
    _emit(
        f"run-spec: {spec.kind} via {result.engine}",
        render_series_table(rows),
        stream,
    )
    first = result.trial_indices(0)
    stream.write(f"trial 0 answered indices: {first.tolist()}\n")
    gaps = result.trial_gaps(0)
    if gaps.size:
        stream.write(
            "trial 0 released gaps: "
            + ", ".join(f"{gap:.3f}" for gap in gaps)
            + "\n"
        )


_COMMANDS: Dict[str, Callable] = {
    "datasets": _run_datasets,
    "figure1": _run_figure1,
    "figure2": _run_figure2,
    "figure3": _run_figure3,
    "figure4": _run_figure4,
    "all": _run_all,
    "run-spec": _run_run_spec,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the experiment runner."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of the free-gap mechanisms paper.",
    )
    parser.add_argument(
        "command",
        choices=sorted(_COMMANDS),
        help="which experiment to run ('all' runs every figure; 'run-spec' "
        "executes a serialized mechanism spec through the repro.api facade)",
    )
    parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="path to a mechanism-spec JSON file (run-spec only)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=None,
        help="execution engine for run-spec (default: batch)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run-spec only: fan the trials out over this many worker "
        "processes (bit-identical to any other shard count at the same seed)",
    )
    parser.add_argument(
        "--cache",
        type=str,
        default=None,
        help="run-spec only: directory of a content-addressed result cache; "
        "a repeated (spec, engine, trials, seed) request is served from it",
    )
    parser.add_argument(
        "--chunk-trials",
        type=int,
        default=None,
        help="run-spec only: trials per dispatch chunk for sharded runs "
        "(part of the run's deterministic identity)",
    )
    parser.add_argument(
        "--dataset",
        choices=DATASET_CHOICES,
        default="BMS-POS",
        help="synthetic stand-in dataset to use (default: BMS-POS)",
    )
    parser.add_argument(
        "--epsilon", type=float, default=0.7, help="total privacy budget (default 0.7)"
    )
    parser.add_argument(
        "--k", type=int, default=10, help="k used by figure2 (default 10)"
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=100,
        help="Monte-Carlo trials per plotted point (default 100; the paper uses 10000)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale multiplier (default: each dataset's quick default)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render ASCII plots of the data series",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the tables to this file instead of stdout",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.evaluation.cli``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.trials < 1:
        parser.error("--trials must be at least 1")
    if args.epsilon <= 0:
        parser.error("--epsilon must be positive")
    if args.k < 1:
        parser.error("--k must be at least 1")
    if args.command == "run-spec" and args.spec is None:
        parser.error("run-spec requires a path to a spec JSON file")
    if args.command != "run-spec":
        if args.spec is not None:
            parser.error(f"command {args.command!r} takes no spec file argument")
        # Refuse rather than silently ignore: the figure runners always use
        # the in-process batch engine, no sharding, no cache.
        for flag in ("engine", "shards", "cache", "chunk_trials"):
            if getattr(args, flag) is not None:
                parser.error(
                    f"--{flag.replace('_', '-')} only applies to the run-spec command"
                )
    if args.engine is None:
        args.engine = "batch"
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be at least 1")
    if args.chunk_trials is not None and args.chunk_trials < 1:
        parser.error("--chunk-trials must be at least 1")

    runner = _COMMANDS[args.command]
    # One-line diagnosis, exit code 2, for anything the user can cause: a
    # missing/unreadable spec or output file (OSError covers
    # FileNotFoundError, IsADirectoryError, PermissionError), a malformed or
    # unknown spec payload (SpecValidationError), an engine without an
    # executor for the spec (UnsupportedEngineError).  ValueError is only
    # user-reachable through run-spec's facade arguments -- for the figure
    # commands it would mean an internal bug, whose traceback must survive.
    recoverable = (SpecValidationError, UnsupportedEngineError, OSError)
    if args.command == "run-spec":
        recoverable += (ValueError,)
    try:
        if args.output is None:
            runner(args, sys.stdout)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                runner(args, handle)
    except recoverable as exc:
        parser.exit(2, f"error: {exc}\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
