"""Command-line experiment runner.

Regenerates the paper's figures from the terminal without going through the
pytest benchmark harness::

    python -m repro.evaluation.cli figure1 --dataset BMS-POS --trials 200
    python -m repro.evaluation.cli figure3 --dataset kosarak --epsilon 0.7
    python -m repro.evaluation.cli all --trials 50 --output results.txt

Each sub-command prints the same data-series tables that the corresponding
benchmark module emits (and that EXPERIMENTS.md records).

The ``run-spec`` sub-command executes an arbitrary serialized mechanism spec
(the JSON produced by ``MechanismSpec.to_dict``) through the unified
:func:`repro.api.run` facade::

    python -m repro.evaluation.cli run-spec spec.json --engine batch \\
        --trials 1000 --seed 0

making the CLI a thin consumer of the spec -> registry -> facade flow: any
mechanism registered in :mod:`repro.api` is runnable from a file with no
CLI changes.  ``--shards N`` fans the trial axis out over ``N`` worker
processes (bit-identical to fewer or more shards at the same seed), and
``--cache DIR`` serves repeated requests from a content-addressed on-disk
result cache::

    python -m repro.evaluation.cli run-spec spec.json --trials 100000 \\
        --seed 0 --shards 4 --cache ./results-cache

The service sub-commands are the CLI face of the job-queue layer
(:mod:`repro.service`): ``submit`` enqueues a spec execution on a service
root and prints the job id, ``serve-worker`` runs the long-lived worker
loop against the same root (start as many as you want, on any machine
sharing the directory), ``job-status`` / ``job-result`` poll and fetch, and
``job-cancel`` stops a job::

    python -m repro.evaluation.cli submit spec.json --root ./svc \\
        --trials 100000 --seed 0 --tenant alice --priority 5
    python -m repro.evaluation.cli serve-worker --root ./svc &
    python -m repro.evaluation.cli job-status job-abc123 --root ./svc
    python -m repro.evaluation.cli job-result job-abc123 --root ./svc --wait 60
    python -m repro.evaluation.cli job-cancel job-abc123 --root ./svc

The tenancy verbs drive the control plane (:mod:`repro.tenancy`):
``tenant-budget`` grants (or shows) a tenant's epsilon budget on the root's
persistent ledger -- once granted, a submit whose worst case does not fit
the tenant's remaining budget is refused -- and ``metrics`` prints the
operator snapshot (queue depth per state, jobs per state, cache hit rate,
per-tenant budgets, worker counters)::

    python -m repro.evaluation.cli tenant-budget alice --root ./svc --grant 2.5
    python -m repro.evaluation.cli metrics --root ./svc

``serve-broker`` exposes the same control plane over HTTP (:mod:`repro.net`)
-- the daemon owns no state, the root stays the durable backend -- and every
client verb above accepts ``--url`` (plus ``--token`` when the daemon
enforces auth) in place of ``--root``, with identical semantics and
bit-identical results::

    python -m repro.evaluation.cli serve-broker --root ./svc --port 8035 \\
        --auth-file auth.json &
    python -m repro.evaluation.cli submit spec.json \\
        --url http://127.0.0.1:8035 --token alice-secret --trials 100000
    python -m repro.evaluation.cli job-result job-abc123 \\
        --url http://127.0.0.1:8035 --token alice-secret --wait 60

``chaos`` runs a seeded fault-injection soak (:mod:`repro.chaos`) against a
**fresh** root: real subprocess workers under a kill/restart schedule,
client threads submitting multi-tenant jobs through injected faults, then
the post-hoc contract checker over the surviving files.  Exit 0 iff every
invariant holds::

    python -m repro.evaluation.cli chaos --root ./chaos-root --seed 3

``lint`` runs the AST invariant linter (:mod:`repro.staticcheck`) over the
package tree: exit 0 when every finding is inline-suppressed or in the
committed baseline, exit 2 (after printing each finding with its fix hint)
otherwise.  ``--update-baseline`` rewrites the baseline from the current
findings; ``--list-rules`` prints the rule catalogue::

    python -m repro.evaluation.cli lint
    python -m repro.evaluation.cli lint --list-rules
    python -m repro.evaluation.cli lint path/to/package --update-baseline

``verify-privacy`` runs the static randomness-alignment verifier
(:mod:`repro.privcheck`) over the whole mechanism catalogue and prints the
per-mechanism verdict table: exit 0 when every verdict matches the
documented broken/correct status, exit 2 on any disagreement (a correct
mechanism losing its alignment proof, or a deliberately broken variant
passing)::

    python -m repro.evaluation.cli verify-privacy

``hunt`` is verify-privacy's dynamic twin (:mod:`repro.hunt`): it *runs*
every catalogued mechanism at scale -- all trials routed as jobs through
the service stack, against a local root (``--root``, drained by an
in-process worker pool) or a broker daemon (``--url``) -- searching for
empirical epsilon-DP violations over StatDP-style neighbouring input
pairs.  It prints the dynamic verdict table next to freshly computed
static verdicts: exit 0 when every statically refuted variant yields a
witness and every verified mechanism survives, exit 2 on any
disagreement::

    python -m repro.evaluation.cli hunt --root ./svc --seed 7
    python -m repro.evaluation.cli hunt --url http://127.0.0.1:8035 \\
        --token alice-secret --mechanisms svt-variant-6,svt-variant-1 \\
        --schedule 4000,16000
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.api import (
    ENGINE_NAMES,
    SpecValidationError,
    UnsupportedEngineError,
    run as api_run,
    spec_from_json,
)
from repro.evaluation.figures import (
    dataset_statistics_table,
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    render_series_table,
)
from repro.evaluation.plots import bar_chart, line_plot

DATASET_CHOICES = ("BMS-POS", "kosarak", "T40I10D100K")


def _emit(title: str, table: str, stream) -> None:
    stream.write(f"\n=== {title} ===\n{table}\n")


def _maybe_plot(args, stream, rows, x_column: str, y_columns) -> None:
    if getattr(args, "plot", False):
        stream.write(line_plot(rows, x_column, list(y_columns)) + "\n")


def _run_datasets(args, stream) -> None:
    rows = dataset_statistics_table(scale=args.scale, rng=args.seed)
    _emit("Section 7.1 dataset statistics", render_series_table(rows), stream)


def _run_figure1(args, stream) -> None:
    data = figure1_data(
        dataset=args.dataset,
        epsilon=args.epsilon,
        trials=args.trials,
        rng=args.seed,
    )
    _emit(
        f"Figure 1a: SVT-with-Gap with Measures, {args.dataset}, eps={args.epsilon}",
        render_series_table(data["svt"]),
        stream,
    )
    _maybe_plot(args, stream, data["svt"], "k", ["improvement_percent", "theoretical_percent"])
    _emit(
        f"Figure 1b: Noisy-Top-K-with-Gap with Measures, {args.dataset}, eps={args.epsilon}",
        render_series_table(data["top_k"]),
        stream,
    )
    _maybe_plot(args, stream, data["top_k"], "k", ["improvement_percent", "theoretical_percent"])


def _run_figure2(args, stream) -> None:
    data = figure2_data(
        dataset=args.dataset, k=args.k, trials=args.trials, rng=args.seed
    )
    _emit(
        f"Figure 2a: SVT-with-Gap with Measures, {args.dataset}, k={args.k}",
        render_series_table(data["svt"]),
        stream,
    )
    _maybe_plot(
        args, stream, data["svt"], "epsilon", ["improvement_percent", "theoretical_percent"]
    )
    _emit(
        f"Figure 2b: Noisy-Top-K-with-Gap with Measures, {args.dataset}, k={args.k}",
        render_series_table(data["top_k"]),
        stream,
    )
    _maybe_plot(
        args, stream, data["top_k"], "epsilon", ["improvement_percent", "theoretical_percent"]
    )


def _run_figure3(args, stream) -> None:
    rows = figure3_data(
        dataset=args.dataset,
        epsilon=args.epsilon,
        trials=args.trials,
        rng=args.seed,
    )
    _emit(
        f"Figure 3: SVT vs Adaptive SVT, {args.dataset}, eps={args.epsilon}",
        render_series_table(rows),
        stream,
    )


def _run_figure4(args, stream) -> None:
    rows = figure4_data(epsilon=args.epsilon, trials=args.trials, rng=args.seed)
    _emit(
        f"Figure 4: remaining budget after k adaptive answers, eps={args.epsilon}",
        render_series_table(rows),
        stream,
    )
    if getattr(args, "plot", False):
        labelled = [
            {"setting": f"{row['dataset']}@k={row['k']}", **row} for row in rows
        ]
        stream.write(
            bar_chart(labelled, "setting", "remaining_percent", title="remaining %")
            + "\n"
        )


def _run_all(args, stream) -> None:
    _run_datasets(args, stream)
    _run_figure1(args, stream)
    _run_figure2(args, stream)
    _run_figure3(args, stream)
    _run_figure4(args, stream)


def _load_spec_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        return spec_from_json(handle.read())


def _print_result(title: str, result, stream) -> None:
    """The uniform result report shared by run-spec and job-result."""
    rows = [
        {
            "mechanism": result.mechanism,
            "engine": result.engine,
            "trials": result.trials,
            "epsilon": result.epsilon,
            "mean_answers": float(np.mean(result.num_answered)),
            "mean_epsilon_consumed": float(np.mean(result.epsilon_consumed)),
        }
    ]
    _emit(title, render_series_table(rows), stream)
    first = result.trial_indices(0)
    stream.write(f"trial 0 answered indices: {first.tolist()}\n")
    gaps = result.trial_gaps(0)
    if gaps.size:
        stream.write(
            "trial 0 released gaps: "
            + ", ".join(f"{gap:.3f}" for gap in gaps)
            + "\n"
        )


def _run_run_spec(args, stream) -> None:
    """Load a spec JSON file and execute it through the facade."""
    spec = _load_spec_file(args.spec)
    result = api_run(
        spec,
        engine=args.engine,
        trials=args.trials,
        rng=args.seed,
        shards=args.shards,
        cache=args.cache,
        chunk_trials=args.chunk_trials,
    )
    _print_result(f"run-spec: {spec.kind} via {result.engine}", result, stream)


def _service_client(args):
    """The job client of the selected transport: --root (filesystem) or
    --url (HTTP, with an optional --token bearer credential)."""
    if args.url is not None:
        from repro.net import HttpJobClient

        return HttpJobClient(args.url, token=args.token)
    from repro.service import JobClient

    return JobClient(args.root)


def _run_submit(args, stream) -> None:
    """Submit a spec execution to a service root and print the job id."""
    from repro.tenancy.scheduler import DEFAULT_PRIORITY, DEFAULT_TENANT

    spec = _load_spec_file(args.spec)
    handle = _service_client(args).submit(
        spec,
        engine=args.engine,
        trials=args.trials,
        seed=args.seed,
        chunk_trials=args.chunk_trials,
        tenant=args.tenant if args.tenant is not None else DEFAULT_TENANT,
        priority=args.priority if args.priority is not None else DEFAULT_PRIORITY,
    )
    status = handle.status()
    stream.write(
        f"submitted {spec.kind} for {args.trials} trial(s) as "
        f"{status.total_tasks} task(s)\n"
    )
    stream.write(f"job id: {handle.job_id}\n")


def _run_job_status(args, stream) -> None:
    """Print one job's state and progress."""
    status = _service_client(args).status(args.spec)
    stream.write(
        f"job {status.job_id}: {status.state} "
        f"({status.done_tasks}/{status.total_tasks} tasks done)\n"
    )
    for index, error in sorted(status.failed_tasks.items()):
        stream.write(f"  chunk {index} failed: {error}\n")


def _run_job_result(args, stream) -> None:
    """Fetch (optionally waiting for) a job's merged result."""
    client = _service_client(args)
    result = client.result(args.spec, timeout=args.wait)
    # The filesystem client can name the submitted spec kind from the
    # manifest; over HTTP the result's own mechanism name is the label.
    kind = (
        result.mechanism
        if args.url is not None
        else client.broker.spec(args.spec).kind
    )
    _print_result(f"job-result: {kind} via {result.engine}", result, stream)


def _run_job_cancel(args, stream) -> None:
    """Cancel a job: drop its pending tasks and mark it cancelled."""
    status = _service_client(args).cancel(args.spec)
    stream.write(
        f"job {status.job_id}: {status.state} "
        f"({status.done_tasks}/{status.total_tasks} tasks done)\n"
    )


def _run_metrics(args, stream) -> None:
    """Print the operator metrics snapshot of a service root."""
    from repro.tenancy import collect_metrics, render_metrics

    if args.url is not None:
        snapshot = _service_client(args).metrics()
    else:
        snapshot = collect_metrics(args.root)
    stream.write(render_metrics(snapshot))


def _write_budget_line(stream, tenant, total, spent, charged, remaining) -> None:
    if total is None:
        stream.write(
            f"tenant {tenant}: unbounded (no budget granted); "
            f"epsilon charged so far: {charged:g}\n"
        )
    else:
        stream.write(
            f"tenant {tenant}: total epsilon {total:g}, "
            f"spent {spent:g}, remaining {remaining:g}\n"
        )


def _run_tenant_budget(args, stream) -> None:
    """Grant (--grant), manually refund (--refund) and report one tenant's
    epsilon budget."""
    if args.url is not None:
        view = _service_client(args).tenant_budget(
            args.spec, grant=args.grant, refund=args.refund
        )
        _write_budget_line(
            stream,
            args.spec,
            view["total"],
            view["spent"],
            view["charged"],
            view["remaining"],
        )
        return
    from repro.tenancy import BudgetLedger

    ledger = BudgetLedger(Path(args.root) / "tenants")
    if args.grant is not None:
        ledger.grant(args.spec, args.grant)
    if args.refund is not None:
        ledger.refund(args.spec, args.refund)
    _write_budget_line(
        stream,
        args.spec,
        ledger.total(args.spec),
        ledger.spent(args.spec),
        ledger.charged(args.spec),
        ledger.remaining(args.spec),
    )


def _run_serve_worker(args, stream) -> None:
    """Run the long-lived worker loop against a service root."""
    from repro.service import Worker

    worker = Worker(args.root)
    stream.write(f"worker {worker.worker_id} serving {args.root}\n")
    processed = worker.serve(max_tasks=args.max_tasks, idle_exit=args.idle_exit)
    stream.write(
        f"worker {worker.worker_id} exiting: {processed} task(s) processed, "
        f"{worker.cache_hits} cache hit(s), {worker.failures} failure(s)\n"
    )


def _run_serve_broker(args, stream) -> None:
    """Run the HTTP broker daemon against a service root."""
    from repro.net import DEFAULT_MAX_PENDING, serve_broker

    server = serve_broker(
        args.root,
        host=args.host if args.host is not None else "127.0.0.1",
        port=args.port if args.port is not None else 8035,
        auth_file=args.auth_file,
        max_pending=DEFAULT_MAX_PENDING
        if args.max_pending is None
        else args.max_pending,
        verbose=True,
    )
    # The URL line goes out (and is flushed) before serving starts, so a
    # supervising script can scrape the bound address -- essential with
    # --port 0 (ephemeral).
    stream.write(f"broker {server.url} serving {args.root}\n")
    stream.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()


def _run_chaos(args, stream) -> None:
    """Run one seeded chaos campaign against a fresh service root."""
    from repro.chaos import CampaignConfig, render_report, run_campaign
    from repro.service import ServiceError

    root = Path(args.root)
    if root.exists() and any(root.iterdir()):
        # A campaign kills workers and injects I/O faults into whatever
        # lives at the root -- never point it at a root holding real jobs.
        raise ServiceError(
            f"chaos requires a fresh root, but {args.root!r} is not empty"
        )
    report = run_campaign(root, CampaignConfig(seed=args.seed))
    stream.write(render_report(report))
    if not report.passed:
        raise ServiceError(
            f"chaos campaign seed={args.seed} failed its contract checks"
        )


def _run_lint(args, stream) -> None:
    """Run the AST invariant linter; exit 2 on non-baseline findings."""
    from repro.staticcheck import (
        StaticCheckError,
        default_package_root,
        format_findings,
        iter_rules,
        lint_package,
        write_baseline,
    )

    if args.list_rules:
        for rule in iter_rules():
            stream.write(f"{rule.name}\n    {rule.description}\n")
        return
    root = Path(args.spec) if args.spec is not None else default_package_root()
    if not root.is_dir():
        raise StaticCheckError(f"lint target {root} is not a directory")
    baseline_path = root / "staticcheck" / "baseline.json"
    report, new, accepted, stale = lint_package(
        package_root=root, baseline_path=baseline_path
    )
    if args.update_baseline:
        write_baseline(baseline_path, report.findings)
        stream.write(
            f"baseline updated: {len(report.findings)} accepted finding(s) "
            f"written to {baseline_path}\n"
        )
        return
    if new:
        stream.write(format_findings(new) + "\n")
    stream.write(
        f"lint: {report.files} file(s), {len(new)} new finding(s), "
        f"{len(accepted)} baselined, {len(report.suppressed)} suppressed\n"
    )
    for entry in stale:
        stream.write(
            f"warning: stale baseline entry {entry.get('rule')} at "
            f"{entry.get('path')} matches nothing (run --update-baseline)\n"
        )
    if new:
        raise StaticCheckError(
            f"{len(new)} new lint finding(s); fix them, suppress with "
            "'# repro-lint: disable=<rule> -- <why>', or re-baseline"
        )


def _run_verify_privacy(args, stream) -> None:
    """Static privacy verdicts for the catalogue; exit 2 on disagreement."""
    from repro.privcheck import (
        PrivacyVerdictError,
        render_verdict_table,
        verify_catalogue,
    )

    results = verify_catalogue()
    stream.write(render_verdict_table(results) + "\n")
    disagreements = [result for result in results if not result.agrees]
    verified = sum(1 for result in results if result.verdict.verified)
    stream.write(
        f"verify-privacy: {len(results)} mechanism(s), {verified} verified, "
        f"{len(results) - verified} refuted, "
        f"{len(disagreements)} disagreement(s) with the documented status\n"
    )
    if disagreements:
        labels = ", ".join(result.entry.label for result in disagreements)
        raise PrivacyVerdictError(
            f"static verdict disagrees with the documented status for: "
            f"{labels}"
        )


def _run_hunt(args, stream) -> None:
    """Dynamic DP-violation hunt via the job service; exit 2 on disagreement."""
    from repro.hunt import (
        HuntConfig,
        ServiceRunner,
        cross_check,
        hunt_catalogue,
        render_hunt_table,
        require_agreement,
        run_campaign,
    )

    entries = hunt_catalogue()
    if args.mechanisms is not None:
        by_label = {entry.label: entry for entry in entries}
        wanted = [label.strip() for label in args.mechanisms.split(",") if label.strip()]
        unknown = [label for label in wanted if label not in by_label]
        if unknown:
            raise ValueError(
                f"unknown mechanism(s) {', '.join(unknown)}; choose from "
                f"{', '.join(by_label)}"
            )
        if not wanted:
            raise ValueError("--mechanisms must name at least one mechanism")
        entries = tuple(by_label[label] for label in wanted)
    schedule = None
    if args.schedule is not None:
        try:
            schedule = tuple(
                int(part) for part in args.schedule.split(",") if part.strip()
            )
        except ValueError:
            raise ValueError(
                f"--schedule must be comma-separated trial counts, got "
                f"{args.schedule!r}"
            ) from None
        if not schedule or any(trials < 2 for trials in schedule):
            raise ValueError(
                "--schedule needs at least one round of at least 2 trials"
            )
    chunk_trials = (
        args.chunk_trials if args.chunk_trials is not None else HuntConfig().chunk_trials
    )
    config = HuntConfig(chunk_trials=chunk_trials, schedule_override=schedule)
    runner = ServiceRunner(
        root=args.root,
        url=args.url,
        token=args.token,
        workers=args.workers if args.workers is not None else 2,
        chunk_trials=chunk_trials,
    )

    def progress(message: str) -> None:
        stream.write(message + "\n")
        stream.flush()

    outcomes = run_campaign(
        runner, seed=args.seed, entries=entries, config=config, progress=progress
    )
    rows = cross_check(entries, outcomes)
    stream.write(render_hunt_table(rows) + "\n")
    violated = sum(1 for row in rows if row.dynamic.violated)
    trials = sum(row.dynamic.total_trials for row in rows)
    disagreements = sum(1 for row in rows if not row.agrees)
    stream.write(
        f"hunt: {len(rows)} mechanism(s), {violated} violated, "
        f"{len(rows) - violated} survived, {trials} trials total, "
        f"{disagreements} disagreement(s) with the static verdicts\n"
    )
    require_agreement(rows)


_COMMANDS: Dict[str, Callable] = {
    "datasets": _run_datasets,
    "figure1": _run_figure1,
    "figure2": _run_figure2,
    "figure3": _run_figure3,
    "figure4": _run_figure4,
    "all": _run_all,
    "run-spec": _run_run_spec,
    "submit": _run_submit,
    "job-status": _run_job_status,
    "job-result": _run_job_result,
    "job-cancel": _run_job_cancel,
    "serve-worker": _run_serve_worker,
    "serve-broker": _run_serve_broker,
    "metrics": _run_metrics,
    "tenant-budget": _run_tenant_budget,
    "chaos": _run_chaos,
    "lint": _run_lint,
    "verify-privacy": _run_verify_privacy,
    "hunt": _run_hunt,
}

#: Commands that operate on a job-queue service root (--root).
_SERVICE_COMMANDS = (
    "submit",
    "job-status",
    "job-result",
    "job-cancel",
    "serve-worker",
    "serve-broker",
    "metrics",
    "tenant-budget",
    "chaos",
    "hunt",
)
#: Service commands that can alternatively target a broker daemon (--url);
#: the daemons themselves (serve-worker, serve-broker) and chaos are bound
#: to a local root.
_URL_COMMANDS = (
    "submit",
    "job-status",
    "job-result",
    "job-cancel",
    "metrics",
    "tenant-budget",
    "hunt",
)
#: Commands whose positional argument is a spec JSON file.
_SPEC_FILE_COMMANDS = ("run-spec", "submit")
#: Commands whose positional argument is a job id.
_JOB_ID_COMMANDS = ("job-status", "job-result", "job-cancel")
#: Commands whose positional argument is a tenant name.
_TENANT_COMMANDS = ("tenant-budget",)
#: Commands whose positional argument is an optional directory path.
_PATH_COMMANDS = ("lint",)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the experiment runner."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of the free-gap mechanisms paper.",
    )
    parser.add_argument(
        "command",
        choices=sorted(_COMMANDS),
        help="which experiment to run ('all' runs every figure; 'run-spec' "
        "executes a serialized mechanism spec through the repro.api facade; "
        "'submit'/'serve-worker'/'job-status'/'job-result'/'job-cancel' "
        "drive the job-queue service layer; 'serve-broker' exposes a root "
        "over HTTP (clients then use --url); 'tenant-budget'/'metrics' "
        "drive the multi-tenant control plane; 'chaos' runs a seeded "
        "fault-injection soak against a fresh root; 'verify-privacy' "
        "prints the static alignment verdict table for the mechanism "
        "catalogue)",
    )
    parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        metavar="spec-or-job-id-or-tenant",
        help="path to a mechanism-spec JSON file (run-spec, submit), a "
        "job id (job-status, job-result, job-cancel), a tenant name "
        "(tenant-budget) or a package directory to lint (lint; default: "
        "the installed repro package)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=None,
        help="execution engine for run-spec / submit (default: batch)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run-spec only: fan the trials out over this many worker "
        "processes (bit-identical to any other shard count at the same seed)",
    )
    parser.add_argument(
        "--cache",
        type=str,
        default=None,
        help="run-spec only: directory of a content-addressed result cache; "
        "a repeated (spec, engine, trials, seed) request is served from it",
    )
    parser.add_argument(
        "--chunk-trials",
        type=int,
        default=None,
        help="run-spec / submit: trials per dispatch chunk "
        "(part of the run's deterministic identity)",
    )
    parser.add_argument(
        "--root",
        type=str,
        default=None,
        help="service commands: the job-queue service root directory "
        "(task queue + job manifests + shared result cache)",
    )
    parser.add_argument(
        "--url",
        type=str,
        default=None,
        help="service commands: target a broker daemon over HTTP instead of "
        "a local --root (e.g. http://127.0.0.1:8035); same semantics, same "
        "bit-identical results",
    )
    parser.add_argument(
        "--token",
        type=str,
        default=None,
        help="with --url: the bearer token sent on every request (required "
        "when the daemon was started with --auth-file)",
    )
    parser.add_argument(
        "--host",
        type=str,
        default=None,
        help="serve-broker only: interface to bind (default 127.0.0.1; "
        "0.0.0.0 exposes the daemon to the network)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve-broker only: TCP port to bind (default 8035; 0 picks an "
        "ephemeral port, printed on the first output line)",
    )
    parser.add_argument(
        "--auth-file",
        type=str,
        default=None,
        help="serve-broker only: JSON file of per-tenant bearer tokens, "
        "rate limits and concurrency caps (plus an optional admin_token); "
        "without it the daemon is open",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="serve-broker only: refuse submits with 429 while the queue "
        "holds this many pending tasks (default 10000)",
    )
    parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="serve-worker only: exit after processing this many tasks "
        "(default: serve until interrupted)",
    )
    parser.add_argument(
        "--idle-exit",
        action="store_true",
        help="serve-worker only: exit once the queue is fully drained "
        "instead of polling forever",
    )
    parser.add_argument(
        "--wait",
        type=float,
        default=None,
        help="job-result only: poll up to this many seconds for the job to "
        "finish (default: the job must already be done)",
    )
    parser.add_argument(
        "--tenant",
        type=str,
        default=None,
        help="submit only: the tenant the job runs (and is budgeted/"
        "fair-shared) under (default: 'default')",
    )
    parser.add_argument(
        "--priority",
        type=int,
        default=None,
        help="submit only: the job's scheduling class; bigger numbers are "
        "claimed strictly earlier (default: 0)",
    )
    parser.add_argument(
        "--grant",
        type=float,
        default=None,
        help="tenant-budget only: set the tenant's total epsilon budget "
        "on the service root's persistent ledger (absolute, not a delta; "
        "caps lifetime consumption, so epsilon already metered while the "
        "tenant ran unbudgeted counts against it)",
    )
    parser.add_argument(
        "--refund",
        type=float,
        default=None,
        help="tenant-budget only: manually return epsilon to the tenant "
        "(the operator repair for a reservation a crashed submit leaked)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="hunt only (--root mode): in-process workers draining each "
        "submission wave (default 2)",
    )
    parser.add_argument(
        "--mechanisms",
        type=str,
        default=None,
        help="hunt only: comma-separated catalogue labels to hunt "
        "(default: all nine)",
    )
    parser.add_argument(
        "--schedule",
        type=str,
        default=None,
        help="hunt only: comma-separated trials-per-side ladder overriding "
        "every mechanism's tuned schedule (e.g. 4000,16000)",
    )
    parser.add_argument(
        "--dataset",
        choices=DATASET_CHOICES,
        default="BMS-POS",
        help="synthetic stand-in dataset to use (default: BMS-POS)",
    )
    parser.add_argument(
        "--epsilon", type=float, default=0.7, help="total privacy budget (default 0.7)"
    )
    parser.add_argument(
        "--k", type=int, default=10, help="k used by figure2 (default 10)"
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=100,
        help="Monte-Carlo trials per plotted point (default 100; the paper uses 10000)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale multiplier (default: each dataset's quick default)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="lint only: accept the current findings as the new baseline "
        "(writes <package>/staticcheck/baseline.json)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="lint only: print the rule catalogue and exit",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render ASCII plots of the data series",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the tables to this file instead of stdout",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.evaluation.cli``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.trials < 1:
        parser.error("--trials must be at least 1")
    if args.epsilon <= 0:
        parser.error("--epsilon must be positive")
    if args.k < 1:
        parser.error("--k must be at least 1")
    if args.command in _SPEC_FILE_COMMANDS and args.spec is None:
        parser.error(f"{args.command} requires a path to a spec JSON file")
    if args.command in _JOB_ID_COMMANDS and args.spec is None:
        parser.error(f"{args.command} requires a job id")
    if args.command in _TENANT_COMMANDS and args.spec is None:
        parser.error(f"{args.command} requires a tenant name")
    if (
        args.command not in _SPEC_FILE_COMMANDS
        and args.command not in _JOB_ID_COMMANDS
        and args.command not in _TENANT_COMMANDS
        and args.command not in _PATH_COMMANDS
        and args.spec is not None
    ):
        parser.error(f"command {args.command!r} takes no spec file argument")
    # Refuse rather than silently ignore flags a command does not consume:
    # the figure runners always use the in-process batch engine, no
    # sharding, no cache, no service root.
    allowed = {
        "run-spec": {"engine", "shards", "cache", "chunk_trials"},
        "submit": {"engine", "chunk_trials", "root", "url", "token",
                   "tenant", "priority"},
        "job-status": {"root", "url", "token"},
        "job-result": {"root", "url", "token", "wait"},
        "job-cancel": {"root", "url", "token"},
        "serve-worker": {"root", "max_tasks"},
        "serve-broker": {"root", "host", "port", "auth_file", "max_pending"},
        "metrics": {"root", "url", "token"},
        "tenant-budget": {"root", "url", "token", "grant", "refund"},
        "chaos": {"root"},
        "hunt": {"root", "url", "token", "chunk_trials", "workers",
                 "mechanisms", "schedule"},
    }.get(args.command, set())
    for flag in ("engine", "shards", "cache", "chunk_trials", "root",
                 "url", "token", "host", "port", "auth_file", "max_pending",
                 "max_tasks", "wait", "tenant", "priority", "grant",
                 "refund", "workers", "mechanisms", "schedule"):
        if flag not in allowed and getattr(args, flag) is not None:
            parser.error(
                f"--{flag.replace('_', '-')} does not apply to the "
                f"{args.command} command"
            )
    if args.idle_exit and args.command != "serve-worker":
        parser.error("--idle-exit only applies to the serve-worker command")
    if args.update_baseline and args.command != "lint":
        parser.error("--update-baseline only applies to the lint command")
    if args.list_rules and args.command != "lint":
        parser.error("--list-rules only applies to the lint command")
    if args.command in _URL_COMMANDS:
        if (args.root is None) == (args.url is None):
            parser.error(
                f"{args.command} requires exactly one of --root (local "
                "service directory) or --url (broker daemon)"
            )
        if args.token is not None and args.url is None:
            parser.error("--token only applies together with --url")
    elif args.command in _SERVICE_COMMANDS and args.root is None:
        parser.error(f"{args.command} requires --root (the service directory)")
    if args.port is not None and not (0 <= args.port <= 65535):
        parser.error("--port must be between 0 and 65535")
    if args.max_pending is not None and args.max_pending < 1:
        parser.error("--max-pending must be at least 1")
    if args.engine is None:
        args.engine = "batch"
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be at least 1")
    if args.chunk_trials is not None and args.chunk_trials < 1:
        parser.error("--chunk-trials must be at least 1")
    if args.max_tasks is not None and args.max_tasks < 1:
        parser.error("--max-tasks must be at least 1")
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be at least 1")

    runner = _COMMANDS[args.command]
    # One-line diagnosis, exit code 2, for anything the user can cause: a
    # missing/unreadable spec or output file (OSError covers
    # FileNotFoundError, IsADirectoryError, PermissionError), a malformed or
    # unknown spec payload (SpecValidationError), an engine without an
    # executor for the spec (UnsupportedEngineError).  ValueError is only
    # user-reachable through run-spec's/submit's facade arguments and
    # through malformed job ids -- for the figure commands it would mean an
    # internal bug, whose traceback must survive.  Service commands
    # additionally surface ServiceError (unknown job id, failed job, result
    # not ready); job-result --wait timeouts raise TimeoutError, an OSError
    # subclass the base tuple already covers.
    recoverable = (SpecValidationError, UnsupportedEngineError, OSError)
    if args.command in _SPEC_FILE_COMMANDS or args.command in _JOB_ID_COMMANDS:
        recoverable += (ValueError,)
    if args.command in _SERVICE_COMMANDS:
        # Unknown job ids, failed jobs, not-ready results (ServiceError);
        # an over-budget submission refused at admission
        # (BudgetExceededError); bad tenant names or a wedged ledger lock
        # (LedgerError) -- all user-reachable, all one-line exit-2 errors.
        from repro.accounting.budget import BudgetExceededError
        from repro.service import ServiceError
        from repro.tenancy import LedgerError

        recoverable += (ServiceError, BudgetExceededError, LedgerError)
    if args.command in _URL_COMMANDS and args.url is not None:
        # Over HTTP every domain refusal the daemon can voice (400 bodies
        # become ValueError; auth/transport errors are ServiceError
        # subclasses, already covered) is a one-line exit-2 outcome too.
        recoverable += (ValueError,)
    if args.command == "lint":
        # New findings (after the report is printed) and unusable lint
        # targets are one-line exit-2 outcomes, not tracebacks.
        from repro.staticcheck import StaticCheckError

        recoverable += (StaticCheckError,)
    if args.command == "verify-privacy":
        # A verdict disagreeing with the documented status (after the
        # table is printed) is a one-line exit-2 outcome, not a traceback.
        from repro.privcheck import PrivacyVerdictError

        recoverable += (PrivacyVerdictError,)
    if args.command == "hunt":
        # A dynamic outcome contradicting its static verdict (after the
        # table is printed), or a bad --mechanisms/--schedule value
        # (ValueError) -- one-line exit-2 outcomes, not tracebacks.
        from repro.hunt import HuntDisagreementError

        recoverable += (HuntDisagreementError, ValueError)
    try:
        if args.output is None:
            runner(args, sys.stdout)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                runner(args, handle)
    except recoverable as exc:
        parser.exit(2, f"error: {exc}\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
