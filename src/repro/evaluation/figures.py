"""Figure/table regenerators.

Each ``figureN_data`` function sweeps the relevant parameter, runs the
Monte-Carlo harness, and returns a list of row dictionaries -- the same data
series the corresponding paper figure plots.  ``render_series_table`` turns
the rows into an aligned text table that the benchmark harness prints and
EXPERIMENTS.md records.  The numbers are produced by synthetic stand-in
datasets (see DESIGN.md, Substitutions), so the comparison with the paper is
about *shape* (who wins, trends in k and epsilon, where the curves plateau)
rather than exact values.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.datasets.generators import make_dataset
from repro.datasets.transactions import TransactionDatabase
from repro.evaluation.harness import (
    run_adaptive_comparison,
    run_remaining_budget,
    run_svt_mse_improvement,
    run_top_k_mse_improvement,
)
from repro.primitives.rng import RngLike, ensure_rng

Row = Dict[str, float]


def render_series_table(rows: Sequence[Dict], columns: Optional[List[str]] = None) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body: List[List[str]] = []
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append(f"{value:.3f}")
            else:
                rendered.append(str(value))
        body.append(rendered)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for rendered in body:
        lines.append("  ".join(rendered[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def _counts_for(dataset: Union[str, TransactionDatabase], rng: RngLike) -> np.ndarray:
    if isinstance(dataset, TransactionDatabase):
        return dataset.item_counts()
    return make_dataset(dataset, rng=rng).item_counts()


def dataset_statistics_table(
    names: Iterable[str] = ("BMS-POS", "kosarak", "T40I10D100K"),
    scale: Optional[float] = None,
    rng: RngLike = 0,
) -> List[Row]:
    """The Section 7.1 dataset-statistics table for the synthetic stand-ins."""
    generator = ensure_rng(rng)
    rows: List[Row] = []
    for name in names:
        database = make_dataset(name, scale=scale, rng=generator)
        stats = database.statistics()
        rows.append(
            {
                "dataset": name,
                "records": int(stats["num_records"]),
                "unique_items": int(stats["num_unique_items"]),
                "avg_length": stats["avg_transaction_length"],
            }
        )
    return rows


def figure1_data(
    dataset: Union[str, TransactionDatabase] = "BMS-POS",
    epsilon: float = 0.7,
    ks: Sequence[int] = (2, 5, 10, 15, 20, 25),
    trials: int = 100,
    rng: RngLike = 0,
) -> Dict[str, List[Row]]:
    """Figure 1: MSE improvement vs k at fixed epsilon (default 0.7).

    Returns two series: ``"svt"`` (Sparse-Vector-with-Gap with Measures,
    Figure 1a) and ``"top_k"`` (Noisy-Top-K-with-Gap with Measures,
    Figure 1b), each a list of rows with empirical and theoretical percent
    improvement.
    """
    generator = ensure_rng(rng)
    counts = _counts_for(dataset, generator)
    svt_rows: List[Row] = []
    top_k_rows: List[Row] = []
    for k in ks:
        svt = run_svt_mse_improvement(
            counts, epsilon=epsilon, k=k, trials=trials, rng=generator
        )
        svt_rows.append(
            {
                "k": k,
                "improvement_percent": svt.improvement_percent,
                "theoretical_percent": svt.theoretical_percent,
            }
        )
        top = run_top_k_mse_improvement(
            counts, epsilon=epsilon, k=k, trials=trials, rng=generator
        )
        top_k_rows.append(
            {
                "k": k,
                "improvement_percent": top.improvement_percent,
                "theoretical_percent": top.theoretical_percent,
            }
        )
    return {"svt": svt_rows, "top_k": top_k_rows}


def figure2_data(
    dataset: Union[str, TransactionDatabase] = "kosarak",
    k: int = 10,
    epsilons: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5),
    trials: int = 100,
    rng: RngLike = 0,
) -> Dict[str, List[Row]]:
    """Figure 2: MSE improvement vs epsilon at fixed k (default 10)."""
    generator = ensure_rng(rng)
    counts = _counts_for(dataset, generator)
    svt_rows: List[Row] = []
    top_k_rows: List[Row] = []
    for epsilon in epsilons:
        svt = run_svt_mse_improvement(
            counts, epsilon=epsilon, k=k, trials=trials, rng=generator
        )
        svt_rows.append(
            {
                "epsilon": epsilon,
                "improvement_percent": svt.improvement_percent,
                "theoretical_percent": svt.theoretical_percent,
            }
        )
        top = run_top_k_mse_improvement(
            counts, epsilon=epsilon, k=k, trials=trials, rng=generator
        )
        top_k_rows.append(
            {
                "epsilon": epsilon,
                "improvement_percent": top.improvement_percent,
                "theoretical_percent": top.theoretical_percent,
            }
        )
    return {"svt": svt_rows, "top_k": top_k_rows}


def figure3_data(
    dataset: Union[str, TransactionDatabase] = "BMS-POS",
    epsilon: float = 0.7,
    ks: Sequence[int] = (2, 6, 10, 14, 18, 22),
    trials: int = 50,
    rng: RngLike = 0,
) -> List[Row]:
    """Figure 3: answers / precision / F-measure, SVT vs Adaptive SVT."""
    generator = ensure_rng(rng)
    counts = _counts_for(dataset, generator)
    rows: List[Row] = []
    for k in ks:
        comparison = run_adaptive_comparison(
            counts, epsilon=epsilon, k=k, trials=trials, rng=generator
        )
        rows.append(
            {
                "k": k,
                "svt_answers": comparison.svt_answers,
                "adaptive_answers": comparison.adaptive_answers,
                "adaptive_top": comparison.adaptive_top_answers,
                "adaptive_middle": comparison.adaptive_middle_answers,
                "svt_precision": comparison.svt_precision,
                "adaptive_precision": comparison.adaptive_precision,
                "svt_f_measure": comparison.svt_f_measure,
                "adaptive_f_measure": comparison.adaptive_f_measure,
            }
        )
    return rows


def figure4_data(
    datasets: Iterable[Union[str, TransactionDatabase]] = (
        "BMS-POS",
        "kosarak",
        "T40I10D100K",
    ),
    epsilon: float = 0.7,
    ks: Sequence[int] = (5, 10, 15, 20, 25),
    trials: int = 50,
    rng: RngLike = 0,
) -> List[Row]:
    """Figure 4: remaining budget after k adaptive answers, per dataset."""
    generator = ensure_rng(rng)
    rows: List[Row] = []
    for dataset in datasets:
        counts = _counts_for(dataset, generator)
        label = dataset if isinstance(dataset, str) else dataset.name
        for k in ks:
            result = run_remaining_budget(
                counts, epsilon=epsilon, k=k, trials=trials, rng=generator
            )
            rows.append(
                {
                    "dataset": label,
                    "k": k,
                    "remaining_percent": result.remaining_percent,
                }
            )
    return rows
