"""Monte-Carlo experiment runners for the paper's evaluation.

Each runner corresponds to one family of figures:

* :func:`run_top_k_mse_improvement` and :func:`run_svt_mse_improvement` --
  the "gap information + postprocessing" experiments of Section 7.2
  (Figures 1 and 2): percent improvement in MSE of the gap-fused estimates
  over direct measurements.
* :func:`run_adaptive_comparison` -- the "benefits of adaptivity" experiments
  of Section 7.3 (Figures 3a-3f): number of above-threshold answers,
  branch breakdown, precision and F-measure of Sparse Vector vs
  Adaptive-Sparse-Vector-with-Gap.
* :func:`run_remaining_budget` -- Figure 4: the fraction of budget left when
  the adaptive mechanism is stopped after k answers.

Every runner takes the item-count vector of a transaction database (the only
part of the data the mechanisms consume), a threshold policy matching the
paper's (random threshold between the top-2k-th and top-8k-th counts), and a
seeded generator, and averages over a configurable number of Monte-Carlo
trials (the paper uses 10,000; the benchmarks default to fewer for speed and
note it in EXPERIMENTS.md).

All four runners are thin consumers of the unified mechanism API: they build
a declarative spec (:mod:`repro.api.specs`) and execute it through the
:func:`repro.api.run` facade, which dispatches to the vectorized batch
engine by default (``engine="batch"``) or to the per-trial reference
implementations (``engine="reference"`` -- bit-identical to the batch path
under a shared noise matrix, and kept as the ground truth the equivalence
tests compare against).  Either way the aggregation code below is a single
engine-agnostic path over the uniform :class:`~repro.api.result.Result`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.api.engines import validate_engine
from repro.api.facade import pick_thresholds as api_pick_thresholds
from repro.api.facade import run as api_run
from repro.api.result import Result
from repro.api.specs import AdaptiveSvtSpec, SelectMeasureSpec, SparseVectorSpec
from repro.evaluation.metrics import improvement_percentage
from repro.primitives.rng import RngLike, ensure_rng

ArrayLike = Union[Sequence[float], np.ndarray]


def _batch_precision_recall_f(
    reported: np.ndarray, actual: np.ndarray
) -> tuple:
    """Vectorized per-trial precision / recall / F-measure.

    ``reported`` and ``actual`` are ``(trials, n)`` boolean masks; the
    conventions match :func:`repro.evaluation.metrics.precision_recall`
    (precision 1 when nothing reported, recall 1 when nothing actual).
    """
    true_positives = np.count_nonzero(reported & actual, axis=1)
    reported_count = np.count_nonzero(reported, axis=1)
    actual_count = np.count_nonzero(actual, axis=1)
    precision = np.where(
        reported_count > 0, true_positives / np.maximum(reported_count, 1), 1.0
    )
    recall = np.where(
        actual_count > 0, true_positives / np.maximum(actual_count, 1), 1.0
    )
    total = precision + recall
    f = np.where(total > 0, 2.0 * precision * recall / np.maximum(total, 1e-300), 0.0)
    return precision, recall, f


def pick_threshold(
    counts: ArrayLike,
    k: int,
    rng: RngLike = None,
    low_multiple: int = 2,
    high_multiple: int = 8,
) -> float:
    """Pick a threshold between the top-``2k``-th and top-``8k``-th counts.

    This mirrors the paper's experimental protocol (Section 7.2): "the
    threshold is randomly picked from the top 2k to top 8k in each dataset
    for each run".  The per-trial vectorized counterpart is
    :func:`repro.api.pick_thresholds`.
    """
    counts = np.sort(np.asarray(counts, dtype=float))[::-1]
    generator = ensure_rng(rng)
    lo_rank = min(low_multiple * k, counts.size) - 1
    hi_rank = min(high_multiple * k, counts.size) - 1
    if hi_rank <= lo_rank:
        return float(counts[lo_rank])
    low_value = counts[hi_rank]
    high_value = counts[lo_rank]
    return float(generator.uniform(low_value, high_value))


@dataclass
class MseImprovementResult:
    """Aggregated MSE-improvement numbers for one parameter setting.

    Attributes
    ----------
    k, epsilon:
        Parameter setting.
    baseline_mse, fused_mse:
        Monte-Carlo means of the squared errors of the direct measurements
        and the gap-fused estimates.
    improvement_percent:
        ``100 * (1 - fused/baseline)`` -- the Figure 1/2 quantity.
    theoretical_percent:
        The closed-form expected improvement for this setting.
    trials:
        Number of Monte-Carlo trials aggregated.
    """

    k: int
    epsilon: float
    baseline_mse: float
    fused_mse: float
    improvement_percent: float
    theoretical_percent: float
    trials: int


def run_top_k_mse_improvement(
    counts: ArrayLike,
    epsilon: float,
    k: int,
    trials: int = 200,
    monotonic: bool = True,
    rng: RngLike = None,
    theoretical_percent: Optional[float] = None,
    engine: str = "batch",
) -> MseImprovementResult:
    """Figure 1b / 2b experiment: Noisy-Top-K-with-Gap with Measures.

    Parameters
    ----------
    counts:
        True item counts (the candidate query answers).
    epsilon:
        Total budget (selection + measurement).
    k:
        Number of queries to select and measure.
    trials:
        Monte-Carlo repetitions.
    monotonic:
        Counting queries are monotonic; the paper's plots use this setting.
    rng:
        Seed or generator.
    theoretical_percent:
        Override for the theoretical curve value (computed from Corollary 1
        when omitted).
    engine:
        ``"batch"`` (default) runs all trials as one vectorized batch;
        ``"reference"`` loops the per-trial reference implementations.
    """
    from repro.postprocess.theory import top_k_expected_improvement

    counts = np.asarray(counts, dtype=float)
    engine = validate_engine(engine)
    generator = ensure_rng(rng)
    spec = SelectMeasureSpec(
        queries=counts, epsilon=epsilon, k=k, mechanism="top-k", monotonic=monotonic
    )
    result = api_run(spec, engine=engine, trials=trials, rng=generator)
    baseline_mse = float(np.mean(result.baseline_squared_errors()))
    fused_mse = float(np.mean(result.fused_squared_errors()))
    if theoretical_percent is None:
        theoretical_percent = 100.0 * top_k_expected_improvement(k, lam=1.0)
    return MseImprovementResult(
        k=k,
        epsilon=epsilon,
        baseline_mse=baseline_mse,
        fused_mse=fused_mse,
        improvement_percent=improvement_percentage(baseline_mse, fused_mse),
        theoretical_percent=float(theoretical_percent),
        trials=trials,
    )


def run_svt_mse_improvement(
    counts: ArrayLike,
    epsilon: float,
    k: int,
    trials: int = 200,
    monotonic: bool = True,
    adaptive: bool = False,
    rng: RngLike = None,
    theoretical_percent: Optional[float] = None,
    engine: str = "batch",
) -> MseImprovementResult:
    """Figure 1a / 2a experiment: Sparse-Vector-with-Gap with Measures.

    The threshold is re-drawn for every trial from the top-2k..top-8k range,
    as in the paper.  Trials in which the mechanism answers no queries are
    skipped (they contribute no error terms).
    """
    from repro.postprocess.theory import svt_expected_improvement

    counts = np.asarray(counts, dtype=float)
    engine = validate_engine(engine)
    generator = ensure_rng(rng)
    thresholds = api_pick_thresholds(counts, k, trials, rng=generator)
    spec = SelectMeasureSpec(
        queries=counts,
        epsilon=epsilon,
        k=k,
        mechanism="svt",
        threshold=0.0,
        monotonic=monotonic,
        adaptive=adaptive,
    )
    result = api_run(
        spec, engine=engine, trials=trials, rng=generator, thresholds=thresholds
    )
    baseline_sq = result.baseline_squared_errors()
    fused_sq = result.fused_squared_errors()
    if baseline_sq.size == 0:
        raise RuntimeError(
            "no above-threshold answers were produced in any trial; "
            "check the threshold policy or increase trials"
        )
    baseline_mse = float(np.mean(baseline_sq))
    fused_mse = float(np.mean(fused_sq))
    if theoretical_percent is None:
        theoretical_percent = 100.0 * svt_expected_improvement(k, monotonic=monotonic)
    return MseImprovementResult(
        k=k,
        epsilon=epsilon,
        baseline_mse=baseline_mse,
        fused_mse=fused_mse,
        improvement_percent=improvement_percentage(baseline_mse, fused_mse),
        theoretical_percent=float(theoretical_percent),
        trials=trials,
    )


@dataclass
class AdaptiveComparisonResult:
    """Aggregated Figure 3 numbers for one (dataset, k) setting.

    Attributes
    ----------
    k, epsilon:
        Parameter setting.
    svt_answers:
        Mean number of above-threshold answers from standard Sparse Vector.
    adaptive_answers:
        Mean number of above-threshold answers from the adaptive mechanism.
    adaptive_top_answers, adaptive_middle_answers:
        Mean branch breakdown of the adaptive answers.
    svt_precision, adaptive_precision:
        Mean precision of the reported above-threshold sets.
    svt_f_measure, adaptive_f_measure:
        Mean F-measure of the reported above-threshold sets.
    trials:
        Number of Monte-Carlo trials aggregated.
    """

    k: int
    epsilon: float
    svt_answers: float
    adaptive_answers: float
    adaptive_top_answers: float
    adaptive_middle_answers: float
    svt_precision: float
    adaptive_precision: float
    svt_f_measure: float
    adaptive_f_measure: float
    trials: int


def run_adaptive_comparison(
    counts: ArrayLike,
    epsilon: float,
    k: int,
    trials: int = 100,
    monotonic: bool = True,
    rng: RngLike = None,
    engine: str = "batch",
) -> AdaptiveComparisonResult:
    """Figure 3 experiment: Sparse Vector vs Adaptive-Sparse-Vector-with-Gap.

    Both mechanisms process the item-count stream in the order of the counts
    as supplied.  The threshold is drawn per trial from the top-2k..top-8k
    range and the recall underlying the F-measure is computed against the set
    of items whose true counts exceed that threshold.  One engine-agnostic
    aggregation path serves both engines: the facade returns the same
    ``(trials, n)`` above/branch masks either way.
    """
    counts = np.asarray(counts, dtype=float)
    engine = validate_engine(engine)
    generator = ensure_rng(rng)

    thresholds = api_pick_thresholds(counts, k, trials, rng=generator)
    actual_above = counts[None, :] > thresholds[:, None]

    svt_spec = SparseVectorSpec(
        queries=counts,
        epsilon=epsilon,
        threshold=0.0,
        k=k,
        monotonic=monotonic,
        with_gap=False,
    )
    svt_result = api_run(
        svt_spec, engine=engine, trials=trials, rng=generator, thresholds=thresholds
    )
    svt_p, _, svt_f = _batch_precision_recall_f(svt_result.above, actual_above)

    adaptive_spec = AdaptiveSvtSpec(
        queries=counts, epsilon=epsilon, threshold=0.0, k=k, monotonic=monotonic
    )
    adaptive_result = api_run(
        adaptive_spec, engine=engine, trials=trials, rng=generator, thresholds=thresholds
    )
    ad_p, _, ad_f = _batch_precision_recall_f(adaptive_result.above, actual_above)
    branch_totals = adaptive_result.branch_totals()

    return AdaptiveComparisonResult(
        k=k,
        epsilon=epsilon,
        svt_answers=float(np.mean(svt_result.num_answered)),
        adaptive_answers=float(np.mean(adaptive_result.num_answered)),
        adaptive_top_answers=float(np.mean(branch_totals[Result.BRANCH_TOP])),
        adaptive_middle_answers=float(np.mean(branch_totals[Result.BRANCH_MIDDLE])),
        svt_precision=float(np.mean(svt_p)),
        adaptive_precision=float(np.mean(ad_p)),
        svt_f_measure=float(np.mean(svt_f)),
        adaptive_f_measure=float(np.mean(ad_f)),
        trials=trials,
    )


@dataclass
class RemainingBudgetResult:
    """Aggregated Figure 4 numbers for one (dataset, k) setting.

    Attributes
    ----------
    k, epsilon:
        Parameter setting.
    remaining_percent:
        Mean percentage of the budget left when the adaptive mechanism is
        stopped after ``k`` above-threshold answers.
    trials:
        Number of Monte-Carlo trials aggregated.
    """

    k: int
    epsilon: float
    remaining_percent: float
    trials: int


def run_remaining_budget(
    counts: ArrayLike,
    epsilon: float,
    k: int,
    trials: int = 100,
    monotonic: bool = True,
    rng: RngLike = None,
    engine: str = "batch",
) -> RemainingBudgetResult:
    """Figure 4 experiment: leftover budget after k adaptive answers."""
    counts = np.asarray(counts, dtype=float)
    engine = validate_engine(engine)
    generator = ensure_rng(rng)
    thresholds = api_pick_thresholds(counts, k, trials, rng=generator)
    spec = AdaptiveSvtSpec(
        queries=counts,
        epsilon=epsilon,
        threshold=0.0,
        k=k,
        monotonic=monotonic,
        max_answers=k,
    )
    result = api_run(
        spec, engine=engine, trials=trials, rng=generator, thresholds=thresholds
    )
    mean_fraction = float(np.mean(result.remaining_budget_fraction))
    return RemainingBudgetResult(
        k=k,
        epsilon=epsilon,
        remaining_percent=100.0 * mean_fraction,
        trials=trials,
    )
