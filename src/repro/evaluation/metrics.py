"""Evaluation metrics used in Section 7 of the paper.

Three families of metrics appear in the evaluation:

* mean squared error of query estimates, reported as the *percent
  improvement* of the gap-fused estimates over the gap-free baseline
  (Figures 1 and 2);
* precision, recall and F-measure of the set of queries reported above the
  threshold by a Sparse Vector variant, relative to the set of queries whose
  true answers actually exceed the threshold (Figures 3d-3f);
* the fraction of the privacy budget left unspent by the adaptive mechanism
  (Figure 4).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple, Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray]


def mean_squared_error(estimates: ArrayLike, truths: ArrayLike) -> float:
    """Mean squared error of ``estimates`` against ``truths``."""
    estimates = np.asarray(estimates, dtype=float)
    truths = np.asarray(truths, dtype=float)
    if estimates.shape != truths.shape:
        raise ValueError("estimates and truths must have the same shape")
    if estimates.size == 0:
        raise ValueError("cannot compute the MSE of empty vectors")
    return float(np.mean((estimates - truths) ** 2))


def improvement_percentage(baseline_mse: float, improved_mse: float) -> float:
    """Percent reduction of ``improved_mse`` relative to ``baseline_mse``.

    Positive values mean the improved estimator is better; the paper's
    Figures 1 and 2 plot exactly this quantity.
    """
    if baseline_mse <= 0:
        raise ValueError("baseline_mse must be positive")
    return 100.0 * (1.0 - improved_mse / baseline_mse)


def precision_recall(
    reported: Iterable[int], actual: Iterable[int]
) -> Tuple[float, float]:
    """Precision and recall of a reported set against the true positive set.

    Parameters
    ----------
    reported:
        Indexes the mechanism reported as above-threshold.
    actual:
        Indexes whose true answers are actually above the threshold.

    Returns
    -------
    (precision, recall):
        Precision is 1.0 by convention when nothing was reported; recall is
        1.0 by convention when there are no actual positives.
    """
    reported_set: Set[int] = set(int(i) for i in reported)
    actual_set: Set[int] = set(int(i) for i in actual)
    true_positives = len(reported_set & actual_set)
    precision = true_positives / len(reported_set) if reported_set else 1.0
    recall = true_positives / len(actual_set) if actual_set else 1.0
    return precision, recall


def f_measure(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (zero if both are zero)."""
    if not 0.0 <= precision <= 1.0 or not 0.0 <= recall <= 1.0:
        raise ValueError("precision and recall must lie in [0, 1]")
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def selection_f_measure(reported: Iterable[int], actual: Iterable[int]) -> float:
    """F-measure of a reported above-threshold set (convenience wrapper)."""
    precision, recall = precision_recall(reported, actual)
    return f_measure(precision, recall)


def remaining_budget_fraction(epsilon_total: float, epsilon_spent: float) -> float:
    """Fraction of the total budget left unspent (the Figure 4 metric)."""
    if epsilon_total <= 0:
        raise ValueError("epsilon_total must be positive")
    if epsilon_spent < 0:
        raise ValueError("epsilon_spent must be non-negative")
    return max(0.0, epsilon_total - epsilon_spent) / epsilon_total
