"""Dependency-free ASCII plots of experiment data series.

The benchmark harness prints its results as tables; for a quick visual check
of the *shape* of a curve (rising toward 50 %, flat across epsilon, adaptive
above baseline) an inline plot is often clearer.  This module renders small
line and bar charts as plain text so that no plotting dependency is needed in
the offline environment; the CLI exposes them behind ``--plot``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

Row = Dict[str, object]


def _scaled_positions(values: Sequence[float], width: int) -> List[int]:
    lo, hi = min(values), max(values)
    if hi == lo:
        return [width // 2 for _ in values]
    return [int(round((v - lo) / (hi - lo) * (width - 1))) for v in values]


def line_plot(
    rows: Sequence[Row],
    x_column: str,
    y_columns: Sequence[str],
    width: int = 60,
    height: int = 15,
    title: Optional[str] = None,
) -> str:
    """Render one or more series as an ASCII line plot.

    Parameters
    ----------
    rows:
        Data rows (each a dict); all requested columns must be numeric.
    x_column:
        Column used for the horizontal axis.
    y_columns:
        One or more columns plotted as separate series; each series gets a
        distinct marker (``*``, ``o``, ``+``, ``x`` cycling).
    width, height:
        Canvas size in characters.
    title:
        Optional title line.

    Returns
    -------
    str
        The rendered plot, including a legend and axis range annotations.
    """
    rows = list(rows)
    if not rows:
        raise ValueError("cannot plot an empty data series")
    if width < 10 or height < 5:
        raise ValueError("the canvas must be at least 10 columns by 5 rows")
    if not y_columns:
        raise ValueError("at least one y column is required")

    xs = [float(row[x_column]) for row in rows]
    all_ys: List[float] = []
    series_values: List[List[float]] = []
    for column in y_columns:
        values = [float(row[column]) for row in rows]
        series_values.append(values)
        all_ys.extend(values)

    y_lo, y_hi = min(all_ys), max(all_ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    canvas = [[" " for _ in range(width)] for _ in range(height)]
    x_positions = _scaled_positions(xs, width)
    markers = "*o+x"
    for series_index, values in enumerate(series_values):
        marker = markers[series_index % len(markers)]
        for x_pos, value in zip(x_positions, values):
            y_pos = int(round((value - y_lo) / (y_hi - y_lo) * (height - 1)))
            canvas[height - 1 - y_pos][x_pos] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"y: {y_lo:g} .. {y_hi:g}")
    lines.extend("|" + "".join(row_chars) for row_chars in canvas)
    lines.append("+" + "-" * width)
    lines.append(f"x ({x_column}): {min(xs):g} .. {max(xs):g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]} {column}" for i, column in enumerate(y_columns)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def bar_chart(
    rows: Sequence[Row],
    label_column: str,
    value_column: str,
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Render a horizontal ASCII bar chart of one numeric column.

    Parameters
    ----------
    rows:
        Data rows.
    label_column:
        Column used to label each bar.
    value_column:
        Numeric column giving each bar's length.
    width:
        Maximum bar length in characters.
    title:
        Optional title line.
    """
    rows = list(rows)
    if not rows:
        raise ValueError("cannot plot an empty data series")
    if width < 5:
        raise ValueError("width must be at least 5")
    values = [float(row[value_column]) for row in rows]
    labels = [str(row[label_column]) for row in rows]
    peak = max(abs(v) for v in values) or 1.0
    label_width = max(len(label) for label in labels)

    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(abs(value) / peak * width)))
        lines.append(f"{label.rjust(label_width)} | {bar} {value:g}")
    return "\n".join(lines)
