"""Persisting experiment results.

The figure regenerators return their data as lists of row dictionaries; this
module writes and reads them in two interchange formats so that results can
be archived, diffed between runs, or plotted with external tooling:

* CSV -- one file per data series, human-diffable;
* JSON -- a single document holding several named series plus run metadata
  (parameters, trial counts, library version), which is the format the CLI's
  ``--output`` uses when the target filename ends in ``.json``.

Only the standard library is used (``csv``/``json``), so archived results
have no dependency on this package to read back.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

PathLike = Union[str, "os.PathLike[str]"]
Row = Dict[str, object]


@dataclass
class ExperimentRecord:
    """A named collection of data series plus run metadata.

    Attributes
    ----------
    name:
        Identifier of the experiment (e.g. ``"figure1"``).
    parameters:
        The parameter values the experiment was run with (epsilon, k,
        trials, dataset, seed, ...).
    series:
        Mapping from series name (e.g. ``"top_k"``) to its rows.
    """

    name: str
    parameters: Dict[str, object] = field(default_factory=dict)
    series: Dict[str, List[Row]] = field(default_factory=dict)

    def add_series(self, label: str, rows: Sequence[Row]) -> None:
        """Attach one data series, replacing any existing series of that name."""
        self.series[label] = [dict(row) for row in rows]

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict representation (the JSON document layout)."""
        return {
            "name": self.name,
            "parameters": dict(self.parameters),
            "series": {label: list(rows) for label, rows in self.series.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        if "name" not in payload:
            raise ValueError("experiment payload is missing the 'name' field")
        record = cls(
            name=str(payload["name"]),
            parameters=dict(payload.get("parameters", {})),
        )
        for label, rows in dict(payload.get("series", {})).items():
            record.add_series(label, rows)
        return record


def write_rows_csv(rows: Sequence[Row], path: PathLike) -> None:
    """Write one data series as a CSV file (columns from the first row)."""
    rows = list(rows)
    if not rows:
        raise ValueError("cannot write an empty data series")
    path = os.fspath(path)
    columns = list(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def read_rows_csv(path: PathLike) -> List[Row]:
    """Read a data series back from CSV, converting numeric fields to float."""
    path = os.fspath(path)
    rows: List[Row] = []
    with open(path, "r", newline="", encoding="utf-8") as handle:
        for raw in csv.DictReader(handle):
            row: Row = {}
            for key, value in raw.items():
                try:
                    row[key] = float(value)
                except (TypeError, ValueError):
                    row[key] = value
            rows.append(row)
    return rows


def write_experiment_json(record: ExperimentRecord, path: PathLike) -> None:
    """Write an :class:`ExperimentRecord` as a JSON document."""
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record.to_dict(), handle, indent=2, sort_keys=True, default=float)
        handle.write("\n")


def read_experiment_json(path: PathLike) -> ExperimentRecord:
    """Read an :class:`ExperimentRecord` back from JSON."""
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as handle:
        return ExperimentRecord.from_dict(json.load(handle))


def compare_series(
    baseline: Sequence[Row],
    candidate: Sequence[Row],
    key_column: str,
    value_column: str,
    tolerance: float,
) -> List[str]:
    """Compare two runs of the same series point by point.

    Returns a list of human-readable difference descriptions; an empty list
    means the candidate matches the baseline within ``tolerance`` at every
    shared key.  Useful for regression-checking archived experiment results.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    baseline_by_key = {row[key_column]: row for row in baseline}
    differences: List[str] = []
    for row in candidate:
        key = row[key_column]
        if key not in baseline_by_key:
            differences.append(f"{key_column}={key}: missing from baseline")
            continue
        old = float(baseline_by_key[key][value_column])
        new = float(row[value_column])
        if abs(new - old) > tolerance:
            differences.append(
                f"{key_column}={key}: {value_column} changed from {old:g} to {new:g}"
            )
    for key in baseline_by_key:
        if key not in {row[key_column] for row in candidate}:
            differences.append(f"{key_column}={key}: missing from candidate")
    return differences
