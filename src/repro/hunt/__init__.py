"""Dynamic DP-violation hunting (StatDP / DP-Sniper style).

The dynamic counterpart of :mod:`repro.privcheck`: where the static
verifier proves or refutes a mechanism's epsilon claim from its structure,
the hunter *runs* the mechanism -- millions of trials routed through the
job service -- and turns every refutation into a concrete, statistically
certified witness: a neighbouring input pair plus an output event whose
empirical probability ratio exceeds ``e^epsilon`` at the family-wise
confidence level.

Layering: ``hunt`` sits at the top of the stack (with ``evaluation``),
consuming the facade, the service/net transports and the tenancy ledger;
nothing below imports it (the one sanctioned exception is the empirical
verifier's function-local use of :mod:`repro.hunt.stats`).

    inputs.py    neighbouring-database pair generators
    events.py    output-event selection on training data
    stats.py     Clopper-Pearson bounds, p-values, Holm correction
    campaign.py  escalation orchestrator over the job service
    report.py    dynamic-vs-static verdict table and cross-check
"""

from repro.hunt.campaign import (
    CampaignOutcome,
    HuntConfig,
    HuntEntry,
    InProcessRunner,
    RunRequest,
    ServiceRunner,
    Witness,
    derive_seed,
    hunt_catalogue,
    run_campaign,
    run_hunt,
)
from repro.hunt.events import Event, TrialWindow, generate_candidates
from repro.hunt.inputs import NeighbouringPair, generate_pairs, pair_specs
from repro.hunt.report import (
    HuntDisagreementError,
    HuntRow,
    cross_check,
    render_hunt_table,
    require_agreement,
)
from repro.hunt.stats import (
    EventCounts,
    TestOutcome,
    clopper_pearson,
    epsilon_lower_bound,
    epsilon_p_value,
    holm_reject,
    test_events,
)

__all__ = [
    "CampaignOutcome",
    "EventCounts",
    "Event",
    "HuntConfig",
    "HuntDisagreementError",
    "HuntEntry",
    "HuntRow",
    "InProcessRunner",
    "NeighbouringPair",
    "RunRequest",
    "ServiceRunner",
    "TestOutcome",
    "TrialWindow",
    "Witness",
    "clopper_pearson",
    "cross_check",
    "derive_seed",
    "epsilon_lower_bound",
    "epsilon_p_value",
    "generate_candidates",
    "generate_pairs",
    "holm_reject",
    "hunt_catalogue",
    "pair_specs",
    "render_hunt_table",
    "require_agreement",
    "run_campaign",
    "run_hunt",
    "test_events",
]
