"""The hunt orchestrator: escalating counterexample campaigns over the
job service.

One *hunt* attacks one catalogued mechanism: generate the neighbouring
pairs (:mod:`repro.hunt.inputs`), run escalating trial batches on both
sides of every pair, select candidate events on the accumulated training
data (:mod:`repro.hunt.events`), and test them on each round's fresh
held-out batch (:mod:`repro.hunt.stats`) until either a witness is
confirmed at the family-wise confidence level or the schedule is
exhausted.  A *campaign* is one hunt per catalogue entry.

The trials are deliberately routed through the production stack rather
than executed inline: every batch is a job submitted through
``repro.api.submit`` semantics (:class:`ServiceRunner` speaks both the
filesystem and HTTP transports), each hunt runs under its own tenant so
the budget ledger meters its epsilon traffic, and batch identity is
content-addressed -- the seed of a batch depends only on the *queries*
it answers, so the many pairs that share their unperturbed side collapse
onto one cached job, and re-running a campaign with the same seed
re-executes nothing.  The service's determinism contract (bit-identical
to ``run(shards=N)``) is what makes a hunt a reproducible artifact
instead of an anecdote.

The statistical discipline, in one place:

* events are selected on training data only -- round 0 splits its batch,
  later rounds train on all earlier batches and test on the fresh one;
* the per-mechanism error budget ``alpha`` is split evenly across
  schedule rounds, then across the pairs active in a round (union
  bound), then Holm-corrected across the candidate events of one pair
  (:func:`repro.hunt.stats.test_events`);
* a witness therefore carries a family-wise ``1 - alpha`` guarantee for
  the whole hunt, however many events and pairs were tried along the way.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.facade import run
from repro.api.result import Result
from repro.api.specs import (
    AdaptiveSvtSpec,
    MechanismSpec,
    NoisyTopKSpec,
    SparseVectorSpec,
    SvtVariantSpec,
)
from repro.hunt.events import Event, TrialWindow, generate_candidates
from repro.hunt.inputs import NeighbouringPair, generate_pairs, pair_specs
from repro.hunt.stats import EventCounts, test_events

__all__ = [
    "CampaignOutcome",
    "HuntConfig",
    "HuntEntry",
    "InProcessRunner",
    "RunRequest",
    "ServiceRunner",
    "Witness",
    "derive_seed",
    "hunt_catalogue",
    "run_campaign",
    "run_hunt",
]

#: Default escalation ladder: cheap wide sweep, then two deepening rounds
#: on the surviving pairs.  Mechanisms whose witnesses live further out in
#: the tails carry longer per-entry ladders in :func:`hunt_catalogue`.
_DEFAULT_SCHEDULE = (4_000, 16_000, 64_000)


def derive_seed(master: int, label: str, round_index: int, queries, trials: int) -> int:
    """The seed of one trial batch, content-addressed by what it runs.

    Keyed on the *query vector* rather than the (pair, side) that wants
    the batch: every pair whose unperturbed side answers the same queries
    maps to the identical job, so the service's content-addressed cache
    collapses them into one execution.  Distinct query vectors -- and
    distinct rounds -- get independently derived seeds, so the two sides
    of a pair never share noise.
    """
    text = "|".join(
        (
            str(int(master)),
            label,
            str(int(round_index)),
            ",".join(repr(float(q)) for q in queries),
            str(int(trials)),
        )
    )
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)


@dataclass(frozen=True)
class RunRequest:
    """One trial batch the campaign needs executed."""

    spec: MechanismSpec
    engine: str
    trials: int
    seed: int

    def key(self) -> str:
        payload = {
            "spec": self.spec.to_dict(),
            "engine": self.engine,
            "trials": self.trials,
            "seed": self.seed,
        }
        return json.dumps(payload, sort_keys=True)


class TrialRunner:
    """Executes batches of trials; the campaign's only effectful dependency."""

    def run_many(self, requests: Sequence[RunRequest], *, tenant: str) -> List[Result]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def epsilon_charged(self, tenant: str) -> Optional[float]:
        """Gross epsilon the ledger metered for ``tenant`` (None: no ledger)."""
        return None


class InProcessRunner(TrialRunner):
    """Runs batches through the facade directly (tests, benchmarks).

    Executes with ``shards=1`` and the campaign's chunk size so every
    batch is *bit-identical* to what the service would produce for the
    same request -- the parity the end-to-end tests assert.  A memo table
    stands in for the service's content-addressed cache, preserving the
    collapse of shared-query batches.
    """

    def __init__(self, chunk_trials: Optional[int] = None) -> None:
        self.chunk_trials = chunk_trials
        self._memo: Dict[str, Result] = {}

    def run_many(self, requests: Sequence[RunRequest], *, tenant: str) -> List[Result]:
        results: List[Result] = []
        for request in requests:
            key = request.key()
            cached = self._memo.get(key)
            if cached is None:
                cached = run(
                    request.spec,
                    engine=request.engine,
                    trials=request.trials,
                    rng=request.seed,
                    shards=1,
                    chunk_trials=self.chunk_trials,
                )
                self._memo[key] = cached
            results.append(cached)
        return results

    def describe(self) -> str:
        return "in-process"


class ServiceRunner(TrialRunner):
    """Runs batches as jobs on the service stack (the production path).

    ``root=`` drives the filesystem transport and drains the queue with
    an in-process worker pool after each submission wave; ``url=`` drives
    the HTTP transport against an external daemon (whose own workers
    execute the tasks) and polls.  Either way, every wave is submitted
    first and only then waited on -- N jobs in flight, one
    ``status_many`` round-trip per poll.
    """

    def __init__(
        self,
        *,
        root=None,
        url: Optional[str] = None,
        token: Optional[str] = None,
        workers: int = 2,
        chunk_trials: Optional[int] = None,
        poll_interval: float = 0.05,
        timeout: float = 600.0,
    ) -> None:
        if (root is None) == (url is None):
            raise ValueError(
                "pass exactly one of root= (filesystem transport) or "
                "url= (HTTP transport)"
            )
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        self.workers = int(workers)
        self.chunk_trials = chunk_trials
        self.poll_interval = float(poll_interval)
        self.timeout = float(timeout)
        if url is not None:
            if root is not None:
                raise ValueError("root= and url= are mutually exclusive")
            from repro.net.client import HttpJobClient

            self.client = HttpJobClient(url, token=token)
            self._broker = None
        else:
            if token is not None:
                raise ValueError("token= only applies to the HTTP transport")
            from repro.service.client import JobClient

            self.client = JobClient(root)
            self._broker = self.client.broker

    def run_many(self, requests: Sequence[RunRequest], *, tenant: str) -> List[Result]:
        handles: Dict[str, object] = {}
        for request in requests:
            key = request.key()
            if key in handles:
                continue
            handles[key] = self.client.submit(
                request.spec,
                engine=request.engine,
                trials=request.trials,
                seed=request.seed,
                chunk_trials=self.chunk_trials,
                tenant=tenant,
            )
        if self._broker is not None:
            # Filesystem transport: nothing executes until workers drain
            # the queue this process enqueued into.
            from repro.service.worker import run_workers

            run_workers(self._broker, count=self.workers, timeout=self.timeout)
        job_ids = sorted(handle.job_id for handle in handles.values())
        max_polls = max(1, int(self.timeout / self.poll_interval))
        for _ in range(max_polls):
            statuses = self.client.status_many(job_ids)
            if all(status.finished for status in statuses.values()):
                break
            time.sleep(self.poll_interval)
        fetched = {
            key: handle.result(timeout=self.timeout)
            for key, handle in handles.items()
        }
        return [fetched[request.key()] for request in requests]

    def describe(self) -> str:
        if self._broker is not None:
            return f"service root={self._broker.root}"
        return f"service url={self.client.url}"

    def epsilon_charged(self, tenant: str) -> Optional[float]:
        if self._broker is not None:
            return float(self._broker.ledger.charged(tenant))
        payload = self.client.tenant_budget(tenant)
        charged = payload.get("charged")
        return None if charged is None else float(charged)


@dataclass(frozen=True)
class HuntEntry:
    """One catalogued mechanism plus its tuned hunt parameters.

    ``schedule`` is the per-round trials-per-side ladder; entries whose
    known witness events live deep in the noise tails (variant 3's
    pinned-threshold event has probability ~1e-3) carry longer ladders --
    a power choice, not a correctness one: every round's test is valid at
    its own level regardless of where the ladder stops.
    """

    label: str
    spec: MechanismSpec
    engine: str
    schedule: Tuple[int, ...] = _DEFAULT_SCHEDULE

    @property
    def tenant(self) -> str:
        return f"hunt-{self.label}"


def hunt_catalogue() -> Tuple[HuntEntry, ...]:
    """The nine verify-privacy mechanisms, armed for dynamic hunting.

    Same labels and structural parameters as
    :func:`repro.privcheck.verdicts.default_catalogue` (so the static and
    dynamic verdict tables align row for row), but with query vectors
    placed near the threshold: the static analysis never reads the
    queries, while the dynamic search needs the released events to have
    observable mass on both sides of every branch.
    """
    top = (12.0, 9.0, 7.0, 5.0)
    entries = [
        HuntEntry(
            "noisy-top-k-with-gap",
            NoisyTopKSpec(queries=top, epsilon=1.0, k=3, with_gap=True),
            engine="batch",
        ),
        HuntEntry(
            "sparse-vector-with-gap",
            SparseVectorSpec(
                queries=top, epsilon=1.0, threshold=8.0, k=2, with_gap=True
            ),
            engine="batch",
        ),
        HuntEntry(
            "adaptive-svt-with-gap",
            AdaptiveSvtSpec(queries=top, epsilon=1.0, threshold=8.0, k=2),
            engine="batch",
        ),
    ]
    variant_queries: Dict[int, Tuple[float, ...]] = {
        1: (9.0, 8.0, 7.5, 8.5),
        2: (9.0, 7.5, 8.5),
        # Three just-below queries ahead of one just-above: the pattern
        # whose "answered last, with a LOW released value" event pins the
        # shared threshold noise and defeats variant 3's value leak.
        3: (7.5, 7.5, 7.5, 8.5),
        # Two above / one below at full opposing perturbation: variant 4's
        # halved recovery budget cannot pay for the opposing tails.
        4: (8.8, 8.8, 7.2),
        # Six identical queries just above the exact (unnoised) threshold:
        # variant 5 has no threshold noise to absorb the all-below shift.
        5: (9.0,) * 6,
        # Two queries straddling the threshold; swapping their order is
        # impossible to explain without query noise (variant 6 has none).
        6: (7.5, 8.5),
    }
    schedules: Dict[int, Tuple[int, ...]] = {
        3: (4_000, 16_000, 64_000, 640_000),
        4: (4_000, 16_000, 256_000),
    }
    for variant in sorted(variant_queries):
        entries.append(
            HuntEntry(
                f"svt-variant-{variant}",
                SvtVariantSpec(
                    variant=variant,
                    queries=variant_queries[variant],
                    epsilon=1.0,
                    threshold=8.0,
                    k=1,
                ),
                engine="reference",
                schedule=schedules.get(variant, _DEFAULT_SCHEDULE),
            )
        )
    return tuple(entries)


@dataclass(frozen=True)
class HuntConfig:
    """Statistical and operational knobs shared by every hunt."""

    alpha: float = 0.05
    train_fraction: float = 0.5
    max_events: int = 8
    keep_pairs: int = 2
    #: Last round index that still runs *all* pairs; afterwards only the
    #: ``keep_pairs`` best-scoring pairs escalate.  Pruning from round 2
    #: on (not 1) keeps low-probability events from being starved out of
    #: their pair before a 16k-trial round can surface them.
    prune_after_round: int = 1
    chunk_trials: int = 4_000
    schedule_override: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must lie in (0, 1), got {self.alpha}")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError(
                f"train_fraction must lie in (0, 1), got {self.train_fraction}"
            )
        if self.max_events < 1 or self.keep_pairs < 1:
            raise ValueError("max_events and keep_pairs must be at least 1")
        if self.chunk_trials < 1:
            raise ValueError(f"chunk_trials must be at least 1, got {self.chunk_trials}")


@dataclass(frozen=True)
class Witness:
    """A confirmed epsilon-DP violation: the full replayable evidence."""

    pair: NeighbouringPair
    event: str
    direction: int
    epsilon_bound: float
    p_value: float
    counts: EventCounts
    round_index: int
    test_trials: int
    alpha: float

    def describe(self) -> str:
        d_side = "D" if self.direction >= 0 else "D'"
        return (
            f"pair {pair_arrow(self.pair)}; event [{self.event}] favours "
            f"{d_side}; eps >= {self.epsilon_bound:.3f} at the "
            f"{(1 - self.alpha) * 100:.2f}% family-wise level "
            f"(p<={self.p_value:.2e}, counts {self.counts.successes_d}/"
            f"{self.counts.trials_d} vs {self.counts.successes_d_prime}/"
            f"{self.counts.trials_d_prime})"
        )


def pair_arrow(pair: NeighbouringPair) -> str:
    def fmt(values) -> str:
        return "(" + ", ".join(f"{v:g}" for v in values) + ")"

    return f"{pair.category}: {fmt(pair.queries_d)} -> {fmt(pair.queries_d_prime)}"


@dataclass(frozen=True)
class CampaignOutcome:
    """What one hunt concluded about one mechanism."""

    label: str
    claimed_epsilon: float
    schedule: Tuple[int, ...]
    witness: Optional[Witness]
    rounds_completed: int
    total_trials: int
    tenant: str
    epsilon_charged: Optional[float] = None

    @property
    def violated(self) -> bool:
        return self.witness is not None

    @property
    def dynamic_status(self) -> str:
        if self.witness is not None:
            return "VIOLATED"
        return "survived"


@dataclass
class _PairState:
    pair: NeighbouringPair
    train_d: List[TrialWindow] = field(default_factory=list)
    train_d_prime: List[TrialWindow] = field(default_factory=list)
    score: float = float("-inf")


def _point_score(counts: EventCounts) -> float:
    """Additively-smoothed directed log-ratio, for pair pruning only.

    Deliberately *not* a confidence bound: at small trial counts the
    bound of a genuinely violating but rare event is still -inf, and
    pruning on it would discard exactly the pairs the deeper rounds
    exist for.  The smoothed point estimate ranks pairs by the signal
    they showed, not by what is already provable.
    """
    p_d = (counts.successes_d + 0.5) / (counts.trials_d + 1.0)
    p_dp = (counts.successes_d_prime + 0.5) / (counts.trials_d_prime + 1.0)
    return abs(math.log(p_d) - math.log(p_dp))


def _threshold_cuts(spec: MechanismSpec) -> Tuple[float, ...]:
    """Gap cut points anchored to public spec parameters.

    The public threshold is adversary knowledge, so events like
    "released value below the threshold" are fair game; exposing the
    cuts explicitly spares the quantile grid from having to rediscover
    them from samples.
    """
    threshold = getattr(spec, "threshold", None)
    if threshold is None:
        return ()
    sensitivity = float(getattr(spec, "sensitivity", 1.0))
    threshold = float(threshold)
    return (
        threshold - 0.5 * sensitivity,
        threshold,
        threshold + 0.5 * sensitivity,
    )


def run_hunt(
    entry: HuntEntry,
    runner: TrialRunner,
    *,
    seed: int,
    config: HuntConfig = HuntConfig(),
    progress=None,
) -> CampaignOutcome:
    """Hunt one mechanism; see the module docstring for the discipline."""
    spec = entry.spec
    spec.validate()
    schedule = config.schedule_override or entry.schedule
    if not schedule:
        raise ValueError(f"hunt schedule for {entry.label!r} is empty")
    pairs = generate_pairs(
        spec.queries,
        float(getattr(spec, "sensitivity", 1.0)),
        bool(getattr(spec, "monotonic", False)),
    )
    states = [_PairState(pair=pair) for pair in pairs]
    extra_cuts = _threshold_cuts(spec)
    claimed = float(spec.epsilon)
    total_trials = 0
    notify = progress if progress is not None else (lambda message: None)

    for round_index, batch_trials in enumerate(schedule):
        if round_index <= config.prune_after_round:
            active = list(states)
        else:
            ranked = sorted(
                states, key=lambda s: (-s.score, s.pair.category)
            )
            active = ranked[: config.keep_pairs]
        alpha_pair = config.alpha / (len(schedule) * len(active))

        requests: List[RunRequest] = []
        for state in active:
            for side_spec in pair_specs(spec, state.pair):
                requests.append(
                    RunRequest(
                        spec=side_spec,
                        engine=entry.engine,
                        trials=batch_trials,
                        seed=derive_seed(
                            seed, entry.label, round_index,
                            side_spec.queries, batch_trials,
                        ),
                    )
                )
        notify(
            f"  round {round_index}: {len(active)} pair(s) x 2 x "
            f"{batch_trials} trials via {runner.describe()}"
        )
        results = runner.run_many(requests, tenant=entry.tenant)
        total_trials += sum(request.trials for request in requests)

        for position, state in enumerate(active):
            result_d = results[2 * position]
            result_d_prime = results[2 * position + 1]
            if round_index == 0:
                split = int(batch_trials * config.train_fraction)
                train_d = [TrialWindow(result_d, 0, split)]
                train_d_prime = [TrialWindow(result_d_prime, 0, split)]
                test_d = TrialWindow(result_d, split, batch_trials)
                test_d_prime = TrialWindow(result_d_prime, split, batch_trials)
            else:
                train_d = state.train_d
                train_d_prime = state.train_d_prime
                test_d = TrialWindow(result_d, 0, batch_trials)
                test_d_prime = TrialWindow(result_d_prime, 0, batch_trials)

            candidates = generate_candidates(
                train_d, train_d_prime, config.max_events, extra_cuts=extra_cuts
            )
            counts_list = [
                _count_event(event, test_d, test_d_prime) for event in candidates
            ]
            outcomes = test_events(counts_list, claimed, alpha_pair)
            rejected = [o for o in outcomes if o.rejected]
            if rejected:
                best = max(rejected, key=lambda o: o.epsilon_bound)
                witness = Witness(
                    pair=state.pair,
                    event=candidates[best.index].describe(),
                    direction=best.direction,
                    epsilon_bound=best.epsilon_bound,
                    p_value=best.p_value,
                    counts=best.counts,
                    round_index=round_index,
                    test_trials=test_d.trials,
                    alpha=alpha_pair,
                )
                notify(f"  witness: {witness.describe()}")
                return CampaignOutcome(
                    label=entry.label,
                    claimed_epsilon=claimed,
                    schedule=tuple(schedule),
                    witness=witness,
                    rounds_completed=round_index + 1,
                    total_trials=total_trials,
                    tenant=entry.tenant,
                    epsilon_charged=runner.epsilon_charged(entry.tenant),
                )
            state.score = max(
                (_point_score(counts) for counts in counts_list),
                default=float("-inf"),
            )
            state.train_d = train_d + [TrialWindow(result_d, 0, batch_trials)]
            state.train_d_prime = train_d_prime + [
                TrialWindow(result_d_prime, 0, batch_trials)
            ]

    return CampaignOutcome(
        label=entry.label,
        claimed_epsilon=claimed,
        schedule=tuple(schedule),
        witness=None,
        rounds_completed=len(schedule),
        total_trials=total_trials,
        tenant=entry.tenant,
        epsilon_charged=runner.epsilon_charged(entry.tenant),
    )


def _count_event(
    event: Event, test_d: TrialWindow, test_d_prime: TrialWindow
) -> EventCounts:
    successes_d, trials_d = event.tally([test_d])
    successes_d_prime, trials_d_prime = event.tally([test_d_prime])
    return EventCounts(
        successes_d=successes_d,
        trials_d=trials_d,
        successes_d_prime=successes_d_prime,
        trials_d_prime=trials_d_prime,
    )


def run_campaign(
    runner: TrialRunner,
    *,
    seed: int,
    entries: Optional[Sequence[HuntEntry]] = None,
    config: HuntConfig = HuntConfig(),
    progress=None,
) -> Tuple[CampaignOutcome, ...]:
    """One hunt per entry (default: the full nine-mechanism catalogue)."""
    if entries is None:
        entries = hunt_catalogue()
    notify = progress if progress is not None else (lambda message: None)
    outcomes: List[CampaignOutcome] = []
    for entry in entries:
        notify(f"hunting {entry.label} (claimed {entry.spec.epsilon:g}-DP)")
        outcomes.append(
            run_hunt(entry, runner, seed=seed, config=config, progress=progress)
        )
    return tuple(outcomes)
