"""Output-event selectors for the dynamic hunter.

An epsilon-DP violation witness is an *event* -- a measurable set of
outputs -- whose probability shifts by more than ``e^epsilon`` between two
neighbouring databases.  Following DP-Sniper, the hunter does not guess
events a priori: it runs a training batch on both databases, enumerates a
family of structured events over the observed traces, scores each by the
confidence-penalized probability ratio it achieves *on the training data*,
and carries only the top scorers forward to be tested on held-out data
(:mod:`repro.hunt.stats` owns the test; the strict split lives in
:mod:`repro.hunt.campaign`).

The event families mirror what a :class:`~repro.api.result.Result` actually
releases, so every event is observable by a real adversary:

* ``answered == c`` -- how many queries were answered;
* ``first-above == i`` -- the position of the first above-threshold answer
  (``-1`` for none), the core SVT observable;
* ``above-pattern == p`` -- the exact boolean answer pattern;
* ``selection == (i, ...)`` -- the released index tuple (top-k style);
* ``max-gap <= t`` / ``max-gap >= t`` -- thresholds on the largest released
  gap (or released noisy value, for the variants that leak them), with cut
  points taken from training-data quantiles;
* conjunctions of a positional event with a gap threshold -- the family
  that catches SVT variant 3, where the *position* alone is explainable by
  threshold-noise alignment but position *plus a low released value* is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.hunt.stats import EventCounts, directed_lower_bound

__all__ = [
    "AnswerCount",
    "AbovePattern",
    "Conjunction",
    "Event",
    "FirstAbove",
    "MaxGap",
    "Selection",
    "TrialWindow",
    "generate_candidates",
]

#: Training-quantile grid for gap cut points, and the level used only for
#: *ranking* candidates on the training split (the held-out test chooses
#: its own, Holm-corrected levels).
_GAP_QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9)
_SCORE_ALPHA = 0.1
#: Cap on enumerated exact patterns/selections per side, keeping the
#: candidate pool bounded for wide streams.
_MAX_DISCRETE_VALUES = 12


@dataclass(frozen=True)
class TrialWindow:
    """A contiguous block of trials of one :class:`Result` (train or test).

    Events evaluate on windows rather than raw results so the round-0
    train/test split never has to copy or re-run anything: the same result
    object backs both halves through different ``[start, stop)`` ranges.
    """

    result: object
    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start <= self.stop <= self.result.trials:
            raise ValueError(
                f"window [{self.start}, {self.stop}) out of range for "
                f"{self.result.trials} trial(s)"
            )

    @property
    def trials(self) -> int:
        return self.stop - self.start

    @property
    def indices(self) -> np.ndarray:
        return self.result.indices[self.start : self.stop]

    @property
    def gaps(self) -> np.ndarray:
        return self.result.gaps[self.start : self.stop]

    @property
    def above(self):
        if self.result.above is None:
            return None
        return self.result.above[self.start : self.stop]

    def answered(self) -> np.ndarray:
        return np.sum(self.indices >= 0, axis=1)

    def first_above(self) -> np.ndarray:
        """Position of the first above-threshold answer, ``-1`` for none."""
        above = self.above
        if above is None or above.shape[1] == 0:
            first = self.indices[:, 0] if self.indices.shape[1] else None
            if first is None:
                return np.full(self.trials, -1, dtype=np.int64)
            return np.where(first >= 0, first, -1).astype(np.int64)
        any_above = above.any(axis=1)
        return np.where(any_above, above.argmax(axis=1), -1).astype(np.int64)

    def max_gap(self) -> np.ndarray:
        """Largest released gap per trial; ``-inf`` when none was released."""
        gaps = self.gaps
        if gaps.shape[1] == 0:
            return np.full(self.trials, -np.inf)
        filled = np.where(np.isnan(gaps), -np.inf, gaps)
        return filled.max(axis=1)


class Event:
    """A deterministic predicate over released outputs."""

    def evaluate(self, window: TrialWindow) -> np.ndarray:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def tally(self, windows: Sequence[TrialWindow]) -> Tuple[int, int]:
        """``(successes, trials)`` of this event over a list of windows."""
        successes = 0
        trials = 0
        for window in windows:
            successes += int(self.evaluate(window).sum())
            trials += window.trials
        return successes, trials


@dataclass(frozen=True)
class AnswerCount(Event):
    count: int

    def evaluate(self, window: TrialWindow) -> np.ndarray:
        return window.answered() == self.count

    def describe(self) -> str:
        return f"answered == {self.count}"


@dataclass(frozen=True)
class FirstAbove(Event):
    index: int

    def evaluate(self, window: TrialWindow) -> np.ndarray:
        return window.first_above() == self.index

    def describe(self) -> str:
        if self.index < 0:
            return "no query answered above"
        return f"first-above == {self.index}"


@dataclass(frozen=True)
class AbovePattern(Event):
    pattern: Tuple[bool, ...]

    def evaluate(self, window: TrialWindow) -> np.ndarray:
        above = window.above
        if above is None or above.shape[1] != len(self.pattern):
            return np.zeros(window.trials, dtype=bool)
        target = np.asarray(self.pattern, dtype=bool)
        return (above == target).all(axis=1)

    def describe(self) -> str:
        bits = "".join("1" if bit else "0" for bit in self.pattern)
        return f"above-pattern == {bits}"


@dataclass(frozen=True)
class Selection(Event):
    indices: Tuple[int, ...]

    def evaluate(self, window: TrialWindow) -> np.ndarray:
        if window.indices.shape[1] != len(self.indices):
            return np.zeros(window.trials, dtype=bool)
        target = np.asarray(self.indices, dtype=window.indices.dtype)
        return (window.indices == target).all(axis=1)

    def describe(self) -> str:
        return f"selection == {tuple(int(i) for i in self.indices)}"


@dataclass(frozen=True)
class MaxGap(Event):
    """``max-gap <= cut`` (``below=True``) or ``max-gap >= cut``."""

    cut: float
    below: bool

    def evaluate(self, window: TrialWindow) -> np.ndarray:
        values = window.max_gap()
        if self.below:
            # -inf (no gap released) intentionally satisfies "<= cut": the
            # adversary observes "nothing high was released" either way.
            return values <= self.cut
        return values >= self.cut

    def describe(self) -> str:
        op = "<=" if self.below else ">="
        return f"max-gap {op} {self.cut:g}"


@dataclass(frozen=True)
class Conjunction(Event):
    left: Event
    right: Event

    def evaluate(self, window: TrialWindow) -> np.ndarray:
        return self.left.evaluate(window) & self.right.evaluate(window)

    def describe(self) -> str:
        return f"({self.left.describe()}) and ({self.right.describe()})"


def _observed_values(windows: Sequence[TrialWindow], extract) -> List:
    """Distinct observed feature values, most frequent first (ties: value)."""
    frequency: dict = {}
    for window in windows:
        for value in extract(window):
            frequency[value] = frequency.get(value, 0) + 1
    ranked = sorted(frequency.items(), key=lambda item: (-item[1], repr(item[0])))
    return [value for value, _ in ranked[:_MAX_DISCRETE_VALUES]]


def _gap_cuts(windows: Sequence[TrialWindow]) -> List[float]:
    finite: List[np.ndarray] = []
    for window in windows:
        values = window.max_gap()
        finite.append(values[np.isfinite(values)])
    if not finite:
        return []
    pooled = np.concatenate(finite) if finite else np.empty(0)
    if pooled.size == 0:
        return []
    cuts = sorted({float(np.quantile(pooled, q)) for q in _GAP_QUANTILES})
    return cuts


def enumerate_events(
    train: Sequence[TrialWindow], extra_cuts: Sequence[float] = ()
) -> List[Event]:
    """The full (unscored) candidate pool from pooled training windows.

    ``extra_cuts`` lets the campaign anchor gap cut points to *public*
    spec parameters (the threshold is adversary knowledge); the quantile
    grid then only has to cover what the data alone reveals.
    """
    events: List[Event] = []
    for count in _observed_values(train, lambda w: w.answered().tolist()):
        events.append(AnswerCount(int(count)))
    first_values = _observed_values(train, lambda w: w.first_above().tolist())
    for index in first_values:
        events.append(FirstAbove(int(index)))
    for pattern in _observed_values(
        train,
        lambda w: []
        if w.above is None or w.above.shape[1] > 16
        else [tuple(bool(b) for b in row) for row in w.above],
    ):
        events.append(AbovePattern(pattern))
    for selection in _observed_values(
        train, lambda w: [tuple(int(i) for i in row) for row in w.indices]
    ):
        events.append(Selection(selection))
    cuts = sorted(set(_gap_cuts(train)) | {float(cut) for cut in extra_cuts})
    for cut in cuts:
        events.append(MaxGap(cut=cut, below=True))
        events.append(MaxGap(cut=cut, below=False))
        for index in first_values:
            if int(index) >= 0:
                events.append(
                    Conjunction(FirstAbove(int(index)), MaxGap(cut=cut, below=True))
                )
                events.append(
                    Conjunction(FirstAbove(int(index)), MaxGap(cut=cut, below=False))
                )
    return events


def generate_candidates(
    train_d: Sequence[TrialWindow],
    train_d_prime: Sequence[TrialWindow],
    max_events: int,
    extra_cuts: Sequence[float] = (),
) -> Tuple[Event, ...]:
    """Select the most promising events from training data only.

    Every candidate is scored by the confidence-penalized log probability
    ratio it achieves on the pooled training windows (the same lower-bound
    statistic the held-out test uses, at a fixed generous level) -- so rare
    flukes with huge raw ratios but no support rank below events the test
    could actually confirm.  Ties break on the event description, making
    the selection deterministic for fixed inputs.
    """
    if max_events < 1:
        raise ValueError(f"max_events must be at least 1, got {max_events}")
    pool = enumerate_events(
        list(train_d) + list(train_d_prime), extra_cuts=extra_cuts
    )
    scored = []
    seen = set()
    for event in pool:
        label = event.describe()
        if label in seen:
            continue
        seen.add(label)
        successes_d, trials_d = event.tally(train_d)
        successes_d_prime, trials_d_prime = event.tally(train_d_prime)
        counts = EventCounts(
            successes_d=successes_d,
            trials_d=trials_d,
            successes_d_prime=successes_d_prime,
            trials_d_prime=trials_d_prime,
        )
        score, _ = directed_lower_bound(counts, _SCORE_ALPHA)
        scored.append((score, label, event))
    scored.sort(key=lambda item: (-item[0], item[1]))
    return tuple(event for _, _, event in scored[:max_events])
