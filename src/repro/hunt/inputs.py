"""Neighbouring-database pair generators for the dynamic hunter.

A dynamic counterexample search needs candidate *input* pairs before it can
look for candidate *events*.  Following StatDP, the generators here apply a
small set of structured perturbation patterns to a base query vector --
patterns that between them exercise every alignment strategy a mechanism
could rely on (shift everything, shift one, split the stream, oppose the
answered query against the rest):

========================  ==============================================
category                  ``Delta`` applied to obtain ``D'``
========================  ==============================================
``one-above``             first query ``+s``, rest unchanged
``one-below``             first query ``-s``, rest unchanged
``one-above-rest-below``  first query ``+s``, rest ``-s``
``one-below-rest-above``  first query ``-s``, rest ``+s``
``half-half``             first ``ceil(n/2)`` queries ``+s``, rest ``-s``
``all-above``             every query ``+s``
``all-below``             every query ``-s``
``all-same-one-up``       both databases flattened to the base mean;
                          ``D'`` additionally moves the first query ``+s``
========================  ==============================================

The adjacency model matches :func:`repro.privcheck.symbolic.perturbation_cases`
exactly: general workloads allow ``Delta_i`` anywhere in ``[-s, s]``, while
monotonic workloads move every query the same direction -- so for a
monotonic mechanism only the single-signed categories are generated, and a
"witness" that mixes directions can never be produced against a mechanism
whose claim does not cover it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.api.specs import MechanismSpec

__all__ = ["NeighbouringPair", "generate_pairs", "pair_specs"]

#: Categories whose per-query deltas all share one sign (or are zero);
#: the only ones admissible against a monotonic privacy claim.
_SINGLE_SIGNED = (
    "one-above",
    "one-below",
    "all-above",
    "all-below",
    "all-same-one-up",
)


@dataclass(frozen=True)
class NeighbouringPair:
    """One adjacent database pair ``(D, D')`` with its generating category."""

    category: str
    queries_d: Tuple[float, ...]
    queries_d_prime: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.queries_d) != len(self.queries_d_prime):
            raise ValueError(
                "a neighbouring pair must answer the same queries: "
                f"got lengths {len(self.queries_d)} and {len(self.queries_d_prime)}"
            )

    def describe(self) -> str:
        return self.category

    def max_delta(self) -> float:
        return max(
            abs(a - b) for a, b in zip(self.queries_d, self.queries_d_prime)
        )


def _apply(base: Tuple[float, ...], deltas: Tuple[float, ...]) -> Tuple[float, ...]:
    return tuple(q + d for q, d in zip(base, deltas))


def generate_pairs(
    queries,
    sensitivity: float,
    monotonic: bool,
) -> Tuple[NeighbouringPair, ...]:
    """All candidate pairs for a base query vector under the adjacency model.

    ``D`` is always the base vector itself (except for ``all-same-one-up``,
    which flattens both sides to the base mean first), and ``D'`` applies
    the category's delta pattern at full sensitivity -- the worst case the
    claim must absorb, and per the alignment templates the place where a
    broken mechanism's probability ratio peaks.
    """
    base = tuple(float(q) for q in queries)
    n = len(base)
    if n == 0:
        raise ValueError("need at least one query to build neighbouring pairs")
    s = float(sensitivity)
    if s <= 0:
        raise ValueError(f"sensitivity must be positive, got {s}")

    up = (s,) + (0.0,) * (n - 1)
    down = (-s,) + (0.0,) * (n - 1)
    patterns: List[Tuple[str, Tuple[float, ...]]] = [
        ("one-above", up),
        ("one-below", down),
        ("all-above", (s,) * n),
        ("all-below", (-s,) * n),
    ]
    if n > 1:
        patterns.append(("one-above-rest-below", (s,) + (-s,) * (n - 1)))
        patterns.append(("one-below-rest-above", (-s,) + (s,) * (n - 1)))
        half = math.ceil(n / 2)
        patterns.append(("half-half", (s,) * half + (-s,) * (n - half)))

    pairs: List[NeighbouringPair] = []
    for category, deltas in patterns:
        if monotonic and category not in _SINGLE_SIGNED:
            continue
        pairs.append(
            NeighbouringPair(
                category=category,
                queries_d=base,
                queries_d_prime=_apply(base, deltas),
            )
        )

    flat = (sum(base) / n,) * n
    pairs.append(
        NeighbouringPair(
            category="all-same-one-up",
            queries_d=flat,
            queries_d_prime=_apply(flat, up),
        )
    )
    return tuple(pairs)


def pair_specs(
    spec: MechanismSpec, pair: NeighbouringPair
) -> Tuple[MechanismSpec, MechanismSpec]:
    """The two concrete specs whose runs realize ``M(D)`` and ``M(D')``.

    Everything except the query vector -- epsilon, threshold, ``k``,
    monotonic flag, sensitivity -- is inherited from ``spec``, so the two
    sides differ in exactly the adjacency perturbation and nothing else.
    """
    return (
        replace(spec, queries=pair.queries_d),
        replace(spec, queries=pair.queries_d_prime),
    )
