"""The dynamic verdict table and its cross-check against the static one.

The hunter's output is only trustworthy relative to an oracle: the static
verifier (:mod:`repro.privcheck`) proves or refutes every catalogued
mechanism from the paper's alignment theory alone, without running it.
Here the two are forced to agree:

* a mechanism the static analysis *refuted* must yield a dynamic witness
  -- a concrete input pair, event and empirical epsilon bound above the
  claim at the family-wise confidence level;
* a mechanism the static analysis *verified* must survive the hunt.

Any disagreement -- in either direction -- raises
:class:`HuntDisagreementError`, which the CLI maps to exit code 2, the
same contract ``verify-privacy`` has with its documented-status column.
A hunter that silently under-hunts (schedules too short to find the
variant-3 witness, an event family that cannot express it) therefore
fails loudly instead of printing a reassuring table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.hunt.campaign import CampaignOutcome, HuntEntry, pair_arrow
from repro.privcheck.verdicts import Verdict, verify_spec

__all__ = [
    "HuntDisagreementError",
    "HuntRow",
    "cross_check",
    "render_hunt_table",
    "require_agreement",
]


class HuntDisagreementError(RuntimeError):
    """Raised when a dynamic outcome contradicts its static verdict."""


@dataclass(frozen=True)
class HuntRow:
    """One mechanism's static verdict next to its dynamic outcome."""

    label: str
    static: Verdict
    dynamic: CampaignOutcome

    @property
    def agrees(self) -> bool:
        # verified statically <=> survived dynamically
        return self.static.verified == (self.dynamic.witness is None)

    def evidence(self) -> str:
        witness = self.dynamic.witness
        if witness is None:
            return (
                f"no witness in {self.dynamic.total_trials} trials "
                f"({self.dynamic.rounds_completed} round(s))"
            )
        return (
            f"eps >= {witness.epsilon_bound:.3f} "
            f"[{witness.event}] on {pair_arrow(witness.pair)}"
        )


def cross_check(
    entries: Sequence[HuntEntry],
    outcomes: Sequence[CampaignOutcome],
) -> Tuple[HuntRow, ...]:
    """Pair every dynamic outcome with a freshly computed static verdict.

    The static verdict is recomputed on the *hunt's* spec (not the
    default catalogue's) so the comparison is apples to apples: the two
    tables share labels and structural parameters but the hunt tunes its
    query vectors, which the static analysis never reads.
    """
    if len(entries) != len(outcomes):
        raise ValueError(
            f"got {len(entries)} entries but {len(outcomes)} outcomes"
        )
    rows: List[HuntRow] = []
    for entry, outcome in zip(entries, outcomes):
        if entry.label != outcome.label:
            raise ValueError(
                f"entry/outcome order mismatch: {entry.label!r} vs "
                f"{outcome.label!r}"
            )
        static = verify_spec(entry.spec, label=entry.label)
        rows.append(HuntRow(label=entry.label, static=static, dynamic=outcome))
    return tuple(rows)


def render_hunt_table(rows: Sequence[HuntRow]) -> str:
    """Fixed-width dynamic-vs-static verdict table (verify-privacy style)."""
    table = [("mechanism", "claimed", "static", "dynamic", "evidence")]
    for row in rows:
        table.append(
            (
                row.label,
                f"{row.dynamic.claimed_epsilon:g}-DP",
                row.static.status,
                row.dynamic.dynamic_status,
                row.evidence() + ("" if row.agrees else "  ** DISAGREES **"),
            )
        )
    widths = [max(len(line[column]) for line in table) for column in range(4)]
    lines = []
    for index, line in enumerate(table):
        lines.append(
            "  ".join(
                (
                    line[0].ljust(widths[0]),
                    line[1].ljust(widths[1]),
                    line[2].ljust(widths[2]),
                    line[3].ljust(widths[3]),
                    line[4],
                )
            ).rstrip()
        )
        if index == 0:
            lines.append(
                "  ".join(("-" * width for width in widths)) + "  --------"
            )
    return "\n".join(lines)


def require_agreement(rows: Sequence[HuntRow]) -> None:
    """Raise :class:`HuntDisagreementError` naming every contradiction."""
    disagreements = [row for row in rows if not row.agrees]
    if not disagreements:
        return
    details = []
    for row in disagreements:
        expectation = (
            "statically verified but a dynamic witness was found"
            if row.static.verified
            else "statically refuted but no dynamic witness was found"
        )
        details.append(f"{row.label}: {expectation} ({row.evidence()})")
    raise HuntDisagreementError(
        "dynamic hunt disagrees with static verdicts on "
        f"{len(disagreements)} mechanism(s): " + "; ".join(details)
    )
