"""Hypothesis testing for empirical epsilon lower bounds.

The dynamic hunter claims a violation only when it can *prove* one
statistically: an event ``E`` and a neighbouring pair ``(D, D')`` such that

    ln( P[M(D) in E] / P[M(D') in E] ) > epsilon

holds at the requested confidence.  This module owns all of the statistics
behind that claim, shared by :mod:`repro.hunt.campaign` and (via a lazy
import) :class:`repro.alignment.verifier.EmpiricalDPVerifier`, so there is
exactly one hypothesis-testing implementation in the repository:

* exact Clopper--Pearson binomial confidence intervals, built on a
  self-contained regularized incomplete beta function (no scipy);
* the one-sided epsilon lower bound ``ln(lower(p1) / upper(p2))`` with the
  error budget split between the two intervals;
* a p-value for ``H0: the mechanism satisfies epsilon-DP on (D, D', E)``,
  obtained by inverting the bound in its confidence level;
* Holm step-down correction across the candidate events tested on one
  pair, so hunting many events does not inflate the false-witness rate.

Everything here is a pure function of its arguments -- no clocks, no RNG --
which is what makes a seeded hunt a replayable artifact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "EventCounts",
    "TestOutcome",
    "betainc",
    "beta_ppf",
    "clopper_pearson",
    "epsilon_lower_bound",
    "epsilon_p_value",
    "holm_reject",
    "test_events",
]

#: Iteration caps for the continued fraction / bisection.  Both converge
#: far earlier for every input the hunter produces; the caps only bound
#: pathological parameters.
_CF_MAX_ITER = 300
_BISECT_ITER = 80
_TINY = 1e-308


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's algorithm)."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _TINY:
        d = _TINY
    d = 1.0 / d
    h = d
    for m in range(1, _CF_MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h


def betainc(a: float, b: float, x: float) -> float:
    """The regularized incomplete beta function ``I_x(a, b)``.

    ``I_x(a, b)`` is the CDF of a Beta(a, b) variable at ``x``; through the
    identity ``P[Bin(n, p) <= k] = I_{1-p}(n-k, k+1)`` it carries the exact
    binomial tail probabilities the Clopper--Pearson interval is built on.
    """
    if a <= 0 or b <= 0:
        raise ValueError(f"betainc requires positive shape parameters, got ({a}, {b})")
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    # The continued fraction converges fast only on one side of the mean;
    # use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) on the other.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def beta_ppf(q: float, a: float, b: float) -> float:
    """The quantile (inverse CDF) of Beta(a, b), by bisection on ``betainc``.

    Bisection rather than Newton: unconditionally convergent, deterministic
    to the last bit for fixed inputs, and fast enough (80 halvings) for the
    handful of interval evaluations a hunt round performs.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must lie in [0, 1], got {q}")
    if q == 0.0:
        return 0.0
    if q == 1.0:
        return 1.0
    lo, hi = 0.0, 1.0
    for _ in range(_BISECT_ITER):
        mid = 0.5 * (lo + hi)
        if betainc(a, b, mid) < q:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def clopper_pearson(
    successes: int, trials: int, alpha: float
) -> tuple:
    """The exact two-sided ``1 - alpha`` Clopper--Pearson interval.

    Returns ``(lower, upper)`` for the success probability of a binomial
    sample with ``successes`` hits in ``trials`` draws.  The endpoints are
    the classic beta quantiles; 0 hits pins the lower bound to 0 and
    ``trials`` hits pins the upper bound to 1.
    """
    successes = int(successes)
    trials = int(trials)
    if trials < 1:
        raise ValueError(f"trials must be at least 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must lie in [0, {trials}], got {successes}"
        )
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    if successes == 0:
        lower = 0.0
    else:
        lower = beta_ppf(alpha / 2.0, successes, trials - successes + 1)
    if successes == trials:
        upper = 1.0
    else:
        upper = beta_ppf(1.0 - alpha / 2.0, successes + 1, trials - successes)
    return lower, upper


@dataclass(frozen=True)
class EventCounts:
    """Occurrence counts of one event on a neighbouring pair's test data."""

    successes_d: int
    trials_d: int
    successes_d_prime: int
    trials_d_prime: int

    def swapped(self) -> "EventCounts":
        return EventCounts(
            successes_d=self.successes_d_prime,
            trials_d=self.trials_d_prime,
            successes_d_prime=self.successes_d,
            trials_d_prime=self.trials_d,
        )


def _one_sided_lower(successes: int, trials: int, alpha: float) -> float:
    if successes == 0:
        return 0.0
    return beta_ppf(alpha, successes, trials - successes + 1)


def _one_sided_upper(successes: int, trials: int, alpha: float) -> float:
    if successes == trials:
        return 1.0
    return beta_ppf(1.0 - alpha, successes + 1, trials - successes)


def epsilon_lower_bound(counts: EventCounts, alpha: float) -> float:
    """A ``1 - alpha`` confidence lower bound on ``ln(P1[E] / P2[E])``.

    Splits the error budget between a one-sided lower bound on ``P1`` and a
    one-sided upper bound on ``P2`` (union bound), so
    ``P[bound > true log-ratio] <= alpha``.  Returns ``-inf`` when the
    favourable side produced no occurrences at all (nothing can be
    concluded from zero successes).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    p1_lo = _one_sided_lower(counts.successes_d, counts.trials_d, alpha / 2.0)
    p2_hi = _one_sided_upper(
        counts.successes_d_prime, counts.trials_d_prime, alpha / 2.0
    )
    if p1_lo <= 0.0:
        return float("-inf")
    return math.log(p1_lo) - math.log(p2_hi)


def directed_lower_bound(counts: EventCounts, alpha: float) -> tuple:
    """The better of the two directions: ``(bound, direction)``.

    ``direction`` is ``+1`` when the event is over-represented under ``D``
    and ``-1`` when under ``D'``; the DP inequality is symmetric in the
    pair, so a violation in either direction is a witness.
    """
    forward = epsilon_lower_bound(counts, alpha)
    backward = epsilon_lower_bound(counts.swapped(), alpha)
    if backward > forward:
        return backward, -1
    return forward, +1


def epsilon_p_value(counts: EventCounts, claimed_epsilon: float) -> float:
    """The smallest level at which the bound exceeds ``claimed_epsilon``.

    ``epsilon_lower_bound`` is monotone increasing in ``alpha`` (looser
    confidence, tighter interval), so the p-value of ``H0: the log-ratio is
    at most claimed_epsilon`` is found by bisection over the level.  A
    p-value of 1.0 means even the trivial interval cannot exceed the claim.
    """
    if claimed_epsilon < 0:
        raise ValueError(f"claimed_epsilon must be non-negative, got {claimed_epsilon}")

    def exceeds(alpha: float) -> bool:
        bound, _ = directed_lower_bound(counts, alpha)
        return bound > claimed_epsilon

    if not exceeds(1.0 - 1e-9):
        return 1.0
    lo, hi = 1e-12, 1.0 - 1e-9
    if exceeds(lo):
        return lo
    for _ in range(60):
        mid = math.sqrt(lo * hi)  # bisect in log space: p-values span decades
        if exceeds(mid):
            hi = mid
        else:
            lo = mid
    return hi


def holm_reject(p_values: Sequence[float], alpha: float) -> List[bool]:
    """Holm step-down rejections at family-wise level ``alpha``.

    Orders the m hypotheses by p-value and compares the i-th smallest
    against ``alpha / (m - i)`` (0-indexed), stopping at the first failure;
    ties are broken by the original index so a fixed input always yields
    the same rejection set.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    m = len(p_values)
    rejected = [False] * m
    order = sorted(range(m), key=lambda i: (p_values[i], i))
    for rank, index in enumerate(order):
        threshold = alpha / (m - rank)
        if p_values[index] > threshold:
            break
        rejected[index] = True
    return rejected


@dataclass(frozen=True)
class TestOutcome:
    """The verdict on one candidate event after multiplicity correction.

    ``epsilon_bound`` is the lower confidence bound computed at the Holm
    threshold the event was actually tested against, so a rejected event's
    bound is an honest ``1 - alpha`` family-wise statement, not the
    uncorrected (optimistic) one.
    """

    index: int
    p_value: float
    rejected: bool
    epsilon_bound: float
    direction: int
    counts: EventCounts

    @property
    def exceeds_claim(self) -> bool:
        return self.rejected


def test_events(
    counts_list: Sequence[EventCounts],
    claimed_epsilon: float,
    alpha: float,
) -> List[TestOutcome]:
    """Test every candidate event on one pair's held-out data.

    Computes the per-event p-values, applies Holm at family-wise level
    ``alpha``, and reports for each event the epsilon lower bound at its
    Holm-adjusted level.  The events in ``counts_list`` must have been
    chosen without looking at this data (the campaign's train/test split
    enforces that) -- Holm corrects for testing many events, not for
    selecting them on the same sample.
    """
    p_values = [
        epsilon_p_value(counts, claimed_epsilon) for counts in counts_list
    ]
    rejections = holm_reject(p_values, alpha) if counts_list else []
    m = len(counts_list)
    order = sorted(range(m), key=lambda i: (p_values[i], i))
    rank_of = {index: rank for rank, index in enumerate(order)}
    outcomes: List[TestOutcome] = []
    for index, counts in enumerate(counts_list):
        level = alpha / (m - rank_of[index])
        bound, direction = directed_lower_bound(counts, level)
        outcomes.append(
            TestOutcome(
                index=index,
                p_value=p_values[index],
                rejected=rejections[index],
                epsilon_bound=bound,
                direction=direction,
                counts=counts,
            )
        )
    return outcomes


def train_test_counts(
    occurrences, split: int
) -> tuple:
    """Split one side's per-trial event vector into (train, test) counts.

    ``occurrences`` is a boolean array over trials; the first ``split``
    trials are the selection sample, the rest the held-out sample.  Kept
    here (rather than in the campaign) so the split discipline is part of
    the tested statistical core.
    """
    total = len(occurrences)
    if not 0 <= split <= total:
        raise ValueError(f"split must lie in [0, {total}], got {split}")
    train = int(sum(bool(x) for x in occurrences[:split]))
    test = int(sum(bool(x) for x in occurrences[split:]))
    return train, test


def smoothed_ratio(
    successes_d: int,
    successes_d_prime: int,
    denominator: float,
    smoothing: float,
) -> float:
    """The symmetric pseudo-count-smoothed probability ratio.

    The legacy reporting statistic of the empirical verifier (it reads
    better than a p-value in a failure message); the *decision* statistic
    is :func:`epsilon_lower_bound`.
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if smoothing <= 0:
        raise ValueError(f"smoothing must be positive, got {smoothing}")
    p = (successes_d + smoothing) / denominator
    p_prime = (successes_d_prime + smoothing) / denominator
    return max(p / p_prime, p_prime / p)


def required_level(
    counts: EventCounts, claimed_epsilon: float, alpha: float
) -> Optional[float]:
    """Convenience: the Holm-free decision at level ``alpha``.

    Returns the directed bound when it exceeds the claim at ``alpha`` and
    ``None`` otherwise -- the single-event path used by the rewired
    :class:`~repro.alignment.verifier.EmpiricalDPVerifier`.
    """
    bound, _ = directed_lower_bound(counts, alpha)
    if bound > claimed_epsilon:
        return bound
    return None
