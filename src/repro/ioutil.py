"""Crash-safe filesystem primitives shared by every layer.

The one copy of the temp-file + ``os.replace`` idiom (the ``atomic-write``
contract enforced by :mod:`repro.staticcheck`): a reader either sees the
old bytes or the new bytes, never a torn mixture, and a crashed writer
leaves at most an orphaned dotted temp file.  Lives at the bottom of the
stack (no ``repro`` imports) so the dataset writers, the dispatch cache
and the service layer's queue/manifest/marker writers can all share it
without importing across layers.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write bytes via temp file + ``os.replace``; the temp file is removed
    on any failure.  The one copy of the idiom for the cache's entries, the
    service layer's queue entries, manifests and markers, and the dataset
    writers."""
    path = Path(path)
    handle, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: Path, text: str, encoding: str = "utf-8") -> None:
    """Text counterpart of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))
