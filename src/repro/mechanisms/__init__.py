"""Baseline differentially private mechanisms.

These are the mechanisms the paper builds on and compares against:

* :class:`~repro.mechanisms.laplace_mechanism.LaplaceMechanism` -- noisy
  answers to a vector of queries (Theorem 1 of the paper); used for the
  "measurement" half of the selection-then-measure experiments.
* :class:`~repro.mechanisms.noisy_max.ReportNoisyMax` and
  :class:`~repro.mechanisms.noisy_max.NoisyTopK` -- the classical selection
  mechanisms that return only the identities of the largest queries,
  discarding the gap information.
* :class:`~repro.mechanisms.sparse_vector.SparseVector` -- the standard SVT
  (Lyu et al.'s Algorithm 1), the non-adaptive, gap-free baseline.
* :class:`~repro.mechanisms.sparse_vector.SparseVectorWithGap` -- the
  Sparse-Vector-with-Gap of Wang et al., which releases gaps but is not
  adaptive.
* :class:`~repro.mechanisms.exponential.ExponentialMechanism` -- the classic
  selection mechanism of McSherry & Talwar, provided for completeness as the
  third member of the selection-mechanism family discussed in Related Work.

The paper's own contributions (Noisy-Top-K-with-Gap and
Adaptive-Sparse-Vector-with-Gap) live in :mod:`repro.core`.
"""

from repro.mechanisms.laplace_mechanism import LaplaceMechanism, MeasurementResult
from repro.mechanisms.noisy_max import NoisyTopK, ReportNoisyMax, SelectionResult
from repro.mechanisms.sparse_vector import (
    SparseVector,
    SparseVectorWithGap,
    SvtOutcome,
    SvtResult,
)
from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.svt_variants import (
    SVT_VARIANT_CATALOGUE,
    SvtVariant1,
    SvtVariant2,
    SvtVariant3,
    SvtVariant4,
    SvtVariant5,
    SvtVariant6,
    make_svt_variant,
)

__all__ = [
    "LaplaceMechanism",
    "MeasurementResult",
    "ReportNoisyMax",
    "NoisyTopK",
    "SelectionResult",
    "SparseVector",
    "SparseVectorWithGap",
    "SvtOutcome",
    "SvtResult",
    "ExponentialMechanism",
    "SVT_VARIANT_CATALOGUE",
    "SvtVariant1",
    "SvtVariant2",
    "SvtVariant3",
    "SvtVariant4",
    "SvtVariant5",
    "SvtVariant6",
    "make_svt_variant",
]
