"""The exponential mechanism of McSherry & Talwar.

Included as the third classical selection mechanism discussed in the paper's
Related Work section.  Given a utility score per candidate, the exponential
mechanism samples candidate ``i`` with probability proportional to
``exp(epsilon * u_i / (2 * sensitivity))``, which is epsilon-DP (and
(epsilon/2)-DP for monotonic utilities, mirroring the Noisy Max accounting).

It is useful in this library both as a baseline selector in examples and as a
sanity check: on well-separated score vectors Report Noisy Max and the
exponential mechanism should agree with high probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.mechanisms.results import MechanismMetadata
from repro.primitives.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class ExponentialSelection:
    """Output of the exponential mechanism.

    Attributes
    ----------
    index:
        The selected candidate index.
    probabilities:
        The full sampling distribution (useful for analysis; note this is a
        deterministic post-processing of public parameters and the private
        scores, so it is reported only for testing/diagnostics and should not
        be released in a real deployment).
    metadata:
        Privacy metadata of the release.
    """

    index: int
    probabilities: np.ndarray
    metadata: MechanismMetadata


class ExponentialMechanism:
    """Select a candidate with probability exponential in its utility.

    Parameters
    ----------
    epsilon:
        Privacy budget charged for one selection.
    sensitivity:
        Sensitivity of the utility scores (defaults to 1).
    monotonic:
        Whether the utility scores form a monotonic list, enabling the
        factor-of-two improvement in the exponent.
    """

    name = "exponential-mechanism"

    def __init__(
        self,
        epsilon: float,
        sensitivity: float = 1.0,
        monotonic: bool = False,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self.epsilon = float(epsilon)
        self.sensitivity = float(sensitivity)
        self.monotonic = bool(monotonic)

    def selection_probabilities(self, utilities: Union[Sequence[float], np.ndarray]) -> np.ndarray:
        """The sampling distribution over candidates for the given utilities."""
        scores = np.asarray(utilities, dtype=float)
        if scores.ndim != 1 or scores.size == 0:
            raise ValueError("utilities must be a non-empty one-dimensional vector")
        factor = 1.0 if self.monotonic else 2.0
        exponent = self.epsilon * scores / (factor * self.sensitivity)
        # Standard log-sum-exp stabilisation.
        exponent -= exponent.max()
        weights = np.exp(exponent)
        return weights / weights.sum()

    def select(
        self,
        utilities: Union[Sequence[float], np.ndarray],
        rng: RngLike = None,
    ) -> ExponentialSelection:
        """Sample one candidate index according to the exponential mechanism."""
        probabilities = self.selection_probabilities(utilities)
        generator = ensure_rng(rng)
        index = int(generator.choice(probabilities.size, p=probabilities))
        metadata = MechanismMetadata(
            mechanism=self.name,
            epsilon=self.epsilon,
            epsilon_spent=self.epsilon,
            monotonic=self.monotonic,
            extra={"num_candidates": float(probabilities.size)},
        )
        return ExponentialSelection(index=index, probabilities=probabilities, metadata=metadata)
