"""The vector Laplace mechanism (Theorem 1 of the paper).

Given a query vector with L1 sensitivity ``delta`` and a budget ``epsilon``,
the Laplace mechanism releases ``q(D) + Laplace(delta / epsilon)`` noise per
coordinate.  In the paper's selection-then-measure experiments the mechanism
is used to measure the ``k`` selected queries: the measurement half of the
budget, ``epsilon/2``, is divided evenly so each selected query receives
``Laplace(2k / epsilon)`` noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.mechanisms.results import MechanismMetadata, NoiseTrace
from repro.primitives.laplace import LaplaceNoise
from repro.primitives.rng import RngLike, ensure_rng
from repro.queries.workload import QueryWorkload


@dataclass(frozen=True)
class MeasurementResult:
    """Noisy measurements of a query vector.

    Attributes
    ----------
    values:
        The noisy answers, one per measured query.
    scale:
        The Laplace scale used for every coordinate.
    metadata:
        Privacy metadata for the release.
    noise_trace:
        The realised noise, for use by the alignment framework.
    """

    values: np.ndarray
    scale: float
    metadata: MechanismMetadata
    noise_trace: Optional[NoiseTrace] = None

    @property
    def variance(self) -> float:
        """Variance of each measurement (``2 * scale**2``)."""
        return 2.0 * self.scale**2

    def __len__(self) -> int:
        return int(np.asarray(self.values).size)


class LaplaceMechanism:
    """Releases noisy answers to a vector of queries.

    Parameters
    ----------
    epsilon:
        Total privacy budget for the release.
    l1_sensitivity:
        L1 sensitivity of the query *vector*.  For ``k`` counting queries
        measured together this is ``k`` (each record can change each count by
        at most one), which recovers the per-query ``Laplace(k / epsilon)``
        scale used in Section 6.2 and the ``Laplace(2k / epsilon)`` scale of
        Section 5.2 when ``epsilon`` is half the total budget.

    Examples
    --------
    >>> mech = LaplaceMechanism(epsilon=1.0, l1_sensitivity=2.0)
    >>> result = mech.release([10.0, 20.0], rng=0)
    >>> len(result.values)
    2
    """

    name = "laplace-mechanism"

    def __init__(self, epsilon: float, l1_sensitivity: float = 1.0) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if l1_sensitivity <= 0:
            raise ValueError(f"l1_sensitivity must be positive, got {l1_sensitivity}")
        self.epsilon = float(epsilon)
        self.l1_sensitivity = float(l1_sensitivity)
        self._noise = LaplaceNoise(self.l1_sensitivity / self.epsilon)

    @property
    def scale(self) -> float:
        """Per-coordinate Laplace scale ``l1_sensitivity / epsilon``."""
        return self._noise.scale

    @property
    def variance(self) -> float:
        """Per-coordinate noise variance."""
        return self._noise.variance

    def release(
        self,
        true_values: Union[Sequence[float], np.ndarray],
        rng: RngLike = None,
        noise: Optional[np.ndarray] = None,
    ) -> MeasurementResult:
        """Release noisy answers for ``true_values``.

        Parameters
        ----------
        true_values:
            The exact query answers to perturb.
        rng:
            Seed or generator for reproducibility.
        noise:
            Optional explicit noise vector (used by the alignment framework
            to replay an execution); must have the same length as
            ``true_values``.
        """
        values = np.asarray(true_values, dtype=float)
        if values.ndim != 1:
            raise ValueError("true_values must be a one-dimensional vector")
        if noise is None:
            generator = ensure_rng(rng)
            noise = np.asarray(self._noise.sample(size=values.size, rng=generator))
        else:
            noise = np.asarray(noise, dtype=float)
            if noise.shape != values.shape:
                raise ValueError("explicit noise must match true_values in shape")
        noisy = values + noise
        trace = NoiseTrace(
            names=[f"measurement[{i}]" for i in range(values.size)],
            values=noise,
            scales=np.full(values.size, self.scale),
        )
        metadata = MechanismMetadata(
            mechanism=self.name,
            epsilon=self.epsilon,
            epsilon_spent=self.epsilon,
            extra={"l1_sensitivity": self.l1_sensitivity},
        )
        return MeasurementResult(values=noisy, scale=self.scale, metadata=metadata, noise_trace=trace)

    def measure_workload(
        self,
        workload: QueryWorkload,
        database,
        indices: Optional[Sequence[int]] = None,
        rng: RngLike = None,
    ) -> MeasurementResult:
        """Evaluate (a subset of) a workload on a database and release it.

        Parameters
        ----------
        workload:
            The query workload.
        database:
            Database the queries are evaluated on.
        indices:
            If given, only the queries at these positions are measured (the
            typical case after a selection step).
        rng:
            Seed or generator.
        """
        answers = workload.evaluate(database)
        if indices is not None:
            answers = answers[np.asarray(list(indices), dtype=int)]
        return self.release(answers, rng=rng)


def measurement_scale_for_split(total_epsilon: float, k: int) -> float:
    """Laplace scale for measuring k queries with half the total budget.

    This is the ``Laplace(2k / epsilon)`` convention of Section 5.2: the
    measurement half ``epsilon/2`` is split evenly over ``k`` sensitivity-1
    queries, so each gets scale ``2k / epsilon``.
    """
    if total_epsilon <= 0:
        raise ValueError("total_epsilon must be positive")
    if k < 1:
        raise ValueError("k must be at least 1")
    return 2.0 * k / total_epsilon
