"""Classical Report Noisy Max and Noisy Top-K (the gap-free baselines).

Report Noisy Max adds Laplace noise to each query answer and releases the
*index* of the largest noisy value; Noisy Top-K iterates this idea to release
the indexes of the top ``k`` noisy values.  Both discard the noisy values
themselves -- in particular the gap between the winner and the runner-up --
which is exactly the information the paper shows can be released for free
(see :mod:`repro.core.noisy_top_k`).

Privacy accounting follows Section 5 of the paper: with per-query noise
``Laplace(2k / epsilon)`` the release of the k indexes is epsilon-DP in
general and (epsilon/2)-DP when the query list is monotonic (e.g. counting
queries).  Equivalently, for a target budget ``epsilon`` on monotonic
queries one may use ``Laplace(k / epsilon)`` noise; this implementation
always takes ``epsilon`` as the *charged* budget and selects the noise scale
accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.mechanisms.results import MechanismMetadata, NoiseTrace
from repro.primitives.laplace import LaplaceNoise
from repro.primitives.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class SelectionResult:
    """Output of a selection mechanism (Noisy Max / Noisy Top-K).

    Attributes
    ----------
    indices:
        Indexes of the selected queries, in descending noisy-value order.
    gaps:
        Noisy gaps between consecutive selected queries (and, for the last
        selected query, the best unselected one).  Empty for the gap-free
        baselines; filled by Noisy-Top-K-with-Gap.
    metadata:
        Privacy metadata of the release.
    noise_trace:
        Realised noise, for the alignment framework.
    """

    indices: List[int]
    gaps: np.ndarray
    metadata: MechanismMetadata
    noise_trace: Optional[NoiseTrace] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", [int(i) for i in self.indices])
        object.__setattr__(self, "gaps", np.asarray(self.gaps, dtype=float))

    @property
    def k(self) -> int:
        """Number of selected queries."""
        return len(self.indices)

    def pairwise_gap(self, a: int, b: int) -> float:
        """Estimated gap between the a-th and b-th selected queries (0-based).

        Section 5.1 of the paper notes that the gap between the a-th and b-th
        largest selected queries is the sum of the consecutive gaps between
        them, with variance ``16 k^2 / epsilon^2`` regardless of ``a, b``.
        Only available when gaps were released.
        """
        if self.gaps.size == 0:
            raise ValueError("this selection did not release gap information")
        if not 0 <= a < b <= self.gaps.size:
            raise ValueError(
                f"need 0 <= a < b <= {self.gaps.size}, got a={a}, b={b}"
            )
        return float(np.sum(self.gaps[a:b]))


def noise_scale_for_top_k(epsilon: float, k: int, monotonic: bool) -> float:
    """Per-query Laplace scale so that releasing the top-k costs ``epsilon``.

    The paper's Algorithm 1 uses ``Laplace(2k/epsilon)`` noise and charges
    ``epsilon`` in general or ``epsilon/2`` for monotonic queries.  To charge
    exactly ``epsilon`` for monotonic queries one can equivalently halve the
    scale to ``k/epsilon``; this helper returns the scale for a *charged*
    budget of ``epsilon``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if k < 1:
        raise ValueError("k must be at least 1")
    return (k if monotonic else 2.0 * k) / epsilon


class NoisyTopK:
    """The classical (gap-free) Noisy Top-K selection mechanism.

    Parameters
    ----------
    epsilon:
        Privacy budget charged for the selection.
    k:
        Number of queries to select.
    monotonic:
        Whether the query list is monotonic (Definition 7); enables the
        improved accounting (equivalently, half the noise scale for the same
        charged budget).
    sensitivity:
        Per-query sensitivity (defaults to 1, as assumed by the paper).
    """

    name = "noisy-top-k"
    releases_gaps = False

    def __init__(
        self,
        epsilon: float,
        k: int = 1,
        monotonic: bool = False,
        sensitivity: float = 1.0,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self.epsilon = float(epsilon)
        self.k = int(k)
        self.monotonic = bool(monotonic)
        self.sensitivity = float(sensitivity)
        self.scale = noise_scale_for_top_k(epsilon, k, monotonic) * self.sensitivity
        self._noise = LaplaceNoise(self.scale)

    # -- internals shared with the with-gap subclass -------------------------------

    def _noisy_values(
        self,
        true_values: np.ndarray,
        rng: RngLike,
        noise: Optional[np.ndarray],
    ) -> (np.ndarray, np.ndarray):
        if noise is None:
            generator = ensure_rng(rng)
            noise = np.asarray(self._noise.sample(size=true_values.size, rng=generator))
        else:
            noise = np.asarray(noise, dtype=float)
            if noise.shape != true_values.shape:
                raise ValueError("explicit noise must match true_values in shape")
        return true_values + noise, noise

    def _top_indices(self, noisy: np.ndarray, count: int) -> np.ndarray:
        """Indexes of the ``count`` largest noisy values, in descending order."""
        count = min(count, noisy.size)
        order = np.argsort(noisy, kind="stable")[::-1]
        return order[:count]

    def _metadata(self, extra: Optional[dict] = None) -> MechanismMetadata:
        return MechanismMetadata(
            mechanism=self.name,
            epsilon=self.epsilon,
            epsilon_spent=self.epsilon,
            monotonic=self.monotonic,
            extra={"k": float(self.k), "scale": self.scale, **(extra or {})},
        )

    def _trace(self, noise: np.ndarray) -> NoiseTrace:
        return NoiseTrace(
            names=[f"query[{i}]" for i in range(noise.size)],
            values=noise,
            scales=np.full(noise.size, self.scale),
        )

    # -- public API -----------------------------------------------------------------

    def select(
        self,
        true_values: Union[Sequence[float], np.ndarray],
        rng: RngLike = None,
        noise: Optional[np.ndarray] = None,
    ) -> SelectionResult:
        """Select the (approximate) top-k queries from ``true_values``.

        Parameters
        ----------
        true_values:
            Exact query answers.
        rng:
            Seed or generator.
        noise:
            Optional explicit noise vector used to replay an execution.
        """
        values = np.asarray(true_values, dtype=float)
        if values.ndim != 1:
            raise ValueError("true_values must be a one-dimensional vector")
        if values.size < self.k:
            raise ValueError(
                f"need at least k={self.k} queries, got {values.size}"
            )
        noisy, noise = self._noisy_values(values, rng, noise)
        winners = self._top_indices(noisy, self.k)
        return SelectionResult(
            indices=list(winners),
            gaps=np.asarray([], dtype=float),
            metadata=self._metadata(),
            noise_trace=self._trace(noise),
        )


class ReportNoisyMax(NoisyTopK):
    """Report Noisy Max: the k = 1 special case of Noisy Top-K."""

    name = "report-noisy-max"

    def __init__(
        self,
        epsilon: float,
        monotonic: bool = False,
        sensitivity: float = 1.0,
    ) -> None:
        super().__init__(epsilon, k=1, monotonic=monotonic, sensitivity=sensitivity)

    def select_index(
        self,
        true_values: Union[Sequence[float], np.ndarray],
        rng: RngLike = None,
    ) -> int:
        """Return just the index of the (approximately) largest query."""
        return self.select(true_values, rng=rng).indices[0]
