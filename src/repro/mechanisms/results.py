"""Shared result containers for selection and measurement mechanisms.

Every mechanism in the library returns a structured result object rather than
a bare tuple so that downstream code (post-processing, the experiment
harness, the alignment checker) can access the pieces it needs by name and so
that the privacy cost of a release travels with the release itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class NoiseTrace:
    """Record of the noise a mechanism drew, for the alignment framework.

    The alignment checker (:mod:`repro.alignment`) re-executes mechanisms
    with explicitly supplied noise vectors; mechanisms optionally attach the
    noise they actually used so that alignment functions can be evaluated on
    realised executions.

    Attributes
    ----------
    names:
        A label per noise coordinate (e.g. ``"threshold"``, ``"query[3]"``).
    values:
        The realised noise values, in draw order.
    scales:
        The Laplace scale used for each coordinate (the ``alpha_i`` of
        Definition 6, used to price alignment shifts).
    """

    names: List[str]
    values: np.ndarray
    scales: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        scales = np.asarray(self.scales, dtype=float)
        if len(self.names) != values.size or values.size != scales.size:
            raise ValueError("names, values and scales must have equal length")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "scales", scales)

    def __len__(self) -> int:
        return int(self.values.size)

    def alignment_cost(self, shifted_values: np.ndarray) -> float:
        """Cost (Definition 6) of moving this trace to ``shifted_values``."""
        shifted = np.asarray(shifted_values, dtype=float)
        if shifted.shape != self.values.shape:
            raise ValueError("shifted noise vector has the wrong shape")
        return float(np.sum(np.abs(shifted - self.values) / self.scales))


@dataclass(frozen=True)
class MechanismMetadata:
    """Privacy metadata attached to every mechanism result.

    Attributes
    ----------
    mechanism:
        Name of the mechanism that produced the release.
    epsilon:
        The privacy budget the release was charged against.
    epsilon_spent:
        The budget actually consumed (equal to ``epsilon`` for the
        non-adaptive mechanisms; possibly smaller for
        Adaptive-Sparse-Vector-with-Gap).
    monotonic:
        Whether the monotonic-query accounting was applied.
    extra:
        Free-form additional fields (e.g. the k used, branch counts).
    """

    mechanism: str
    epsilon: float
    epsilon_spent: float
    monotonic: bool = False
    extra: Dict[str, float] = field(default_factory=dict)
