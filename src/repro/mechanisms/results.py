"""Shared result containers for selection and measurement mechanisms.

Every mechanism in the library returns a structured result object rather than
a bare tuple so that downstream code (post-processing, the experiment
harness, the alignment checker) can access the pieces it needs by name and so
that the privacy cost of a release travels with the release itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True, slots=True)
class NoiseTrace:
    """Record of the noise a mechanism drew, for the alignment framework.

    The alignment checker (:mod:`repro.alignment`) re-executes mechanisms
    with explicitly supplied noise vectors; mechanisms optionally attach the
    noise they actually used so that alignment functions can be evaluated on
    realised executions.

    Attributes
    ----------
    names:
        A label per noise coordinate (e.g. ``"threshold"``, ``"query[3]"``).
    values:
        The realised noise values, in draw order.
    scales:
        The Laplace scale used for each coordinate (the ``alpha_i`` of
        Definition 6, used to price alignment shifts).
    """

    names: List[str]
    values: np.ndarray
    scales: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        scales = np.asarray(self.scales, dtype=float)
        if len(self.names) != values.size or values.size != scales.size:
            raise ValueError("names, values and scales must have equal length")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "scales", scales)

    def __len__(self) -> int:
        return int(self.values.size)

    def alignment_cost(self, shifted_values: np.ndarray) -> float:
        """Cost (Definition 6) of moving this trace to ``shifted_values``."""
        shifted = np.asarray(shifted_values, dtype=float)
        if shifted.shape != self.values.shape:
            raise ValueError("shifted noise vector has the wrong shape")
        return float(np.sum(np.abs(shifted - self.values) / self.scales))


@dataclass(frozen=True)
class MechanismMetadata:
    """Privacy metadata attached to every mechanism result.

    Attributes
    ----------
    mechanism:
        Name of the mechanism that produced the release.
    epsilon:
        The privacy budget the release was charged against.
    epsilon_spent:
        The budget actually consumed (equal to ``epsilon`` for the
        non-adaptive mechanisms; possibly smaller for
        Adaptive-Sparse-Vector-with-Gap).
    monotonic:
        Whether the monotonic-query accounting was applied.
    extra:
        Free-form additional fields (e.g. the k used, branch counts).
    """

    mechanism: str
    epsilon: float
    epsilon_spent: float
    monotonic: bool = False
    extra: Dict[str, float] = field(default_factory=dict)


class BatchTrialViews:
    """Shared accessors over batched, padded per-trial result arrays.

    Mixed into every container whose fields follow the batch conventions --
    ``indices`` ``(B, w)`` right-padded with ``-1``, ``gaps`` ``(B, w)``
    ``NaN``-padded, optional ``branches`` ``(B, n)`` with the ``BRANCH_*``
    codes, scalar ``epsilon`` and per-trial ``epsilon_spent`` -- so the
    padding/branch semantics live in exactly one place
    (:class:`BatchResult` here and :class:`repro.api.result.Result` both use
    it).
    """

    __slots__ = ()

    BRANCH_BOTTOM = 0
    BRANCH_MIDDLE = 1
    BRANCH_TOP = 2

    @property
    def num_answered(self) -> np.ndarray:
        """``(B,)`` -- number of selected/above-threshold answers per trial."""
        return np.count_nonzero(self.indices >= 0, axis=1)

    @property
    def remaining_budget_fraction(self) -> np.ndarray:
        """``(B,)`` -- fraction of the budget left unused (Figure 4 metric)."""
        return np.maximum(0.0, self.epsilon - self.epsilon_spent) / self.epsilon

    def trial_indices(self, b: int = 0) -> np.ndarray:
        """Selected indexes of trial ``b`` with the ``-1`` padding stripped."""
        row = self.indices[b]
        return row[row >= 0]

    def trial_gaps(self, b: int = 0) -> np.ndarray:
        """Released gaps of trial ``b`` with the ``NaN`` padding stripped."""
        row = self.gaps[b]
        return row[~np.isnan(row)]

    def branch_totals(self) -> Dict[int, np.ndarray]:
        """Per-trial above-threshold answer counts per branch code."""
        if self.branches is None:
            raise ValueError("this batch did not record branch information")
        return {
            code: np.count_nonzero(self.branches == code, axis=1)
            for code in (self.BRANCH_TOP, self.BRANCH_MIDDLE)
        }


@dataclass(frozen=True, slots=True)
class BatchResult(BatchTrialViews):
    """Vectorized outcome of ``B`` independent trials of one mechanism.

    The batch execution engine (:mod:`repro.engine.batch`) runs many
    independent Monte-Carlo trials of a mechanism as single matrix
    operations; this container is the array-of-structs counterpart of the
    per-trial :class:`SelectionResult`/``SvtResult`` objects.  All fields are
    arrays whose leading axis is the trial axis.

    Attributes
    ----------
    mechanism:
        Name of the mechanism that produced the trials.
    epsilon:
        Privacy budget each trial was charged against.
    epsilon_spent:
        ``(B,)`` -- budget actually consumed per trial (smaller than
        ``epsilon`` for the adaptive variant).
    indices:
        ``(B, k)`` integer matrix of selected/above-threshold query indexes
        per trial.  For the Noisy-Max family this is the selection order; for
        the SVT family it is stream order, right-padded with ``-1`` for
        trials that answered fewer than ``k`` queries.
    gaps:
        Released gaps aligned with ``indices`` (``NaN``-padded for the SVT
        family); ``(B, 0)`` when the mechanism releases no gaps.
    above:
        SVT family only: ``(B, n)`` boolean above-threshold mask restricted
        to each trial's processed prefix (``None`` for selection mechanisms).
    branches:
        SVT family only: ``(B, n)`` int8 branch codes within the processed
        prefix (:attr:`BRANCH_BOTTOM`/:attr:`BRANCH_MIDDLE`/:attr:`BRANCH_TOP`).
    processed:
        SVT family only: ``(B,)`` number of stream queries examined before
        each trial stopped.
    monotonic:
        Whether the monotonic-query accounting was applied.
    extra:
        Free-form additional fields (scales, thresholds, ...).
    """

    mechanism: str
    epsilon: float
    epsilon_spent: np.ndarray
    indices: np.ndarray
    gaps: np.ndarray
    above: Optional[np.ndarray] = None
    branches: Optional[np.ndarray] = None
    processed: Optional[np.ndarray] = None
    monotonic: bool = False
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "epsilon_spent", np.asarray(self.epsilon_spent, dtype=float))
        object.__setattr__(self, "indices", np.asarray(self.indices))
        object.__setattr__(self, "gaps", np.asarray(self.gaps, dtype=float))
        if self.indices.ndim != 2:
            raise ValueError("indices must be a (trials, k) matrix")
        if self.epsilon_spent.shape != (self.trials,):
            raise ValueError("epsilon_spent must have one entry per trial")

    @property
    def trials(self) -> int:
        """Number of independent trials in the batch (``B``)."""
        return int(self.indices.shape[0])
