"""Sparse Vector Technique baselines.

Two baselines are implemented:

* :class:`SparseVector` -- the standard SVT (Algorithm 1 of Lyu et al.,
  "Understanding the Sparse Vector Technique"), which releases only the
  above/below indicator for each query and stops after ``k`` above-threshold
  answers.
* :class:`SparseVectorWithGap` -- the Sparse-Vector-with-Gap of Wang et al.
  (PLDI 2019), recovered from the paper's Algorithm 2 by removing the top
  branch: when a query is above the noisy threshold, the noisy gap between
  the query and the threshold is released at no extra privacy cost.

Both use the threshold/query budget allocation ``epsilon_0 : epsilon_1``
controlled by the ``theta`` hyper-parameter, defaulting to the Lyu et al.
recommendation ``1 : k^(2/3)`` (monotonic) or ``1 : (2k)^(2/3)`` (general)
used in the paper's experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.mechanisms.results import MechanismMetadata, NoiseTrace
from repro.primitives.laplace import LaplaceNoise
from repro.primitives.rng import RngLike, ensure_rng


class SvtBranch(enum.Enum):
    """Which branch of the SVT loop produced an output item."""

    #: Query was above the noisy threshold using the cheap, high-noise test
    #: (only produced by Adaptive-Sparse-Vector-with-Gap's top branch).
    TOP = "top"
    #: Query was above the noisy threshold using the standard-noise test.
    MIDDLE = "middle"
    #: Query was below the noisy threshold; costs no budget.
    BOTTOM = "bottom"


@dataclass(frozen=True, slots=True)
class SvtOutcome:
    """Per-query outcome of a Sparse Vector run.

    The class uses ``__slots__`` (one outcome is allocated per processed
    stream query, so the Monte-Carlo harness creates millions of these).

    Attributes
    ----------
    index:
        Position of the query in the input stream.
    above:
        Whether the mechanism reported the query as above the threshold.
    gap:
        Noisy gap between query and threshold, when released (with-gap
        variants only; ``None`` otherwise, and always ``None`` for
        below-threshold outcomes).
    branch:
        Which branch produced the outcome (see :class:`SvtBranch`).
    budget_used:
        Privacy budget consumed by this individual outcome.
    """

    index: int
    above: bool
    gap: Optional[float]
    branch: SvtBranch
    budget_used: float


@dataclass(frozen=True)
class SvtResult:
    """Full output of a Sparse Vector run.

    Attributes
    ----------
    outcomes:
        One :class:`SvtOutcome` per processed query, in stream order.
    metadata:
        Privacy metadata; ``metadata.epsilon_spent`` is the budget actually
        consumed, which can be smaller than ``metadata.epsilon`` for the
        adaptive variant.
    noise_trace:
        Realised noise, for the alignment framework.
    """

    outcomes: List[SvtOutcome]
    metadata: MechanismMetadata
    noise_trace: Optional[NoiseTrace] = None

    @property
    def above_indices(self) -> List[int]:
        """Indexes reported above the threshold, in stream order."""
        return [o.index for o in self.outcomes if o.above]

    @property
    def gaps(self) -> List[float]:
        """Released gaps for above-threshold outcomes (with-gap variants)."""
        return [o.gap for o in self.outcomes if o.above and o.gap is not None]

    @property
    def num_answered(self) -> int:
        """Number of above-threshold answers produced."""
        return len(self.above_indices)

    @property
    def num_processed(self) -> int:
        """Number of queries examined before the mechanism stopped."""
        return len(self.outcomes)

    def branch_counts(self) -> dict:
        """Number of above-threshold answers per branch."""
        counts = {SvtBranch.TOP: 0, SvtBranch.MIDDLE: 0, SvtBranch.BOTTOM: 0}
        for outcome in self.outcomes:
            if outcome.above:
                counts[outcome.branch] += 1
        return counts

    @property
    def remaining_budget(self) -> float:
        """Unused budget (non-zero only for the adaptive variant)."""
        return max(0.0, self.metadata.epsilon - self.metadata.epsilon_spent)

    @property
    def remaining_budget_fraction(self) -> float:
        """Fraction of the total budget left unused (the Figure 4 metric)."""
        return self.remaining_budget / self.metadata.epsilon


def svt_budget_allocation(
    epsilon: float, k: int, monotonic: bool, theta: Optional[float] = None
) -> tuple:
    """Split ``epsilon`` into (threshold budget, per-run query budget).

    With ``theta`` unspecified the allocation follows the Lyu et al.
    recommendation used throughout the paper's experiments: the threshold
    receives ``epsilon / (1 + k^(2/3))`` for monotonic queries, or
    ``epsilon / (1 + (2k)^(2/3))`` otherwise, and the queries receive the
    rest.  An explicit ``theta`` in (0, 1) gives the threshold
    ``theta * epsilon`` instead (the hyper-parameter of Algorithm 2).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if k < 1:
        raise ValueError("k must be at least 1")
    if theta is None:
        ratio = k ** (2.0 / 3.0) if monotonic else (2.0 * k) ** (2.0 / 3.0)
        theta = 1.0 / (1.0 + ratio)
    if not 0.0 < theta < 1.0:
        raise ValueError(f"theta must lie in (0, 1), got {theta}")
    epsilon_threshold = theta * epsilon
    epsilon_queries = epsilon - epsilon_threshold
    return epsilon_threshold, epsilon_queries


class SparseVector:
    """The standard Sparse Vector Technique (gap-free, non-adaptive baseline).

    Finds (up to) the first ``k`` queries in a stream whose answers are
    likely above the public threshold ``T``, reporting only above/below
    indicators.  Satisfies ``epsilon``-differential privacy.

    Parameters
    ----------
    epsilon:
        Total privacy budget.
    threshold:
        The public threshold ``T``.
    k:
        Maximum number of above-threshold answers before stopping.
    monotonic:
        Whether the query stream is monotonic (Definition 7).  Monotonic
        streams permit per-query noise of scale ``k/epsilon_1`` rather than
        ``2k/epsilon_1``.
    theta:
        Optional budget-allocation hyper-parameter; ``None`` selects the Lyu
        et al. ratio (see :func:`svt_budget_allocation`).
    sensitivity:
        Per-query sensitivity (defaults to 1).
    """

    name = "sparse-vector"
    releases_gaps = False

    def __init__(
        self,
        epsilon: float,
        threshold: float,
        k: int = 1,
        monotonic: bool = False,
        theta: Optional[float] = None,
        sensitivity: float = 1.0,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self.epsilon = float(epsilon)
        self.threshold = float(threshold)
        self.k = int(k)
        self.monotonic = bool(monotonic)
        self.sensitivity = float(sensitivity)
        eps0, eps_queries = svt_budget_allocation(epsilon, k, monotonic, theta)
        self.epsilon_threshold = eps0
        self.epsilon_queries = eps_queries
        #: Budget charged per above-threshold answer.
        self.epsilon_per_query = eps_queries / k
        # Noise scales: threshold gets Lap(sensitivity/eps0); each query gets
        # Lap(2*sensitivity/eps_i) in general or Lap(sensitivity/eps_i) for
        # monotonic streams (footnote 6 of the paper).
        self.threshold_scale = self.sensitivity / eps0
        query_factor = 1.0 if monotonic else 2.0
        self.query_scale = query_factor * self.sensitivity / self.epsilon_per_query
        self._threshold_noise = LaplaceNoise(self.threshold_scale)
        self._query_noise = LaplaceNoise(self.query_scale)

    @property
    def gap_variance(self) -> float:
        """Variance of the (internal) query-minus-threshold gap."""
        return self._threshold_noise.variance + self._query_noise.variance

    def _extra_metadata(self) -> dict:
        return {
            "k": float(self.k),
            "threshold": self.threshold,
            "epsilon_threshold": self.epsilon_threshold,
            "epsilon_per_query": self.epsilon_per_query,
        }

    def run(
        self,
        true_values: Union[Sequence[float], np.ndarray],
        rng: RngLike = None,
        threshold_noise: Optional[float] = None,
        query_noise: Optional[np.ndarray] = None,
    ) -> SvtResult:
        """Process the query stream ``true_values``.

        The stream is processed in order; the mechanism stops after ``k``
        above-threshold answers or at the end of the stream, whichever comes
        first.

        Parameters
        ----------
        true_values:
            Exact query answers, in stream order.
        rng:
            Seed or generator (unused coordinates are not drawn when explicit
            noise is supplied).
        threshold_noise, query_noise:
            Optional explicit noise used to replay an execution (``query_noise``
            must have one entry per stream query).  The batch engine's
            equivalence tests and the alignment framework use these.
        """
        values = np.asarray(true_values, dtype=float)
        if values.ndim != 1:
            raise ValueError("true_values must be a one-dimensional vector")
        n = values.size
        generator = ensure_rng(rng)
        if threshold_noise is None:
            threshold_noise = float(self._threshold_noise.sample(rng=generator))
        else:
            threshold_noise = float(threshold_noise)
        if query_noise is not None:
            query_noise = np.asarray(query_noise, dtype=float)
            if query_noise.shape != values.shape:
                raise ValueError("explicit query_noise must match true_values in shape")
        noisy_threshold = self.threshold + threshold_noise

        # Preallocate the noise buffer; labels and scales are materialised
        # once after the loop instead of one append per query.
        noise_values = np.empty(n + 1)
        noise_values[0] = threshold_noise

        outcomes: List[SvtOutcome] = []
        answered = 0
        spent = self.epsilon_threshold
        release_gap = self.releases_gaps
        for index in range(n):
            if query_noise is None:
                qn = float(self._query_noise.sample(rng=generator))
            else:
                qn = float(query_noise[index])
            noise_values[index + 1] = qn
            gap = values[index] + qn - noisy_threshold
            if gap >= 0:
                outcomes.append(
                    SvtOutcome(
                        index=index,
                        above=True,
                        gap=float(gap) if release_gap else None,
                        branch=SvtBranch.MIDDLE,
                        budget_used=self.epsilon_per_query,
                    )
                )
                spent += self.epsilon_per_query
                answered += 1
                if answered >= self.k:
                    break
            else:
                outcomes.append(
                    SvtOutcome(
                        index=index,
                        above=False,
                        gap=None,
                        branch=SvtBranch.BOTTOM,
                        budget_used=0.0,
                    )
                )

        processed = len(outcomes)
        metadata = MechanismMetadata(
            mechanism=self.name,
            epsilon=self.epsilon,
            epsilon_spent=min(spent, self.epsilon),
            monotonic=self.monotonic,
            extra=self._extra_metadata(),
        )
        trace = NoiseTrace(
            names=["threshold"] + [f"query[{i}]" for i in range(processed)],
            values=noise_values[: processed + 1].copy(),
            scales=np.concatenate(
                [[self.threshold_scale], np.full(processed, self.query_scale)]
            ),
        )
        return SvtResult(outcomes=outcomes, metadata=metadata, noise_trace=trace)


class SparseVectorWithGap(SparseVector):
    """Sparse-Vector-with-Gap (Wang et al.): releases the gap for free.

    Identical to :class:`SparseVector` except that every above-threshold
    answer also carries the noisy gap between the noisy query answer and the
    noisy threshold.  The privacy cost is unchanged; the released gap has
    variance ``2 * threshold_scale**2 + 2 * query_scale**2``.
    """

    name = "sparse-vector-with-gap"
    releases_gaps = True

    def _extra_metadata(self) -> dict:
        extra = super()._extra_metadata()
        extra["gap_variance"] = self.gap_variance
        return extra
