"""The Sparse Vector variant catalogue of Lyu, Su & Li (PVLDB 2017).

The paper's Related Work leans heavily on Lyu et al.'s "Understanding the
Sparse Vector Technique", which catalogues six SVT variants that appeared in
the literature -- two correct ones and four whose privacy analyses are
flawed.  Having the catalogue executable is valuable for this library in two
ways:

* the *correct* variants are additional baselines with different budget
  allocations / noise placements, and
* the *incorrect* variants are fixtures for the empirical DP verifier and
  the alignment checker: a testing framework for DP mechanisms should be able
  to flag them (this mirrors how the verification line of work that led to
  Sparse-Vector-with-Gap started).

The variants implemented here (numbering follows Lyu et al.):

========  ============================================  ==========================
Variant   Distinguishing behaviour                      Privacy status
========  ============================================  ==========================
SVT1      Alg. 1 of Lyu et al. (ratio split, resample   epsilon-DP
          nothing, stop after k answers)
SVT2      Dwork & Roth style: threshold noise is        epsilon-DP (less accurate
          refreshed after every above-threshold answer  than SVT1 for same budget)
SVT3      Releases the *noisy query value* (not just    NOT DP (unbounded leakage
          the indicator) for above-threshold queries,   as the stream grows)
          while charging only the indicator cost
SVT4      Charges only epsilon/4 per above-threshold    (1+6k)/4 epsilon-DP, i.e.
          answer but adds indicator-level noise         NOT epsilon-DP as claimed
SVT5      Adds no noise to the threshold at all         NOT DP
SVT6      Adds noise only to the threshold, none to     NOT DP
          the queries
========  ============================================  ==========================

All variants share the :class:`~repro.mechanisms.sparse_vector.SvtResult`
output type.  The incorrect variants are clearly marked with
``claimed_private = False`` -- they exist for testing and pedagogy and must
never be used to release real data.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.mechanisms.results import MechanismMetadata, NoiseTrace
from repro.mechanisms.sparse_vector import (
    SparseVector,
    SvtBranch,
    SvtOutcome,
    SvtResult,
    svt_budget_allocation,
)
from repro.primitives.laplace import LaplaceNoise
from repro.primitives.rng import RngLike, ensure_rng

ArrayLike = Union[Sequence[float], np.ndarray]


class SvtVariant1(SparseVector):
    """SVT1: the recommended variant (identical to :class:`SparseVector`).

    Included under its catalogue name so the whole Lyu et al. family can be
    instantiated uniformly in comparisons.
    """

    name = "svt-variant-1"
    claimed_private = True
    actually_private = True


class SvtVariant2(SparseVector):
    """SVT2: refreshes the threshold noise after every above-threshold answer.

    This is the Dwork & Roth textbook formulation.  It satisfies
    epsilon-differential privacy but, because the threshold budget is re-paid
    for every answer, it answers with more noise than SVT1 at the same total
    budget.  The budget is split evenly between threshold and queries and then
    into k rounds.
    """

    name = "svt-variant-2"
    claimed_private = True
    actually_private = True

    def __init__(
        self,
        epsilon: float,
        threshold: float,
        k: int = 1,
        monotonic: bool = False,
        sensitivity: float = 1.0,
    ) -> None:
        super().__init__(
            epsilon=epsilon,
            threshold=threshold,
            k=k,
            monotonic=monotonic,
            theta=0.5,
            sensitivity=sensitivity,
        )
        # Each of the k rounds gets threshold budget epsilon/2k and query
        # budget epsilon/2k.
        self.epsilon_threshold_per_round = self.epsilon / (2.0 * k)
        self.epsilon_per_query = self.epsilon / (2.0 * k)
        self.threshold_scale = self.sensitivity / self.epsilon_threshold_per_round
        query_factor = 1.0 if monotonic else 2.0
        self.query_scale = query_factor * self.sensitivity / self.epsilon_per_query
        self._threshold_noise = LaplaceNoise(self.threshold_scale)
        self._query_noise = LaplaceNoise(self.query_scale)

    def run(self, true_values: ArrayLike, rng: RngLike = None) -> SvtResult:
        values = np.asarray(true_values, dtype=float)
        if values.ndim != 1:
            raise ValueError("true_values must be a one-dimensional vector")
        generator = ensure_rng(rng)

        noise_names: List[str] = []
        noise_values: List[float] = []
        noise_scales: List[float] = []

        def fresh_threshold() -> float:
            eta = float(self._threshold_noise.sample(rng=generator))
            noise_names.append(f"threshold[{len(noise_names)}]")
            noise_values.append(eta)
            noise_scales.append(self.threshold_scale)
            return self.threshold + eta

        noisy_threshold = fresh_threshold()
        spent = self.epsilon_threshold_per_round

        outcomes: List[SvtOutcome] = []
        answered = 0
        for index, value in enumerate(values):
            query_noise = float(self._query_noise.sample(rng=generator))
            noise_names.append(f"query[{index}]")
            noise_values.append(query_noise)
            noise_scales.append(self.query_scale)
            if value + query_noise >= noisy_threshold:
                outcomes.append(
                    SvtOutcome(
                        index=index,
                        above=True,
                        gap=None,
                        branch=SvtBranch.MIDDLE,
                        budget_used=self.epsilon_per_query
                        + self.epsilon_threshold_per_round,
                    )
                )
                spent += self.epsilon_per_query
                answered += 1
                if answered >= self.k:
                    break
                # Refresh the threshold noise, paying its budget again.
                noisy_threshold = fresh_threshold()
                spent += self.epsilon_threshold_per_round
            else:
                outcomes.append(
                    SvtOutcome(
                        index=index,
                        above=False,
                        gap=None,
                        branch=SvtBranch.BOTTOM,
                        budget_used=0.0,
                    )
                )

        metadata = MechanismMetadata(
            mechanism=self.name,
            epsilon=self.epsilon,
            epsilon_spent=min(spent, self.epsilon),
            monotonic=self.monotonic,
            extra={"k": float(self.k), "threshold": self.threshold},
        )
        trace = NoiseTrace(
            names=noise_names,
            values=np.asarray(noise_values),
            scales=np.asarray(noise_scales),
        )
        return SvtResult(outcomes=outcomes, metadata=metadata, noise_trace=trace)


class _BrokenSvtBase:
    """Shared plumbing for the deliberately broken catalogue variants."""

    name = "svt-broken"
    claimed_private = True
    actually_private = False
    releases_gaps = False

    def __init__(
        self,
        epsilon: float,
        threshold: float,
        k: int = 1,
        sensitivity: float = 1.0,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self.epsilon = float(epsilon)
        self.threshold = float(threshold)
        self.k = int(k)
        self.sensitivity = float(sensitivity)
        eps0, eps_queries = svt_budget_allocation(epsilon, k, monotonic=False)
        self.epsilon_threshold = eps0
        self.epsilon_per_query = eps_queries / k

    def _metadata(self, spent: float) -> MechanismMetadata:
        return MechanismMetadata(
            mechanism=self.name,
            epsilon=self.epsilon,
            epsilon_spent=min(spent, self.epsilon),
            monotonic=False,
            extra={"k": float(self.k), "threshold": self.threshold},
        )


class SvtVariant3(_BrokenSvtBase):
    """SVT3: releases the noisy query value itself for above-threshold queries.

    The privacy "analysis" charges only for the above/below indicator, but the
    released numeric value leaks far more; the variant does not satisfy any
    finite epsilon as the number of released values grows.  Provided only as
    a negative fixture for the testing tools.
    """

    name = "svt-variant-3"

    def run(self, true_values: ArrayLike, rng: RngLike = None) -> SvtResult:
        values = np.asarray(true_values, dtype=float)
        generator = ensure_rng(rng)
        threshold_noise = float(
            LaplaceNoise(self.sensitivity / self.epsilon_threshold).sample(rng=generator)
        )
        noisy_threshold = self.threshold + threshold_noise
        query_noise_dist = LaplaceNoise(
            2.0 * self.sensitivity / self.epsilon_per_query
        )

        outcomes: List[SvtOutcome] = []
        answered = 0
        spent = self.epsilon_threshold
        for index, value in enumerate(values):
            noisy_value = value + float(query_noise_dist.sample(rng=generator))
            if noisy_value >= noisy_threshold:
                # BROKEN: releases the noisy value (as a "gap" against zero)
                # while charging only the indicator budget.
                outcomes.append(
                    SvtOutcome(
                        index=index,
                        above=True,
                        gap=float(noisy_value),
                        branch=SvtBranch.MIDDLE,
                        budget_used=self.epsilon_per_query,
                    )
                )
                spent += self.epsilon_per_query
                answered += 1
                if answered >= self.k:
                    break
            else:
                outcomes.append(
                    SvtOutcome(
                        index=index,
                        above=False,
                        gap=None,
                        branch=SvtBranch.BOTTOM,
                        budget_used=0.0,
                    )
                )
        return SvtResult(outcomes=outcomes, metadata=self._metadata(spent))


class SvtVariant4(_BrokenSvtBase):
    """SVT4: under-charges above-threshold answers by a factor that grows with k.

    The variant pays a fixed per-answer budget that does not scale with k, so
    the true privacy loss is roughly (1 + 6k)/4 times the claimed epsilon.
    """

    name = "svt-variant-4"

    def run(self, true_values: ArrayLike, rng: RngLike = None) -> SvtResult:
        values = np.asarray(true_values, dtype=float)
        generator = ensure_rng(rng)
        threshold_noise = float(
            LaplaceNoise(2.0 * self.sensitivity / self.epsilon).sample(rng=generator)
        )
        noisy_threshold = self.threshold + threshold_noise
        # BROKEN: per-query noise is calibrated as if a single answer were
        # released, regardless of how many the loop actually produces.
        query_noise_dist = LaplaceNoise(2.0 * self.sensitivity / self.epsilon)

        outcomes: List[SvtOutcome] = []
        answered = 0
        spent = self.epsilon / 2.0
        for index, value in enumerate(values):
            noisy_value = value + float(query_noise_dist.sample(rng=generator))
            if noisy_value >= noisy_threshold:
                outcomes.append(
                    SvtOutcome(
                        index=index,
                        above=True,
                        gap=None,
                        branch=SvtBranch.MIDDLE,
                        budget_used=self.epsilon / (2.0 * self.k),
                    )
                )
                spent += self.epsilon / (2.0 * self.k)
                answered += 1
                if answered >= self.k:
                    break
            else:
                outcomes.append(
                    SvtOutcome(
                        index=index,
                        above=False,
                        gap=None,
                        branch=SvtBranch.BOTTOM,
                        budget_used=0.0,
                    )
                )
        return SvtResult(outcomes=outcomes, metadata=self._metadata(spent))


class SvtVariant5(_BrokenSvtBase):
    """SVT5: adds no noise to the threshold.

    Comparing exact noisy queries against an exact threshold leaks the sign
    of (q_i - T) with too little randomness; the variant is not differentially
    private for any finite epsilon once enough queries are processed.
    """

    name = "svt-variant-5"

    def run(self, true_values: ArrayLike, rng: RngLike = None) -> SvtResult:
        values = np.asarray(true_values, dtype=float)
        generator = ensure_rng(rng)
        query_noise_dist = LaplaceNoise(
            2.0 * self.sensitivity / self.epsilon_per_query
        )

        outcomes: List[SvtOutcome] = []
        answered = 0
        spent = 0.0
        for index, value in enumerate(values):
            noisy_value = value + float(query_noise_dist.sample(rng=generator))
            if noisy_value >= self.threshold:  # BROKEN: exact threshold
                outcomes.append(
                    SvtOutcome(
                        index=index,
                        above=True,
                        gap=None,
                        branch=SvtBranch.MIDDLE,
                        budget_used=self.epsilon_per_query,
                    )
                )
                spent += self.epsilon_per_query
                answered += 1
                if answered >= self.k:
                    break
            else:
                outcomes.append(
                    SvtOutcome(
                        index=index,
                        above=False,
                        gap=None,
                        branch=SvtBranch.BOTTOM,
                        budget_used=0.0,
                    )
                )
        return SvtResult(outcomes=outcomes, metadata=self._metadata(spent))


class SvtVariant6(_BrokenSvtBase):
    """SVT6: adds noise only to the threshold, none to the queries.

    A single noisy threshold cannot protect an unbounded number of exact
    query comparisons; like SVT5 this variant admits no finite epsilon.
    """

    name = "svt-variant-6"

    def run(self, true_values: ArrayLike, rng: RngLike = None) -> SvtResult:
        values = np.asarray(true_values, dtype=float)
        generator = ensure_rng(rng)
        threshold_noise = float(
            LaplaceNoise(self.sensitivity / self.epsilon).sample(rng=generator)
        )
        noisy_threshold = self.threshold + threshold_noise

        outcomes: List[SvtOutcome] = []
        answered = 0
        spent = self.epsilon
        for index, value in enumerate(values):
            if value >= noisy_threshold:  # BROKEN: exact query values
                outcomes.append(
                    SvtOutcome(
                        index=index,
                        above=True,
                        gap=None,
                        branch=SvtBranch.MIDDLE,
                        budget_used=0.0,
                    )
                )
                answered += 1
                if answered >= self.k:
                    break
            else:
                outcomes.append(
                    SvtOutcome(
                        index=index,
                        above=False,
                        gap=None,
                        branch=SvtBranch.BOTTOM,
                        budget_used=0.0,
                    )
                )
        return SvtResult(outcomes=outcomes, metadata=self._metadata(spent))


#: The full catalogue, keyed by the Lyu et al. numbering.
SVT_VARIANT_CATALOGUE = {
    1: SvtVariant1,
    2: SvtVariant2,
    3: SvtVariant3,
    4: SvtVariant4,
    5: SvtVariant5,
    6: SvtVariant6,
}


def make_svt_variant(number: int, **kwargs) -> object:
    """Instantiate catalogue variant ``number`` with the given parameters.

    Parameters
    ----------
    number:
        Variant index 1-6 (Lyu et al. numbering).
    kwargs:
        Constructor arguments (``epsilon``, ``threshold``, ``k``, ...).
    """
    if number not in SVT_VARIANT_CATALOGUE:
        raise KeyError(f"unknown SVT variant {number}; expected 1-6")
    return SVT_VARIANT_CATALOGUE[number](**kwargs)
