"""The network transport: the job-queue service over HTTP/JSON.

The service layer (:mod:`repro.service`) made the control plane durable but
left its reach at "anything that can mount the root directory".  This
package puts an HTTP boundary in front of the same root -- without moving
any state off the filesystem, so every determinism, budget-settlement and
crash-safety invariant below is inherited unchanged:

    server (net.server)  the broker daemon: ThreadingHTTPServer handlers
                         over Broker / BudgetLedger / collect_metrics, with
                         backpressure (429 when the pending queue is at the
                         cap) and a strict domain-error -> status mapping
    auth   (net.auth)    per-tenant bearer tokens, token-bucket rate limits
                         and concurrency caps (AccessController); an
                         unconfigured controller is open
    client (net.client)  HttpJobClient -- the same surface and exceptions as
                         JobClient, over the wire; plus metrics and budget
                         verbs for operators
    wire   (net.wire)    byte-exact Result framing (npz + canonical JSON,
                         the cache's own lossless encoding) so an HTTP
                         result is bit-identical to run(spec, shards=N)

CLI front-ends (``repro.evaluation.cli``)::

    python -m repro serve-broker --root SRV --port 8035 --auth-file auth.json
    python -m repro submit spec.json --url http://HOST:8035 --token SECRET
    python -m repro job-result <job-id> --url http://HOST:8035 --token SECRET

and :func:`repro.api.submit` accepts ``url=``/``token=`` to switch
transports without changing anything else.
"""

from repro.net.auth import (
    ADMIN,
    AccessController,
    AuthenticationError,
    AuthorizationError,
    BackpressureError,
    RateLimitedError,
    TenantPolicy,
)
from repro.net.client import HttpJobClient, JobNotReadyError, TransportError
from repro.net.server import (
    DEFAULT_MAX_PENDING,
    BrokerHTTPServer,
    serve_broker,
)
from repro.net.wire import WireError, decode_result, encode_result

__all__ = [
    "ADMIN",
    "AccessController",
    "AuthenticationError",
    "AuthorizationError",
    "BackpressureError",
    "BrokerHTTPServer",
    "DEFAULT_MAX_PENDING",
    "HttpJobClient",
    "JobNotReadyError",
    "RateLimitedError",
    "TenantPolicy",
    "TransportError",
    "WireError",
    "decode_result",
    "encode_result",
    "serve_broker",
]
