"""Per-tenant bearer-token auth, rate limits and concurrency caps.

The filesystem control plane trusts anyone who can mount the root; the HTTP
boundary cannot.  An :class:`AccessController` holds one
:class:`TenantPolicy` per tenant and answers three questions for the
broker daemon:

* **Who is calling?**  :meth:`AccessController.authenticate` resolves the
  ``Authorization: Bearer <token>`` header to a principal -- a tenant name,
  or :data:`ADMIN` for the operator token -- with constant-time comparisons.
* **May they act for this tenant?**  :meth:`AccessController.authorize`:
  a tenant's token speaks only for that tenant; the admin token for all.
* **May this submit run now?**  :meth:`AccessController.admit` enforces the
  per-tenant concurrency cap (unfinished jobs) and a token-bucket rate
  limit, raising :class:`RateLimitedError` with a ``retry_after`` hint the
  server turns into a ``Retry-After`` header.

A controller with no policies and no admin token is **open**: every request
authenticates as :data:`ADMIN` and nothing is limited -- the single-tenant
/ trusted-network default, mirroring how an ungranted tenant is unbounded
on the :class:`~repro.tenancy.ledger.BudgetLedger`.

Rate/concurrency state is process-local by design (like the claim
scheduler's credit counters): the daemon is the sole HTTP entry point to
its root, so its in-memory buckets see every networked submit.
"""

from __future__ import annotations

import hmac
import json
import math
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.service.broker import ServiceError

__all__ = [
    "ADMIN",
    "AccessController",
    "AuthenticationError",
    "AuthorizationError",
    "BackpressureError",
    "RateLimitedError",
    "TenantPolicy",
]

#: The wildcard principal: the operator token authenticates as it, and an
#: open (unconfigured) controller treats every caller as it.
ADMIN = "*"


class AuthenticationError(ServiceError):
    """The request carries no credential, or an unrecognized one (HTTP 401)."""


class AuthorizationError(ServiceError):
    """A valid credential used outside its tenant's scope (HTTP 403)."""


class RateLimitedError(ServiceError):
    """A per-tenant admission limit refused the request (HTTP 429).

    ``retry_after`` (seconds, or None) is the earliest moment a retry can
    succeed; the server forwards it as the ``Retry-After`` header.
    """

    def __init__(self, message: str, *, retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class BackpressureError(RateLimitedError):
    """The queue's pending depth exceeds the server's cap (HTTP 429)."""


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's API-layer contract.

    Attributes
    ----------
    token:
        Bearer token that authenticates as this tenant; ``None`` means the
        tenant cannot authenticate (its jobs can still be granted budget
        and submitted by the admin).
    rate_per_second:
        Sustained submit rate (token bucket); ``None`` = unlimited.
    burst:
        Bucket capacity -- how many submits may land back-to-back before
        the sustained rate gates.  ``None`` derives ``max(1, ceil(rate))``.
    max_concurrent:
        Cap on the tenant's unfinished jobs submitted through the daemon;
        ``None`` = unlimited.
    """

    token: Optional[str] = None
    rate_per_second: Optional[float] = None
    burst: Optional[int] = None
    max_concurrent: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate_per_second is not None and self.rate_per_second <= 0:
            raise ValueError(
                f"rate_per_second must be positive, got {self.rate_per_second}"
            )
        if self.burst is not None and self.burst < 1:
            raise ValueError(f"burst must be at least 1, got {self.burst}")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be at least 1, got {self.max_concurrent}"
            )

    @property
    def bucket_capacity(self) -> float:
        """The effective token-bucket capacity (see :attr:`burst`)."""
        if self.burst is not None:
            return float(self.burst)
        if self.rate_per_second is None:
            return 1.0
        return float(max(1, math.ceil(self.rate_per_second)))


class AccessController:
    """Authenticate, authorize and admission-limit API requests."""

    def __init__(
        self,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        *,
        admin_token: Optional[str] = None,
    ) -> None:
        self.policies: Dict[str, TenantPolicy] = {
            str(tenant): policy for tenant, policy in (policies or {}).items()
        }
        for tenant, policy in self.policies.items():
            if not isinstance(policy, TenantPolicy):
                raise TypeError(
                    f"policy of tenant {tenant!r} must be a TenantPolicy, "
                    f"got {type(policy).__name__}"
                )
        self.admin_token = admin_token
        #: tenant -> (tokens remaining, last refill time); guarded by the
        #: lock -- the daemon handles requests on many threads.
        self._buckets: Dict[str, tuple] = {}
        self._lock = threading.Lock()

    @property
    def open(self) -> bool:
        """True when nothing is configured: all callers pass as admin."""
        return not self.policies and self.admin_token is None

    @classmethod
    def from_file(cls, path: Union[str, os.PathLike]) -> "AccessController":
        """Load a controller from a JSON config file::

            {
              "admin_token": "operator-secret",
              "tenants": {
                "alice": {"token": "alice-secret", "rate_per_second": 5,
                          "burst": 10, "max_concurrent": 4}
              }
            }

        Unknown keys are rejected -- a typo like ``"max_concurrency"`` must
        not silently disable the limit it meant to set.
        """
        with open(path, "r", encoding="utf-8") as handle:
            config = json.load(handle)
        if not isinstance(config, dict):
            raise ValueError(f"auth config {os.fspath(path)!r} must be a JSON object")
        unknown = set(config) - {"admin_token", "tenants"}
        if unknown:
            raise ValueError(
                f"unknown auth config key(s) {sorted(unknown)}; "
                "expected 'admin_token' and/or 'tenants'"
            )
        policies = {}
        tenants = config.get("tenants") or {}
        if not isinstance(tenants, dict):
            raise ValueError("'tenants' must map tenant names to policy objects")
        allowed = {"token", "rate_per_second", "burst", "max_concurrent"}
        for tenant, raw in tenants.items():
            if not isinstance(raw, dict):
                raise ValueError(f"policy of tenant {tenant!r} must be an object")
            unknown = set(raw) - allowed
            if unknown:
                raise ValueError(
                    f"unknown key(s) {sorted(unknown)} in policy of tenant "
                    f"{tenant!r}; expected {sorted(allowed)}"
                )
            policies[str(tenant)] = TenantPolicy(**raw)
        admin_token = config.get("admin_token")
        if admin_token is not None and not isinstance(admin_token, str):
            raise ValueError("'admin_token' must be a string")
        return cls(policies, admin_token=admin_token)

    # -- who is calling? -----------------------------------------------------

    def authenticate(self, authorization: Optional[str]) -> str:
        """Resolve an ``Authorization`` header to a principal.

        Returns the tenant name whose token matched, or :data:`ADMIN` for
        the admin token (and for every caller of an open controller).
        Raises :class:`AuthenticationError` otherwise -- deliberately the
        same error for "missing", "malformed" and "unknown", so the
        response does not reveal which tokens exist.
        """
        if self.open:
            return ADMIN
        if not authorization:
            raise AuthenticationError(
                "missing credentials: send 'Authorization: Bearer <token>'"
            )
        scheme, _, token = authorization.partition(" ")
        token = token.strip()
        if scheme.lower() != "bearer" or not token:
            raise AuthenticationError(
                "malformed Authorization header: expected 'Bearer <token>'"
            )
        if self.admin_token is not None and hmac.compare_digest(
            token, self.admin_token
        ):
            return ADMIN
        for tenant, policy in self.policies.items():
            if policy.token is not None and hmac.compare_digest(token, policy.token):
                return tenant
        raise AuthenticationError("unrecognized bearer token")

    def authorize(self, principal: str, tenant: str) -> None:
        """Check that ``principal`` may act for ``tenant`` (403 otherwise)."""
        if principal == ADMIN or principal == str(tenant):
            return
        raise AuthorizationError(
            f"token of tenant {principal!r} may not act for tenant {tenant!r}"
        )

    # -- may this submit run now? -------------------------------------------

    def admit(self, tenant: str, *, active_jobs: int) -> None:
        """Gate one submit: concurrency cap first, then the rate bucket.

        Order matters: a submit the concurrency cap will refuse must not
        consume a rate token on the way to its 429.
        """
        policy = self.policies.get(str(tenant))
        if policy is None:
            return
        if (
            policy.max_concurrent is not None
            and int(active_jobs) >= policy.max_concurrent
        ):
            raise RateLimitedError(
                f"tenant {tenant!r} already has {int(active_jobs)} unfinished "
                f"job(s) (cap {policy.max_concurrent}); wait for one to "
                "finish or cancel it"
            )
        if policy.rate_per_second is None:
            return
        rate = float(policy.rate_per_second)
        capacity = policy.bucket_capacity
        now = time.monotonic()
        with self._lock:
            tokens, last = self._buckets.get(str(tenant), (capacity, now))
            tokens = min(capacity, tokens + (now - last) * rate)
            if tokens < 1.0:
                # Don't consume on refusal; tell the caller when a retry
                # can succeed.
                self._buckets[str(tenant)] = (tokens, now)
                raise RateLimitedError(
                    f"tenant {tenant!r} exceeded its submit rate "
                    f"({rate:g}/s, burst {capacity:g})",
                    retry_after=(1.0 - tokens) / rate,
                )
            self._buckets[str(tenant)] = (tokens - 1.0, now)
