"""The HTTP counterpart of :class:`~repro.service.client.JobClient`.

An :class:`HttpJobClient` speaks the broker daemon's ``/v1`` API
(:mod:`repro.net.server`) with the **same method surface and semantics**
as the filesystem client -- ``submit`` returns the same
:class:`~repro.service.client.JobHandle`, ``result`` polls with the same
deadline-clamped loop and raises the same domain exceptions -- so callers
(the facade, the CLI) switch transports by swapping the constructor and
nothing else::

    client = HttpJobClient("http://broker.internal:8035", token="alice-secret")
    handle = client.submit(spec, trials=100_000, seed=0)
    result = handle.result(timeout=60.0)   # bit-identical to run(shards=N)

The translation back from HTTP statuses is the exact inverse of the
server's error mapping: 401/403/429 raise the :mod:`repro.net.auth`
errors, 402 the ledger's :class:`BudgetExceededError`, 404
:class:`JobNotFoundError`, 409 either :class:`JobNotReadyError` (job still
in flight -- the polling loop's retry signal) or :class:`JobFailedError`
(terminal), 400 ``ValueError`` and 503 :class:`LedgerError`.  Only stdlib
``urllib`` is used -- no new dependencies.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional
from urllib import error as urlerror
from urllib import request as urlrequest
from urllib.parse import quote

from repro.accounting.budget import BudgetExceededError
from repro.api.result import Result
from repro.api.specs import MechanismSpec
from repro.net.auth import (
    AuthenticationError,
    AuthorizationError,
    BackpressureError,
    RateLimitedError,
)
from repro.net.wire import decode_result
from repro.service.broker import (
    JobFailedError,
    JobNotFoundError,
    JobStatus,
    ServiceError,
)
from repro.service.client import JobHandle
from repro.tenancy.ledger import LedgerError
from repro.tenancy.scheduler import DEFAULT_PRIORITY, DEFAULT_TENANT

__all__ = ["HttpJobClient", "JobNotReadyError", "TransportError"]


class JobNotReadyError(ServiceError):
    """A result was requested for a job still in flight (HTTP 409, state
    submitted/running) -- retryable, unlike :class:`JobFailedError`."""


class TransportError(ServiceError):
    """The HTTP exchange itself failed (connection refused, bad frame,
    unexpected status) -- the network analogue of a filesystem ``OSError``."""


def _retry_after(headers) -> Optional[float]:
    value = headers.get("Retry-After") if headers is not None else None
    try:
        return None if value is None else float(value)
    except ValueError:
        return None


def _raise_for_status(status: int, payload: dict, headers) -> None:
    """Re-raise the domain error a response status encodes (see module doc)."""
    message = str(payload.get("error") or f"HTTP {status}")
    if status == 400:
        raise ValueError(message)
    if status == 401:
        raise AuthenticationError(message)
    if status == 402:
        raise BudgetExceededError(message)
    if status == 403:
        raise AuthorizationError(message)
    if status == 404:
        raise JobNotFoundError(message)
    if status == 409:
        state = payload.get("state")
        if state in ("failed", "cancelled"):
            raise JobFailedError(message)
        if state in ("submitted", "running"):
            raise JobNotReadyError(message)
        raise ServiceError(message)
    if status == 429:
        retry_after = _retry_after(headers)
        if "queue depth" in message:
            raise BackpressureError(message, retry_after=retry_after)
        raise RateLimitedError(message, retry_after=retry_after)
    if status == 503:
        raise LedgerError(message)
    raise TransportError(f"unexpected HTTP {status}: {message}")


class HttpJobClient:
    """Submit jobs to, and read results from, one broker daemon.

    Parameters
    ----------
    url:
        Base URL of the daemon (scheme + host + port; any trailing slash
        or ``/v1`` suffix is tolerated).
    token:
        Bearer token sent on every request; None for an open daemon.
    timeout:
        Socket timeout per HTTP exchange (not the job-completion timeout
        -- that is ``result(timeout=...)``, exactly as on ``JobClient``).
    """

    def __init__(
        self, url: str, *, token: Optional[str] = None, timeout: float = 30.0
    ) -> None:
        base = str(url).rstrip("/")
        if base.endswith("/v1"):
            base = base[: -len("/v1")]
        if not base.lower().startswith(("http://", "https://")):
            raise ValueError(
                f"url must start with http:// or https://, got {url!r}"
            )
        self.url = base
        self.token = token
        self.timeout = float(timeout)

    # -- one HTTP exchange ---------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> tuple:
        """Return ``(status, body bytes, headers)``; network failures raise
        :class:`TransportError`, HTTP error statuses are returned as data
        for :func:`_handle` to map."""
        data = (
            None
            if body is None
            else json.dumps(body, sort_keys=True).encode("utf-8")
        )
        req = urlrequest.Request(
            f"{self.url}{path}", data=data, method=method
        )
        if data is not None:
            req.add_header("Content-Type", "application/json")
        if self.token is not None:
            req.add_header("Authorization", f"Bearer {self.token}")
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as response:
                return response.status, response.read(), response.headers
        except urlerror.HTTPError as exc:
            # 4xx/5xx: the body still carries the JSON error payload.
            with exc:
                return exc.code, exc.read(), exc.headers
        except urlerror.URLError as exc:
            raise TransportError(
                f"cannot reach broker at {self.url}: {exc.reason}"
            ) from exc

    def _handle(self, method: str, path: str, body: Optional[dict] = None):
        status, raw, headers = self._request(method, path, body)
        if status == 200 and not (
            headers.get("Content-Type") or ""
        ).startswith("application/json"):
            return raw  # a binary result frame
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, ValueError):
            raise TransportError(
                f"broker sent a non-JSON {status} response for {path}"
            ) from None
        if status >= 400:
            _raise_for_status(status, payload, headers)
        return payload

    # -- the JobClient surface -----------------------------------------------

    def submit(
        self,
        spec: MechanismSpec,
        *,
        engine: str = "batch",
        trials: int = 1,
        seed: int = 0,
        chunk_trials: Optional[int] = None,
        options: Optional[dict] = None,
        job_id: Optional[str] = None,
        tenant: str = DEFAULT_TENANT,
        priority: int = DEFAULT_PRIORITY,
    ) -> JobHandle:
        """Enqueue one execution request over HTTP; returns a handle."""
        body = {
            "spec": spec.to_dict(),
            "engine": engine,
            "trials": trials,
            "seed": seed,
            "chunk_trials": chunk_trials,
            "options": options,
            "job_id": job_id,
            "tenant": tenant,
            "priority": priority,
        }
        payload = self._handle("POST", "/v1/jobs", body)
        return JobHandle(self, str(payload["job_id"]))

    @staticmethod
    def _status_from_payload(payload: dict) -> JobStatus:
        return JobStatus(
            job_id=str(payload["job_id"]),
            state=str(payload["state"]),
            total_tasks=int(payload["total_tasks"]),
            done_tasks=int(payload["done_tasks"]),
            failed_tasks={
                int(index): str(error)
                for index, error in (payload.get("failed_tasks") or {}).items()
            },
        )

    def status(self, job_id: str) -> JobStatus:
        return self._status_from_payload(
            self._handle("GET", f"/v1/jobs/{job_id}")
        )

    def status_many(self, job_ids) -> Dict[str, JobStatus]:
        """Batch :meth:`status` in one ``GET /v1/jobs?ids=...`` round-trip.

        Mirrors :meth:`JobClient.status_many`: duplicates collapse, every
        id must exist and be authorized (the server refuses the whole
        batch otherwise), and the result is keyed by job id.
        """
        unique = list(dict.fromkeys(str(job_id) for job_id in job_ids))
        if not unique:
            return {}
        ids = quote(",".join(unique), safe=",")
        payload = self._handle("GET", f"/v1/jobs?ids={ids}")
        jobs = payload.get("jobs") or {}
        return {
            job_id: self._status_from_payload(entry)
            for job_id, entry in jobs.items()
        }

    def result(
        self,
        job_id: str,
        *,
        timeout: Optional[float] = None,
        poll_interval: float = 0.5,
    ) -> Result:
        """The merged result, polling until the job finishes.

        Same contract as :meth:`JobClient.result`: ``timeout=None`` fetches
        exactly once (:class:`JobNotReadyError` if still in flight), a float
        polls until terminal or ``TimeoutError``, and the sleep is clamped
        to the remaining time so the timeout is honoured exactly.
        """
        if timeout is None:
            return self._fetch_result(job_id)
        deadline = time.monotonic() + float(timeout)
        while True:
            try:
                return self._fetch_result(job_id)
            except JobNotReadyError:
                pass  # keep polling; terminal errors propagate
            now = time.monotonic()
            if now >= deadline:
                status = self.status(job_id)
                raise TimeoutError(
                    f"job {job_id!r} not finished after {timeout}s "
                    f"({status.done_tasks}/{status.total_tasks} tasks done)"
                )
            time.sleep(min(poll_interval, deadline - now))

    def _fetch_result(self, job_id: str) -> Result:
        raw = self._handle("GET", f"/v1/jobs/{job_id}/result")
        if not isinstance(raw, bytes):
            raise TransportError(
                f"broker sent a JSON body where a result frame was expected "
                f"for job {job_id!r}"
            )
        return decode_result(raw)

    def cancel(self, job_id: str) -> JobStatus:
        return self._status_from_payload(
            self._handle("POST", f"/v1/jobs/{job_id}/cancel")
        )

    # -- operator surface ----------------------------------------------------

    def metrics(self) -> dict:
        """The daemon root's operator snapshot (``collect_metrics``)."""
        return self._handle("GET", "/v1/metrics")

    def tenant_budget(
        self,
        tenant: str,
        *,
        grant: Optional[float] = None,
        refund: Optional[float] = None,
    ) -> dict:
        """Read -- or, with ``grant``/``refund``, adjust -- a tenant budget."""
        if grant is None and refund is None:
            return self._handle("GET", f"/v1/tenants/{tenant}/budget")
        body = {}
        if grant is not None:
            body["grant"] = float(grant)
        if refund is not None:
            body["refund"] = float(refund)
        return self._handle("POST", f"/v1/tenants/{tenant}/budget", body)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HttpJobClient({self.url!r})"
