"""The broker daemon: an HTTP/JSON face over one service root.

``serve_broker(root)`` builds a :class:`BrokerHTTPServer` -- stdlib
:class:`~http.server.ThreadingHTTPServer` threading machinery, no new
dependencies -- whose handlers are thin controllers over the existing
stack: :class:`~repro.service.broker.Broker` for the job lifecycle,
:class:`~repro.tenancy.ledger.BudgetLedger` for budgets and
:func:`~repro.tenancy.metrics.collect_metrics` for the operator snapshot.
The **file root stays the single durable backend**: the daemon holds no
state a restart loses (rate buckets aside), and workers keep draining the
same root directly -- so every determinism, settlement and crash-safety
invariant of the layers below is inherited unchanged.

API (all under ``/v1``; JSON in, JSON out unless noted)::

    POST /v1/jobs                     submit; 201 with the job id
    GET  /v1/jobs/<id>                status
    GET  /v1/jobs/<id>/result         merged Result (binary frame, see wire.py)
    POST /v1/jobs/<id>/cancel         cancel
    GET  /v1/metrics                  operator snapshot (collect_metrics)
    GET  /v1/tenants/<id>/budget      tenant budget view
    POST /v1/tenants/<id>/budget      grant / refund (admin when auth is on)

Error contract -- domain errors map to statuses, never to a traceback body:

==========================================  =====
malformed body / spec / arguments           400
missing or unrecognized bearer token        401
admission refused by the budget ledger      402
valid token outside its tenant's scope      403
unknown job / tenant route                  404
result not ready, job failed/cancelled,
duplicate job id                            409
backpressure / rate limit / concurrency
cap (with ``Retry-After`` where known)      429
wedged ledger lock                          503
anything else (a bug)                       500 with a generic body
==========================================  =====

Backpressure: when the root's pending queue depth is at or above the
server's ``max_pending`` cap, submits are refused with 429 + ``Retry-After``
instead of letting one flooding client grow the queue without bound.

Auth is delegated to an :class:`~repro.net.auth.AccessController`; the
default (no policies) is open.  Concurrency caps are enforced against the
tenant's unfinished jobs *submitted through this daemon* -- the daemon is
the sole HTTP entry to its root, so that set is exactly the networked
in-flight load.
"""

from __future__ import annotations

import json
import os
import re
import threading
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs
from typing import Dict, Optional, Set, Union

from repro.accounting.budget import BudgetExceededError
from repro.api.specs import SpecValidationError, spec_from_dict
from repro.net.auth import (
    ADMIN,
    AccessController,
    AuthenticationError,
    AuthorizationError,
    BackpressureError,
    RateLimitedError,
)
from repro.net.wire import encode_result
from repro.service.broker import (
    Broker,
    JobFailedError,
    JobNotFoundError,
    ServiceError,
)
from repro.tenancy.ledger import LedgerError
from repro.tenancy.scheduler import DEFAULT_PRIORITY, DEFAULT_TENANT

__all__ = ["DEFAULT_MAX_PENDING", "BrokerHTTPServer", "serve_broker"]

#: Default backpressure cap on the root's pending queue depth.
DEFAULT_MAX_PENDING = 10_000

#: Largest accepted request body (a spec with an explicit per-trial noise
#: matrix is big; an unbounded read is a memory DoS).
MAX_BODY_BYTES = 64 * 1024 * 1024
#: Per-request cap on batch-status ids: bounds the filesystem reads one
#: GET can trigger while staying far above any realistic poll wave.
MAX_BATCH_STATUS_IDS = 512

_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9][A-Za-z0-9._-]*)$")
_JOB_RESULT_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9][A-Za-z0-9._-]*)/result$")
_JOB_CANCEL_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9][A-Za-z0-9._-]*)/cancel$")
_TENANT_BUDGET_PATH = re.compile(
    r"^/v1/tenants/([A-Za-z0-9][A-Za-z0-9._-]*)/budget$"
)


class _RequestError(ServiceError):
    """A handler-level refusal with an explicit status (e.g. 405, 413)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _status_of(exc: BaseException) -> int:
    """The HTTP status a domain error maps to (500 for anything unknown)."""
    if isinstance(exc, _RequestError):
        return exc.status
    if isinstance(exc, AuthenticationError):
        return 401
    if isinstance(exc, AuthorizationError):
        return 403
    if isinstance(exc, RateLimitedError):  # BackpressureError included
        return 429
    if isinstance(exc, BudgetExceededError):
        return 402
    if isinstance(exc, JobNotFoundError):
        return 404
    if isinstance(exc, (JobFailedError, ServiceError)):
        return 409
    if isinstance(exc, LedgerError):
        return 503
    # SpecValidationError and UnsupportedEngineError are ValueErrors; the
    # broker's argument validation raises ValueError/TypeError/KeyError.
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        return 400
    return 500


class BrokerHTTPServer(ThreadingHTTPServer):
    """The daemon: one :class:`Broker` served over HTTP (see module doc)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        broker: Union[Broker, str, os.PathLike],
        *,
        controller: Optional[AccessController] = None,
        max_pending: Optional[int] = DEFAULT_MAX_PENDING,
        verbose: bool = False,
    ) -> None:
        self.broker = broker if isinstance(broker, Broker) else Broker(broker)
        self.controller = controller if controller is not None else AccessController()
        self.max_pending = None if max_pending is None else int(max_pending)
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError(f"max_pending must be at least 1, got {max_pending}")
        self.verbose = bool(verbose)
        #: Unfinished jobs submitted through this daemon, per tenant --
        #: the concurrency-cap denominator.  Guarded by the admission lock,
        #: which also serializes count -> check -> reserve so two racing
        #: submits cannot both squeeze under the cap.
        self._active_jobs: Dict[str, Set[str]] = {}
        self._admission_lock = threading.Lock()
        super().__init__(address, _BrokerRequestHandler)

    @property
    def url(self) -> str:
        """The served base URL (with the ephemeral port resolved)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # -- concurrency-cap bookkeeping ----------------------------------------

    def _prune_finished(self, tenant: str) -> int:
        """Drop finished/vanished jobs from the tenant's active set; return
        the live count.  Status reads happen outside the lock (they hit the
        filesystem); removal is a subtraction, so a submit that registered
        a new job meanwhile is never dropped."""
        with self._admission_lock:
            job_ids = list(self._active_jobs.get(tenant, ()))
        finished = set()
        for job_id in job_ids:
            try:
                if self.broker.status(job_id).finished:
                    finished.add(job_id)
            except ServiceError:
                finished.add(job_id)  # manifest gone: nothing to count
        with self._admission_lock:
            active = self._active_jobs.get(tenant)
            if active is None:
                return 0
            active.difference_update(finished)
            return len(active)

    def reserve_submission(self, tenant: str, job_id: Optional[str]) -> str:
        """Admit one submit (rate + concurrency) and reserve its job id.

        Returns the job id (generated here when the client sent none, so
        the reservation can be released on a failed submit).  Raises
        :class:`RateLimitedError` when an admission limit refuses it.
        """
        active = self._prune_finished(tenant)
        job_id = job_id or f"job-{uuid.uuid4().hex[:12]}"
        with self._admission_lock:
            registered = self._active_jobs.setdefault(tenant, set())
            self.controller.admit(tenant, active_jobs=len(registered))
            registered.add(job_id)
        return job_id
        # `active` from the prune is advisory (freshness); the authoritative
        # count under the lock is the registered set itself.

    def release_submission(self, tenant: str, job_id: str) -> None:
        """Return a reserved slot after a failed submit."""
        with self._admission_lock:
            self._active_jobs.get(tenant, set()).discard(job_id)


class _BrokerRequestHandler(BaseHTTPRequestHandler):
    """Thin controllers: parse, auth, delegate to the broker, serialize."""

    server_version = "repro-broker/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 -- stdlib signature
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send(self, status: int, body: bytes, content_type: str, headers=()) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict, headers=()) -> None:
        self._send(
            status,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            "application/json",
            headers,
        )

    def _send_domain_error(self, exc: BaseException) -> None:
        """Map a domain error to its status; **never** leak a traceback.

        Unknown exception types are bugs: their message may embed paths or
        internal state, so the body is a generic marker and the real error
        goes to the server log only.
        """
        status = _status_of(exc)
        if status == 500:
            self.log_error("internal error handling %s: %r", self.path, exc)
            self._send_json(500, {"error": "internal server error"})
            return
        headers = []
        retry_after = getattr(exc, "retry_after", None)
        if status == 429:
            # Retry-After is mandatory on backpressure refusals; a refusal
            # without a known horizon (concurrency cap) suggests one beat.
            headers.append(("Retry-After", f"{max(retry_after or 1.0, 0.001):g}"))
        payload = {"error": str(exc)}
        state = getattr(exc, "job_state", None)
        if state is not None:
            payload["state"] = state
        self._send_json(status, payload, headers)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _RequestError(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, ValueError):
            raise _RequestError(400, "request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise _RequestError(400, "request body must be a JSON object")
        return payload

    def _principal(self) -> str:
        return self.server.controller.authenticate(
            self.headers.get("Authorization")
        )

    def _authorized_manifest(self, job_id: str, principal: str) -> dict:
        """The job's manifest, after checking the caller may touch it."""
        manifest = self.server.broker.manifest(job_id)  # 404 when unknown
        self.server.controller.authorize(
            principal, manifest.get("tenant", DEFAULT_TENANT)
        )
        return manifest

    @staticmethod
    def _status_payload(status) -> dict:
        return {
            "job_id": status.job_id,
            "state": status.state,
            "total_tasks": status.total_tasks,
            "done_tasks": status.done_tasks,
            "failed_tasks": {
                str(index): error for index, error in status.failed_tasks.items()
            },
        }

    # -- routing ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 -- stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 -- stdlib naming
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802 -- stdlib naming
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802 -- stdlib naming
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        try:
            self._route(method)
        # repro-lint: disable=no-blanket-except -- the HTTP boundary: every
        # error becomes a mapped status; a traceback must never reach a peer
        except Exception as exc:  # noqa: BLE001
            try:
                self._send_domain_error(exc)
            except OSError:
                pass  # peer hung up mid-response; nothing left to tell it

    def _route(self, method: str) -> None:
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        if path == "/v1/jobs":
            if method == "GET":
                return self._handle_status_many(query)
            if method != "POST":
                raise _RequestError(
                    405,
                    "use POST /v1/jobs to submit or "
                    "GET /v1/jobs?ids=... for batch status",
                )
            return self._handle_submit()
        match = _JOB_RESULT_PATH.match(path)
        if match:
            if method != "GET":
                raise _RequestError(405, "use GET to fetch a result")
            return self._handle_result(match.group(1))
        match = _JOB_CANCEL_PATH.match(path)
        if match:
            if method != "POST":
                raise _RequestError(405, "use POST to cancel a job")
            return self._handle_cancel(match.group(1))
        match = _JOB_PATH.match(path)
        if match:
            if method != "GET":
                raise _RequestError(405, "use GET to read a job's status")
            return self._handle_status(match.group(1))
        if path == "/v1/metrics":
            if method != "GET":
                raise _RequestError(405, "use GET to read metrics")
            return self._handle_metrics()
        match = _TENANT_BUDGET_PATH.match(path)
        if match:
            if method == "GET":
                return self._handle_budget_get(match.group(1))
            if method == "POST":
                return self._handle_budget_post(match.group(1))
            raise _RequestError(405, "use GET or POST on a tenant budget")
        raise _RequestError(404, f"no such resource: {path}")

    # -- handlers -----------------------------------------------------------

    def _handle_submit(self) -> None:
        server: BrokerHTTPServer = self.server
        body = self._read_json()
        tenant = str(body.get("tenant") or DEFAULT_TENANT)
        principal = self._principal()
        server.controller.authorize(principal, tenant)
        # Backpressure before any per-tenant gate: a full queue refuses
        # everyone, whoever asks.
        if server.max_pending is not None:
            pending = server.broker.queue.counts()["pending"]
            if pending >= server.max_pending:
                raise BackpressureError(
                    f"queue depth {pending} is at the server's cap "
                    f"({server.max_pending}); retry once workers drain it",
                    retry_after=1.0,
                )
        spec_payload = body.get("spec")
        if not isinstance(spec_payload, dict):
            raise SpecValidationError(
                "submission body must carry a 'spec' object "
                "(MechanismSpec.to_dict())"
            )
        spec = spec_from_dict(dict(spec_payload))
        job_id = server.reserve_submission(tenant, body.get("job_id"))
        try:
            server.broker.submit(
                spec,
                engine=str(body.get("engine") or "batch"),
                trials=body.get("trials", 1),
                seed=body.get("seed", 0),
                chunk_trials=body.get("chunk_trials"),
                options=body.get("options"),
                job_id=job_id,
                tenant=tenant,
                priority=body.get("priority", DEFAULT_PRIORITY),
            )
        except BaseException:
            server.release_submission(tenant, job_id)
            raise
        status = server.broker.status(job_id)
        self._send_json(201, self._status_payload(status))

    def _handle_status(self, job_id: str) -> None:
        principal = self._principal()
        manifest = self._authorized_manifest(job_id, principal)
        status = self.server.broker._status_from_manifest(job_id, manifest)
        self._send_json(200, self._status_payload(status))

    def _handle_status_many(self, query: str) -> None:
        """``GET /v1/jobs?ids=a,b,c``: N statuses in one round-trip.

        Strict by design: every id must exist (404 names the first that
        does not) and be authorized for the caller (403 otherwise) -- a
        poller waiting on a wave of jobs must never mistake a dropped id
        for progress.  Duplicates collapse; the response maps job id to
        the same payload ``GET /v1/jobs/<id>`` returns.
        """
        raw = parse_qs(query).get("ids", [])
        job_ids = [jid for chunk in raw for jid in chunk.split(",") if jid]
        if not job_ids:
            raise _RequestError(400, "batch status needs ids=<id>[,<id>...]")
        if len(job_ids) > MAX_BATCH_STATUS_IDS:
            raise _RequestError(
                400,
                f"batch status accepts at most {MAX_BATCH_STATUS_IDS} ids "
                f"per request, got {len(job_ids)}",
            )
        principal = self._principal()
        broker = self.server.broker
        jobs: Dict[str, dict] = {}
        for job_id in job_ids:
            if job_id in jobs:
                continue
            manifest = self._authorized_manifest(job_id, principal)
            status = broker._status_from_manifest(job_id, manifest)
            jobs[job_id] = self._status_payload(status)
        self._send_json(200, {"jobs": jobs})

    def _handle_result(self, job_id: str) -> None:
        principal = self._principal()
        manifest = self._authorized_manifest(job_id, principal)
        broker = self.server.broker
        try:
            result = broker.result(job_id)
        except (JobFailedError, ServiceError) as exc:
            # Annotate with the job state so the client can tell a
            # keep-polling 409 (running) from a terminal one (failed/
            # cancelled) without parsing prose.
            status = broker._status_from_manifest(job_id, manifest)
            exc.job_state = status.state
            raise
        self._send(200, encode_result(result), "application/octet-stream")

    def _handle_cancel(self, job_id: str) -> None:
        principal = self._principal()
        self._authorized_manifest(job_id, principal)
        status = self.server.broker.cancel(job_id)
        self._send_json(200, self._status_payload(status))

    def _handle_metrics(self) -> None:
        self._principal()  # any authenticated caller (or open mode)
        # Deferred import: tenancy imports service modules lazily for the
        # same reason; keep the daemon importable without the metrics pull.
        from repro.tenancy.metrics import collect_metrics

        self._send_json(200, collect_metrics(self.server.broker.root))

    def _budget_payload(self, tenant: str) -> dict:
        ledger = self.server.broker.ledger
        total = ledger.total(tenant)
        return {
            "tenant": tenant,
            "total": total,
            "spent": ledger.spent(tenant),
            "charged": ledger.charged(tenant),
            "remaining": ledger.remaining(tenant) if total is not None else None,
        }

    def _handle_budget_get(self, tenant: str) -> None:
        principal = self._principal()
        self.server.controller.authorize(principal, tenant)
        self._send_json(200, self._budget_payload(tenant))

    def _handle_budget_post(self, tenant: str) -> None:
        principal = self._principal()
        # Granting yourself budget would defeat the ledger: on a configured
        # controller only the admin token may write budgets.
        if not self.server.controller.open and principal != ADMIN:
            raise AuthorizationError(
                "budget writes require the operator (admin) token"
            )
        body = self._read_json()
        unknown = set(body) - {"grant", "refund"}
        if unknown:
            raise _RequestError(
                400, f"unknown budget field(s) {sorted(unknown)}"
            )
        ledger = self.server.broker.ledger
        if body.get("grant") is not None:
            ledger.grant(tenant, float(body["grant"]))
        if body.get("refund") is not None:
            ledger.refund(tenant, float(body["refund"]))
        self._send_json(200, self._budget_payload(tenant))


def serve_broker(
    root: Union[Broker, str, os.PathLike],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    controller: Optional[AccessController] = None,
    auth_file: Union[None, str, os.PathLike] = None,
    max_pending: Optional[int] = DEFAULT_MAX_PENDING,
    verbose: bool = False,
) -> BrokerHTTPServer:
    """Build (but do not start) the daemon for one service root.

    ``port=0`` binds an ephemeral port (read it back from ``server.url``).
    Call ``server.serve_forever()`` to run, ``server.shutdown()`` to stop;
    the CLI verb ``serve-broker`` is exactly that loop.
    """
    if controller is None:
        controller = (
            AccessController.from_file(auth_file)
            if auth_file is not None
            else AccessController()
        )
    elif auth_file is not None:
        raise ValueError("pass either controller= or auth_file=, not both")
    return BrokerHTTPServer(
        (host, int(port)),
        root,
        controller=controller,
        max_pending=max_pending,
        verbose=verbose,
    )
