"""Byte-exact :class:`Result` framing for the HTTP transport.

The network boundary must not weaken the service determinism contract: a
result fetched over HTTP has to be **bit-identical** to the one an
in-process ``run(spec, shards=N)`` produces.  Arrays therefore cross the
wire in numpy's lossless ``.npz`` container -- exactly the encoding the
shared :class:`~repro.dispatch.cache.DiskResultCache` already trusts for
the same property -- and the scalar metadata rides alongside as canonical
JSON.

Frame layout (one self-delimiting byte string, e.g. an HTTP response body)::

    MAGIC (6 bytes)  |  meta length (4 bytes, big endian)  |  meta JSON  |  npz

``MAGIC`` pins the format version: a future incompatible change bumps the
trailing digit and old/new peers fail loudly instead of misparsing.
"""

from __future__ import annotations

import io
import json
import struct

import numpy as np

from repro.api.result import Result

# The single source of truth for which Result fields are arrays lives next
# to the disk serializer (same private-import idiom as the broker's
# _check_options): wire and cache encodings must never drift apart.
from repro.dispatch.cache import _ARRAY_FIELDS

__all__ = ["MAGIC", "WireError", "decode_result", "encode_result"]

MAGIC = b"RPRES1"

_HEADER = struct.Struct(">I")


class WireError(ValueError):
    """Raised when a byte string is not a valid result frame."""


def encode_result(result: Result) -> bytes:
    """Serialize ``result`` into one self-delimiting byte frame."""
    if not isinstance(result, Result):
        raise TypeError(
            f"can only encode Result objects, got {type(result).__name__}"
        )
    arrays = {
        name: getattr(result, name)
        for name in _ARRAY_FIELDS
        if getattr(result, name) is not None
    }
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    meta = {
        "mechanism": result.mechanism,
        "engine": result.engine,
        "trials": result.trials,
        "epsilon": result.epsilon,
        "monotonic": result.monotonic,
        "extra": dict(result.extra),
        "arrays": sorted(arrays),
    }
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    return MAGIC + _HEADER.pack(len(meta_bytes)) + meta_bytes + payload


def decode_result(data: bytes) -> Result:
    """Reconstruct the :class:`Result` a frame carries, bit-identically."""
    if not data.startswith(MAGIC):
        raise WireError(
            "not a result frame (bad magic; peer version mismatch or a "
            "non-result body)"
        )
    offset = len(MAGIC)
    if len(data) < offset + _HEADER.size:
        raise WireError("truncated result frame (no metadata header)")
    (meta_len,) = _HEADER.unpack_from(data, offset)
    offset += _HEADER.size
    if len(data) < offset + meta_len:
        raise WireError("truncated result frame (metadata cut short)")
    try:
        meta = json.loads(data[offset : offset + meta_len].decode("utf-8"))
        with np.load(
            io.BytesIO(data[offset + meta_len :]), allow_pickle=False
        ) as payload:
            arrays = {name: payload[name] for name in meta["arrays"]}
        return Result(
            mechanism=meta["mechanism"],
            engine=meta["engine"],
            trials=int(meta["trials"]),
            epsilon=float(meta["epsilon"]),
            monotonic=bool(meta["monotonic"]),
            extra=dict(meta["extra"]),
            **{name: None for name in _ARRAY_FIELDS if name not in arrays},
            **arrays,
        )
    except WireError:
        raise
    except Exception as exc:  # noqa: BLE001 -- any malformed frame is one error
        raise WireError(f"malformed result frame: {exc}") from exc
