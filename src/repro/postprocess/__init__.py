"""Post-processing of the free gap information.

Differential privacy is closed under post-processing, so anything computed
from already-released values costs no additional budget.  The paper exploits
this in two ways, both implemented here:

* :mod:`~repro.postprocess.blue` -- Theorem 3 / Corollary 1: the best linear
  unbiased estimator (BLUE) that fuses direct noisy measurements of the top-k
  queries with the consecutive gaps released by Noisy-Top-K-with-Gap.  Error
  reduction approaches 50 % for counting queries as k grows.
* :mod:`~repro.postprocess.svt_fusion` -- Section 6.2: inverse-variance
  weighted fusion of the SVT gap (plus the public threshold) with an
  independent noisy measurement of each selected query.
* :mod:`~repro.postprocess.confidence` -- Lemma 5: lower-tail bounds for the
  difference of two independent Laplace variables, yielding lower confidence
  bounds on how far a selected query really is above the threshold.
* :mod:`~repro.postprocess.theory` -- the closed-form expected improvement
  curves plotted alongside the empirical results in Figures 1 and 2.
"""

from repro.postprocess.blue import (
    blue_matrices,
    blue_top_k_estimate,
    blue_variance_ratio,
)
from repro.postprocess.svt_fusion import (
    fuse_gap_and_measurement,
    svt_gap_estimates,
)
from repro.postprocess.confidence import (
    gap_lower_confidence_bound,
    laplace_difference_cdf,
    laplace_difference_tail,
)
from repro.postprocess.theory import (
    svt_expected_improvement,
    top_k_expected_improvement,
)
from repro.postprocess.consistency import (
    consistent_top_k_estimate,
    isotonic_nonincreasing,
    ordering_violations,
)
from repro.postprocess.budget_split import (
    fused_variance_for_split,
    minimum_selection_fraction,
    optimal_selection_fraction,
    split_improvement_over_even,
)

__all__ = [
    "blue_matrices",
    "blue_top_k_estimate",
    "blue_variance_ratio",
    "consistent_top_k_estimate",
    "isotonic_nonincreasing",
    "ordering_violations",
    "fused_variance_for_split",
    "minimum_selection_fraction",
    "optimal_selection_fraction",
    "split_improvement_over_even",
    "fuse_gap_and_measurement",
    "svt_gap_estimates",
    "gap_lower_confidence_bound",
    "laplace_difference_cdf",
    "laplace_difference_tail",
    "top_k_expected_improvement",
    "svt_expected_improvement",
]
