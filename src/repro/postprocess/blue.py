"""BLUE fusion of top-k measurements with free gaps (Theorem 3, Corollary 1).

Setting: Noisy-Top-K-with-Gap selected queries ``q_1 >= ... >= q_k`` and
released consecutive noisy gaps ``g_1, ..., g_{k-1}`` (between the selected
queries); the measurement step then released direct noisy answers
``alpha_1, ..., alpha_k``.  Writing ``Var(measurement noise) : Var(gap noise
per query) = 1 : lambda``, Theorem 3 of the paper gives the best linear
unbiased estimator of the true answers as ``beta = (X @ alpha + Y @ g) /
((1 + lambda) k)`` with the explicit matrices X and Y, and Corollary 1 shows
the variance ratio ``Var(beta_i) / Var(alpha_i) = (1 + lambda k) / (k +
lambda k)``.

The matrix product collapses to an O(k) streaming computation (the three-step
procedure after Theorem 3 in the paper), which :func:`blue_top_k_estimate`
implements; :func:`blue_matrices` builds the explicit matrices for testing and
for small-k illustration.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray]


def blue_matrices(k: int, lam: float) -> Tuple[np.ndarray, np.ndarray]:
    """The explicit BLUE matrices ``(X, Y)`` of Theorem 3.

    Parameters
    ----------
    k:
        Number of selected/measured queries.
    lam:
        Ratio ``Var(gap noise per query) / Var(measurement noise)``
        (the ``lambda`` of Theorem 3).

    Returns
    -------
    (X, Y):
        ``X`` is ``k x k`` and ``Y`` is ``k x (k-1)``; the BLUE is
        ``(X @ alpha + Y @ g) / ((1 + lam) * k)``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if lam <= 0:
        raise ValueError("lambda must be positive")
    x = np.ones((k, k)) + lam * k * np.eye(k)
    if k == 1:
        return x, np.zeros((1, 0))
    # First term: every row is (k-1, k-2, ..., 1).
    descending = np.arange(k - 1, 0, -1, dtype=float)
    first = np.tile(descending, (k, 1))
    # Second term: strictly lower-triangular matrix of k's.
    second = np.zeros((k, k - 1))
    for i in range(1, k):
        second[i, :i] = k
    y = first - second
    return x, y


def blue_top_k_estimate(
    measurements: ArrayLike,
    gaps: ArrayLike,
    lam: float = 1.0,
) -> np.ndarray:
    """Fuse direct measurements with consecutive gaps into BLUE estimates.

    Parameters
    ----------
    measurements:
        ``alpha_1..alpha_k`` -- independent noisy measurements of the k
        selected queries, in the selection order (largest first).
    gaps:
        ``g_1..g_{k-1}`` -- consecutive gaps *between the selected queries*
        released by Noisy-Top-K-with-Gap.  (Algorithm 1 releases k gaps, the
        last being the gap to the best unselected query; only the first
        ``k-1`` relate the selected queries to each other and are used here.)
    lam:
        Ratio ``Var(gap noise per query) / Var(measurement noise)``.  For the
        even selection/measurement budget split on counting queries both
        variances are ``8k^2/epsilon^2`` so ``lam = 1`` (the paper's default).

    Returns
    -------
    numpy.ndarray
        BLUE estimates ``beta_1..beta_k`` of the true answers.

    Examples
    --------
    >>> beta = blue_top_k_estimate([10.0, 8.0, 5.0], [2.0, 3.0])
    >>> beta.shape
    (3,)
    """
    alpha = np.asarray(measurements, dtype=float)
    g = np.asarray(gaps, dtype=float)
    if alpha.ndim != 1:
        raise ValueError("measurements must be a one-dimensional vector")
    k = alpha.size
    if k < 1:
        raise ValueError("need at least one measurement")
    if g.shape != (k - 1,):
        raise ValueError(
            f"expected {k - 1} gaps for k={k} measurements, got {g.size}"
        )
    if lam <= 0:
        raise ValueError("lambda must be positive")
    if k == 1:
        return alpha.copy()

    # O(k) streaming form of beta = (X alpha + Y g) / ((1+lam) k):
    #   alpha_sum = sum_i alpha_i
    #   p         = sum_{i<k} (k - i) * g_i
    #   prefix_i  = g_1 + ... + g_i          (prefix_0 = 0)
    #   beta_i    = (alpha_sum + lam*k*alpha_i + p - k*prefix_{i-1}) / ((1+lam) k)
    alpha_sum = float(alpha.sum())
    weights = np.arange(k - 1, 0, -1, dtype=float)
    p = float(np.dot(weights, g))
    prefix = np.concatenate([[0.0], np.cumsum(g)])[:k]
    beta = (alpha_sum + lam * k * alpha + p - k * prefix) / ((1.0 + lam) * k)
    return beta


def blue_top_k_estimate_batch(
    measurements: ArrayLike,
    gaps: ArrayLike,
    lam: float = 1.0,
) -> np.ndarray:
    """Row-wise :func:`blue_top_k_estimate` over a batch of trials.

    Parameters
    ----------
    measurements:
        ``(B, k)`` matrix -- one row of direct measurements per trial.
    gaps:
        ``(B, k-1)`` matrix -- the matching consecutive between-selected
        gaps per trial.
    lam:
        Ratio ``Var(gap noise per query) / Var(measurement noise)``, shared
        by all trials.

    Returns
    -------
    numpy.ndarray
        ``(B, k)`` matrix of BLUE estimates; row ``b`` equals
        ``blue_top_k_estimate(measurements[b], gaps[b], lam)``.
    """
    alpha = np.asarray(measurements, dtype=float)
    g = np.asarray(gaps, dtype=float)
    if alpha.ndim != 2:
        raise ValueError("measurements must be a (trials, k) matrix")
    trials, k = alpha.shape
    if k < 1:
        raise ValueError("need at least one measurement per trial")
    if g.shape != (trials, k - 1):
        raise ValueError(
            f"expected a ({trials}, {k - 1}) gap matrix for {k} measurements, "
            f"got {g.shape}"
        )
    if lam <= 0:
        raise ValueError("lambda must be positive")
    if k == 1:
        return alpha.copy()

    alpha_sum = alpha.sum(axis=1, keepdims=True)
    weights = np.arange(k - 1, 0, -1, dtype=float)
    p = g @ weights
    prefix = np.concatenate(
        [np.zeros((trials, 1)), np.cumsum(g, axis=1)], axis=1
    )[:, :k]
    return (alpha_sum + lam * k * alpha + p[:, None] - k * prefix) / ((1.0 + lam) * k)


def blue_variance_ratio(k: int, lam: float = 1.0) -> float:
    """Corollary 1: ``Var(beta_i) / Var(alpha_i) = (1 + lam k) / (k + lam k)``.

    The expected *improvement* in mean squared error from using the gaps is
    ``1 - blue_variance_ratio(k, lam)``; for counting queries (``lam = 1``)
    this is ``(k - 1) / (2k)``, approaching 50 % for large k.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if lam <= 0:
        raise ValueError("lambda must be positive")
    return (1.0 + lam * k) / (k + lam * k)
