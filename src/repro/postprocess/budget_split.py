"""Optimising the selection/measurement budget split.

The paper's select-then-measure protocol (Sections 5.2 and 6.2) splits the
total budget evenly: half for the with-gap selection, half for the direct
measurements.  Under the Corollary 1 variance model alone, putting *less*
budget into the selection always looks better (the gaps simply get
down-weighted and the measurements get more budget) -- but that model assumes
the selection step identifies and orders the true top k, which fails once the
selection noise becomes comparable to the separation between the top scores.
The practically meaningful question is therefore constrained:

    spend as little as possible on selection **while still ordering the top-k
    correctly with the desired probability**, and put the rest into
    measurement.

This module provides exactly that:

* :func:`fused_variance_for_split` -- variance of a BLUE-fused estimate when
  a fraction ``rho`` of the budget funds the selection (valid in the regime
  where the selection is correct);
* :func:`minimum_selection_fraction` -- the smallest ``rho`` for which the
  selection noise is small enough to keep the probability of selecting the
  true maximiser above a target, given the data's top-score separation (uses
  the sufficient condition of
  :func:`repro.analysis.selection.minimum_separation_for_accuracy`);
* :func:`optimal_selection_fraction` -- the constrained optimum: the smallest
  feasible ``rho`` (because the fused variance is decreasing in the
  measurement budget), clipped to a sensible floor;
* :func:`split_improvement_over_even` -- MSE change of the constrained
  optimum relative to the paper's even split, for a given separation.

All formulas are for monotonic (counting) queries unless ``monotonic=False``.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.analysis.selection import minimum_separation_for_accuracy

ArrayLike = Union[float, np.ndarray]


def _scales_for_split(
    total_epsilon: float, k: int, rho: ArrayLike, monotonic: bool
) -> Tuple[ArrayLike, ArrayLike]:
    """Selection and measurement Laplace scales for selection fraction rho."""
    rho = np.asarray(rho, dtype=float)
    selection_epsilon = rho * total_epsilon
    measurement_epsilon = (1.0 - rho) * total_epsilon
    # Noisy-Top-K-with-Gap charged selection_epsilon uses Laplace(k/eps) noise
    # for monotonic queries and Laplace(2k/eps) otherwise (Theorem 2).
    selection_factor = 1.0 if monotonic else 2.0
    selection_scale = selection_factor * k / selection_epsilon
    measurement_scale = k / measurement_epsilon
    return selection_scale, measurement_scale


def fused_variance_for_split(
    total_epsilon: float,
    k: int,
    rho: ArrayLike,
    monotonic: bool = True,
) -> ArrayLike:
    """Variance of a BLUE-fused top-k estimate for selection fraction ``rho``.

    Parameters
    ----------
    total_epsilon:
        Total privacy budget of the select-then-measure protocol.
    k:
        Number of selected/measured queries.
    rho:
        Fraction of the budget given to the Noisy-Top-K-with-Gap selection
        (the paper uses 0.5).  Scalar or array in (0, 1).
    monotonic:
        Whether the queries are monotonic (counting queries).

    Notes
    -----
    With measurement noise variance ``sigma_m^2`` and per-query selection
    noise variance ``sigma_s^2``, Corollary 1 gives the fused variance
    ``sigma_m^2 * (1 + lambda k) / (k + lambda k)`` with
    ``lambda = sigma_s^2 / sigma_m^2``, which simplifies to
    ``(sigma_m^2 + k sigma_s^2) / (k + k lambda)``... the implementation uses
    the Corollary 1 form directly.
    """
    if total_epsilon <= 0:
        raise ValueError("total_epsilon must be positive")
    if k < 1:
        raise ValueError("k must be at least 1")
    rho_arr = np.asarray(rho, dtype=float)
    if np.any((rho_arr <= 0) | (rho_arr >= 1)):
        raise ValueError("rho must lie strictly between 0 and 1")
    selection_scale, measurement_scale = _scales_for_split(
        total_epsilon, k, rho_arr, monotonic
    )
    measurement_variance = 2.0 * measurement_scale**2
    selection_variance = 2.0 * selection_scale**2
    lam = selection_variance / measurement_variance
    fused = measurement_variance * (1.0 + lam * k) / (k + lam * k)
    if np.isscalar(rho) or isinstance(rho, float):
        return float(fused)
    return fused


def minimum_selection_fraction(
    total_epsilon: float,
    k: int,
    separation: float,
    num_queries: int,
    target_probability: float = 0.95,
    monotonic: bool = True,
) -> float:
    """Smallest selection fraction that still orders the top scores reliably.

    Parameters
    ----------
    total_epsilon:
        Total budget of the protocol.
    k:
        Number of queries to select.
    separation:
        The margin by which the winning scores lead their competitors (e.g.
        the difference between the k-th and (k+1)-th true counts).
    num_queries:
        Total number of candidate queries ``n``.
    target_probability:
        Desired probability that the noisy selection respects the true
        ordering margin.
    monotonic:
        Whether the queries are monotonic (counting queries).

    Returns
    -------
    float
        The smallest ``rho`` in (0, 1) for which the selection noise scale
        satisfies the sufficient condition of
        :func:`repro.analysis.selection.minimum_separation_for_accuracy`.
        Returns 1.0 (exclusive upper bound clipped to 0.999) when even the
        full budget cannot meet the target -- the caller should then question
        the target or the workload.
    """
    if separation <= 0:
        raise ValueError("separation must be positive")
    # Required: separation >= -2 * scale * log(failure / (n - 1)), i.e.
    # scale <= separation / (-2 log(failure / (n-1))).  Invert for rho using
    # scale(rho) = factor * k / (rho * total_epsilon).
    reference_scale = 1.0
    required_margin_per_unit_scale = minimum_separation_for_accuracy(
        num_queries, reference_scale, target_probability
    )
    max_scale = separation / required_margin_per_unit_scale
    factor = 1.0 if monotonic else 2.0
    rho = factor * k / (max_scale * total_epsilon)
    return float(min(max(rho, 1e-3), 0.999))


def optimal_selection_fraction(
    total_epsilon: float,
    k: int,
    separation: float,
    num_queries: int,
    target_probability: float = 0.95,
    monotonic: bool = True,
) -> float:
    """Constrained-optimal selection fraction for the select-then-measure protocol.

    The fused variance decreases as the measurement budget grows, so the
    optimum is the *smallest* selection fraction that still keeps the
    selection reliable (see :func:`minimum_selection_fraction`).
    """
    return minimum_selection_fraction(
        total_epsilon, k, separation, num_queries, target_probability, monotonic
    )


def split_improvement_over_even(
    total_epsilon: float,
    k: int,
    separation: float,
    num_queries: int,
    target_probability: float = 0.95,
    monotonic: bool = True,
) -> float:
    """MSE change of the constrained-optimal split relative to the even split.

    Positive values mean the optimal split lowers the fused MSE; zero or
    negative values mean the even split is already (at least) as good --
    which happens whenever the workload's separation forces a selection
    fraction of one half or more.
    """
    best_rho = optimal_selection_fraction(
        total_epsilon, k, separation, num_queries, target_probability, monotonic
    )
    even = fused_variance_for_split(total_epsilon, k, 0.5, monotonic)
    best = fused_variance_for_split(total_epsilon, k, max(best_rho, 1e-3), monotonic)
    return float(1.0 - best / even)
