"""Confidence bounds on SVT gaps (Lemma 5 of the paper).

The randomness in a released SVT gap is ``eta_i - eta`` where ``eta`` is the
threshold noise (``Laplace(1/eps_0)``) and ``eta_i`` is the per-query noise
(``Laplace(1/eps_star)`` with ``eps_star`` either the middle- or top-branch
budget).  Lemma 5 gives the lower-tail distribution of this difference, from
which one can compute a value ``t_c`` such that with confidence ``c`` the true
query answer is at least ``(gap + T) - t_c``.

This module implements the density, CDF and tail of the difference of two
independent zero-mean Laplace variables and a root-finding routine for the
confidence radius ``t_c``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


def laplace_difference_pdf(z: ArrayLike, eps0: float, eps_star: float) -> ArrayLike:
    """Density of ``eta_i - eta`` at ``z``.

    ``eta`` has scale ``1/eps0`` and ``eta_i`` has scale ``1/eps_star``; both
    are independent and zero-mean.  The closed forms follow Lemma 5's
    derivation in Appendix A.4 of the paper.
    """
    if eps0 <= 0 or eps_star <= 0:
        raise ValueError("eps0 and eps_star must be positive")
    z = np.abs(np.asarray(z, dtype=float))
    if np.isclose(eps0, eps_star):
        e = eps0
        return (e / 4.0 + e**2 * z / 4.0) * np.exp(-e * z)
    num = eps0 * eps_star * (eps0 * np.exp(-eps_star * z) - eps_star * np.exp(-eps0 * z))
    return num / (2.0 * (eps0**2 - eps_star**2))


def laplace_difference_tail(t: ArrayLike, eps0: float, eps_star: float) -> ArrayLike:
    """``P(eta_i - eta >= -t)`` for ``t >= 0`` (Lemma 5).

    This is the probability that the released gap under-estimates the true
    gap by at most ``t``.
    """
    if eps0 <= 0 or eps_star <= 0:
        raise ValueError("eps0 and eps_star must be positive")
    t = np.asarray(t, dtype=float)
    if np.any(t < 0):
        raise ValueError("t must be non-negative")
    if np.isclose(eps0, eps_star):
        return 1.0 - (2.0 + eps0 * t) / 4.0 * np.exp(-eps0 * t)
    numerator = eps0**2 * np.exp(-eps_star * t) - eps_star**2 * np.exp(-eps0 * t)
    return 1.0 - numerator / (2.0 * (eps0**2 - eps_star**2))


def laplace_difference_cdf(z: ArrayLike, eps0: float, eps_star: float) -> ArrayLike:
    """CDF of ``eta_i - eta`` at ``z`` (valid for all real ``z`` by symmetry)."""
    z = np.asarray(z, dtype=float)
    # For z <= 0, P(X <= z) = 1 - P(X >= z) = 1 - P(X >= -|z|) ... use symmetry:
    # X is symmetric about 0, so P(X <= z) = P(X >= -z) = tail(-z) for z <= 0
    # and P(X <= z) = 1 - P(X <= -z) for z >= 0.
    neg = laplace_difference_tail(np.where(z <= 0, -z, 0.0), eps0, eps_star) - (
        1.0 - laplace_difference_tail(np.where(z <= 0, -z, 0.0), eps0, eps_star)
    )
    # Simpler: P(X <= z) = 1 - P(X > z).  For z >= 0, P(X > z) = P(X < -z)
    # = 1 - P(X >= -z) = 1 - tail(z).  So P(X <= z) = tail(z) for z >= 0.
    pos_part = laplace_difference_tail(np.abs(z), eps0, eps_star)
    return np.where(z >= 0, pos_part, 1.0 - pos_part)


def gap_lower_confidence_bound(
    gap: float,
    threshold: float,
    eps0: float,
    eps_star: float,
    confidence: float = 0.95,
    tolerance: float = 1e-10,
) -> float:
    """Lower confidence bound on the true answer of a selected query.

    Finds ``t_c`` with ``P(eta_i - eta >= -t_c) = confidence`` by bisection
    and returns ``gap + threshold - t_c``: with probability ``confidence``
    the true query answer is at least this value.

    Parameters
    ----------
    gap:
        The released noisy gap ``gamma_i``.
    threshold:
        The public threshold ``T``.
    eps0:
        Budget of the threshold noise.
    eps_star:
        Budget of the per-query noise of the branch that produced the gap.
    confidence:
        Desired confidence level in (0, 1).
    tolerance:
        Bisection tolerance on the tail probability.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly between 0 and 1")
    target = confidence

    def tail(t: float) -> float:
        return float(laplace_difference_tail(t, eps0, eps_star))

    # tail(0) = 1/2 < target for any confidence > 0.5; expand an upper bracket.
    lo, hi = 0.0, 1.0
    while tail(hi) < target:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - defensive
            raise RuntimeError("failed to bracket the confidence radius")
    if target <= 0.5:
        return gap + threshold  # the gap itself is already a (>=50%) lower bound
    while hi - lo > 1e-12 * max(1.0, hi) and tail(lo) < target - tolerance:
        mid = 0.5 * (lo + hi)
        if tail(mid) < target:
            lo = mid
        else:
            hi = mid
    t_c = hi
    return gap + threshold - t_c
