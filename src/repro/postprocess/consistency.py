"""Ordering-consistency post-processing for top-k estimates.

Noisy-Top-K-with-Gap reports the selected queries in descending noisy order,
and the BLUE fusion of Theorem 3 produces per-query estimates -- but nothing
forces those estimates to respect the reported order, and independent noise
can leave small inversions (estimate i+1 exceeding estimate i).  Because
differential privacy is closed under post-processing, the estimates can be
projected onto the monotone (non-increasing) cone at no privacy cost, which
both restores the semantics of "these are the top k in this order" and can
only reduce the total squared error to the true (sorted) values.

The projection is the classic Pool-Adjacent-Violators Algorithm (PAVA) for
isotonic regression, implemented here for the non-increasing case with
optional weights (inverse variances), plus a convenience wrapper that
combines BLUE fusion with the projection.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.postprocess.blue import blue_top_k_estimate

ArrayLike = Union[Sequence[float], np.ndarray]


def isotonic_nonincreasing(
    values: ArrayLike,
    weights: Optional[ArrayLike] = None,
) -> np.ndarray:
    """Weighted least-squares projection onto non-increasing sequences.

    Parameters
    ----------
    values:
        The sequence to project.
    weights:
        Optional positive weights (e.g. inverse variances).  Uniform when
        omitted.

    Returns
    -------
    numpy.ndarray
        The projected sequence: non-increasing, and minimising the weighted
        squared distance to ``values`` among all non-increasing sequences.

    Examples
    --------
    >>> isotonic_nonincreasing([3.0, 5.0, 1.0]).tolist()
    [4.0, 4.0, 1.0]
    """
    y = np.asarray(values, dtype=float)
    if y.ndim != 1:
        raise ValueError("values must be a one-dimensional vector")
    if y.size == 0:
        return y.copy()
    if weights is None:
        w = np.ones_like(y)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != y.shape:
            raise ValueError("weights must match values in shape")
        if np.any(w <= 0):
            raise ValueError("weights must be positive")

    # PAVA for the non-increasing case: negate, solve non-decreasing, negate.
    target = -y
    # Each block is [start_index, weighted_mean, total_weight].
    blocks: list = []
    for i in range(target.size):
        blocks.append([i, target[i], w[i]])
        # Merge while the monotonicity constraint is violated.
        while len(blocks) > 1 and blocks[-2][1] > blocks[-1][1]:
            start, mean_b, weight_b = blocks.pop()
            _, mean_a, weight_a = blocks[-1]
            merged_weight = weight_a + weight_b
            merged_mean = (mean_a * weight_a + mean_b * weight_b) / merged_weight
            blocks[-1][1] = merged_mean
            blocks[-1][2] = merged_weight
    result = np.empty_like(target)
    for block_index, (start, mean, _) in enumerate(blocks):
        end = blocks[block_index + 1][0] if block_index + 1 < len(blocks) else target.size
        result[start:end] = mean
    return -result


def consistent_top_k_estimate(
    measurements: ArrayLike,
    gaps: ArrayLike,
    lam: float = 1.0,
    enforce_nonnegative_gaps: bool = True,
) -> np.ndarray:
    """BLUE fusion followed by an ordering-consistency projection.

    Parameters
    ----------
    measurements:
        Direct noisy measurements of the selected queries, in selection order.
    gaps:
        The ``k-1`` consecutive gaps between selected queries released by
        Noisy-Top-K-with-Gap.
    lam:
        The variance ratio of Theorem 3 (1 for counting queries under the
        even budget split).
    enforce_nonnegative_gaps:
        When True (default) the fused estimates are projected onto the
        non-increasing cone, so consecutive differences are non-negative like
        the released gaps themselves.

    Returns
    -------
    numpy.ndarray
        Estimates that are both gap-fused and order-consistent.
    """
    fused = blue_top_k_estimate(measurements, gaps, lam=lam)
    if not enforce_nonnegative_gaps or fused.size <= 1:
        return fused
    return isotonic_nonincreasing(fused)


def ordering_violations(estimates: ArrayLike) -> int:
    """Number of adjacent inversions in a supposedly non-increasing sequence."""
    values = np.asarray(estimates, dtype=float)
    if values.ndim != 1:
        raise ValueError("estimates must be a one-dimensional vector")
    if values.size <= 1:
        return 0
    return int(np.sum(np.diff(values) > 1e-12))
