"""Fusion of SVT gap information with direct measurements (Section 6.2).

When a with-gap Sparse Vector variant reports query ``q_i`` as above the
threshold with noisy gap ``gamma_i``, the quantity ``gamma_i + T`` is already
an unbiased estimate of ``q_i(D)``.  If an independent noisy measurement
``alpha_i`` of the same query is also available (from the measurement half of
the budget), the two can be combined by inverse-variance weighting -- the
standard minimum-variance combination of independent unbiased estimators --
yielding the improved estimate ``beta_i`` analysed in Section 6.2 of the
paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.mechanisms.sparse_vector import SvtBranch, SvtResult

ArrayLike = Union[Sequence[float], np.ndarray]


def fuse_gap_and_measurement(
    gap_estimates: ArrayLike,
    gap_variances: ArrayLike,
    measurements: ArrayLike,
    measurement_variance: float,
) -> np.ndarray:
    """Inverse-variance weighted fusion of two unbiased estimates.

    Parameters
    ----------
    gap_estimates:
        ``gamma_i + T`` -- gap-based estimates of the selected queries.
    gap_variances:
        Variance of each gap-based estimate (threshold noise variance plus
        the per-query noise variance of the branch that produced it).
    measurements:
        ``alpha_i`` -- independent direct noisy measurements.
    measurement_variance:
        Variance of each direct measurement.

    Returns
    -------
    numpy.ndarray
        The fused estimates ``beta_i``.
    """
    gap_est = np.asarray(gap_estimates, dtype=float)
    gap_var = np.asarray(gap_variances, dtype=float)
    meas = np.asarray(measurements, dtype=float)
    if gap_est.shape != meas.shape:
        raise ValueError("gap_estimates and measurements must have the same shape")
    if gap_var.shape != gap_est.shape:
        raise ValueError("gap_variances must match gap_estimates in shape")
    if measurement_variance <= 0:
        raise ValueError("measurement_variance must be positive")
    if np.any(gap_var <= 0):
        raise ValueError("gap variances must be positive")
    w_gap = 1.0 / gap_var
    w_meas = 1.0 / measurement_variance
    return (w_meas * meas + w_gap * gap_est) / (w_meas + w_gap)


def fused_variance(gap_variance: float, measurement_variance: float) -> float:
    """Variance of the inverse-variance weighted combination."""
    if gap_variance <= 0 or measurement_variance <= 0:
        raise ValueError("variances must be positive")
    return 1.0 / (1.0 / gap_variance + 1.0 / measurement_variance)


def svt_gap_estimates(
    result: SvtResult,
    threshold: Optional[float] = None,
    gap_variances: Optional[dict] = None,
) -> tuple:
    """Extract gap-based query estimates and their variances from an SVT run.

    Parameters
    ----------
    result:
        Output of a with-gap SVT variant (:class:`SparseVectorWithGap` or
        :class:`AdaptiveSparseVectorWithGap`).
    threshold:
        The public threshold ``T``; defaults to the value recorded in the
        result's metadata.
    gap_variances:
        Mapping from :class:`SvtBranch` to the gap variance of that branch.
        When omitted, the variances recorded on the mechanism metadata are
        used if present; otherwise a ``ValueError`` is raised.

    Returns
    -------
    (indices, estimates, variances):
        Parallel lists for the above-threshold outcomes that carried a gap.
    """
    if threshold is None:
        threshold = result.metadata.extra.get("threshold")
        if threshold is None:
            raise ValueError("threshold not supplied and not present in metadata")
    indices: List[int] = []
    estimates: List[float] = []
    variances: List[float] = []
    extra = result.metadata.extra
    for outcome in result.outcomes:
        if not outcome.above or outcome.gap is None:
            continue
        if gap_variances is not None:
            if outcome.branch not in gap_variances:
                raise ValueError(f"no gap variance supplied for branch {outcome.branch}")
            variance = float(gap_variances[outcome.branch])
        elif "gap_variance" in extra:
            variance = float(extra["gap_variance"])
        else:
            raise ValueError(
                "gap variances must be supplied (per branch) or recorded in metadata"
            )
        indices.append(outcome.index)
        estimates.append(float(outcome.gap) + float(threshold))
        variances.append(variance)
    return indices, np.asarray(estimates), np.asarray(variances)
