"""Closed-form expected-improvement curves (the theoretical lines in Figs 1-2).

Two families of curves are plotted alongside the empirical results in the
paper's Figures 1 and 2:

* For Noisy-Top-K-with-Gap with Measures, Corollary 1 gives the MSE ratio
  ``(1 + lam k) / (k + lam k)``; with the even budget split on counting
  queries ``lam = 1`` and the improvement is ``(k - 1) / (2k)``.
* For Sparse-Vector-with-Gap with Measures, Section 6.2 gives the MSE ratio
  ``(1 + c_k)^3 / ((1 + c_k)^3 + k^2)`` with ``c_k = k^(2/3)`` for monotonic
  queries and ``c_k = (2k)^(2/3)`` otherwise; the improvement approaches
  50 % (monotonic) or 20 % (general) as k grows.

Both improvements are independent of the total budget epsilon, which is why
the Figure 2 curves are flat.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[int, float, np.ndarray]


def top_k_expected_improvement(k: ArrayLike, lam: float = 1.0) -> ArrayLike:
    """Expected MSE improvement of BLUE fusion for Noisy-Top-K-with-Gap.

    Parameters
    ----------
    k:
        Number of selected queries (scalar or array).
    lam:
        Variance ratio ``Var(gap noise) / Var(measurement noise)``; 1 for
        counting queries under the even budget split.

    Returns
    -------
    The fractional improvement ``1 - (1 + lam k)/(k + lam k)`` in [0, 0.5).
    """
    k_arr = np.asarray(k, dtype=float)
    if np.any(k_arr < 1):
        raise ValueError("k must be at least 1")
    if lam <= 0:
        raise ValueError("lambda must be positive")
    ratio = (1.0 + lam * k_arr) / (k_arr + lam * k_arr)
    improvement = 1.0 - ratio
    if np.isscalar(k) or isinstance(k, (int, float)):
        return float(improvement)
    return improvement


def svt_expected_improvement(k: ArrayLike, monotonic: bool = True) -> ArrayLike:
    """Expected MSE improvement of gap fusion for Sparse-Vector-with-Gap.

    Uses the Lyu et al. budget allocation inside SVT (``1 : k^(2/3)`` for
    monotonic queries, ``1 : (2k)^(2/3)`` otherwise) and the even
    selection/measurement split, per Section 6.2 of the paper.

    Returns
    -------
    The fractional improvement ``1 - (1 + c_k)^3 / ((1 + c_k)^3 + k^2)``,
    which tends to 0.5 (monotonic) or 0.2 (general) as k grows.
    """
    k_arr = np.asarray(k, dtype=float)
    if np.any(k_arr < 1):
        raise ValueError("k must be at least 1")
    c = k_arr ** (2.0 / 3.0) if monotonic else (2.0 * k_arr) ** (2.0 / 3.0)
    cube = (1.0 + c) ** 3
    improvement = 1.0 - cube / (cube + k_arr**2)
    if np.isscalar(k) or isinstance(k, (int, float)):
        return float(improvement)
    return improvement


def top_k_limit_improvement(lam: float = 1.0) -> float:
    """Large-k limit of :func:`top_k_expected_improvement` (0.5 when lam=1)."""
    if lam <= 0:
        raise ValueError("lambda must be positive")
    return 1.0 - lam / (1.0 + lam)


def svt_limit_improvement(monotonic: bool = True) -> float:
    """Large-k limit of :func:`svt_expected_improvement` (0.5 or 0.2)."""
    return 0.5 if monotonic else 0.2
