"""Noise primitives used by differentially private mechanisms.

This subpackage provides the additive-noise distributions that the paper's
mechanisms rely on:

* :class:`~repro.primitives.laplace.LaplaceNoise` -- the continuous Laplace
  distribution, the workhorse of pure epsilon-differential privacy.
* :class:`~repro.primitives.discrete_laplace.DiscreteLaplaceNoise` -- the
  discretised (two-sided geometric) Laplace distribution used when query
  answers are integers or multiples of a common base; referenced by the
  paper's Appendix A.1 tie-probability analysis.
* :class:`~repro.primitives.staircase.StaircaseNoise` -- the staircase
  distribution of Geng & Viswanath, an optimal noise distribution for pure
  differential privacy mentioned in Section 3 of the paper.
* :class:`~repro.primitives.geometric.GeometricNoise` -- the one-sided /
  symmetric geometric mechanism of Ghosh et al.

All distributions implement the :class:`~repro.primitives.base.NoiseDistribution`
interface, which captures exactly the property required by the alignment-cost
argument of Lemma 1 condition (iii):

    ``log(f(x) / f(y)) <= |x - y| / alpha``

for every pair ``x, y`` in the support.  The ``alpha`` parameter is exposed as
:attr:`~repro.primitives.base.NoiseDistribution.alignment_scale`.

Randomness is always routed through :mod:`repro.primitives.rng` so that every
mechanism in the library is reproducible given a seed.
"""

from repro.primitives.base import NoiseDistribution
from repro.primitives.laplace import LaplaceNoise, laplace_cdf, laplace_pdf
from repro.primitives.discrete_laplace import DiscreteLaplaceNoise
from repro.primitives.geometric import GeometricNoise
from repro.primitives.staircase import StaircaseNoise
from repro.primitives.rng import RandomSource, ensure_rng

__all__ = [
    "NoiseDistribution",
    "LaplaceNoise",
    "laplace_pdf",
    "laplace_cdf",
    "DiscreteLaplaceNoise",
    "GeometricNoise",
    "StaircaseNoise",
    "RandomSource",
    "ensure_rng",
]
