"""Abstract interface for additive noise distributions.

The randomness-alignment argument (Lemma 1 of the paper) applies to any noise
distribution ``f_i`` whose log-density satisfies a Lipschitz-like condition::

    log(f_i(x) / f_i(y)) <= |x - y| / alpha_i

for all ``x, y`` in its domain.  The continuous Laplace distribution with
scale ``alpha`` satisfies it, and so do the discrete Laplace and staircase
distributions.  :class:`NoiseDistribution` captures this shared contract so
that mechanisms can be written once and run with any of those distributions.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple, Union

import numpy as np

from repro.primitives.rng import RngLike, ensure_rng

ArrayLike = Union[float, np.ndarray]


class NoiseDistribution(abc.ABC):
    """Common interface for zero-mean additive noise distributions.

    Subclasses must provide sampling, (log-)density evaluation and the
    alignment scale ``alpha`` that bounds the log-density ratio as required by
    Lemma 1 condition (iii).
    """

    @property
    @abc.abstractmethod
    def alignment_scale(self) -> float:
        """The constant ``alpha`` with ``log(f(x)/f(y)) <= |x-y| / alpha``."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Variance of the distribution."""

    @abc.abstractmethod
    def sample(self, size: Optional[int] = None, rng: RngLike = None) -> ArrayLike:
        """Draw ``size`` independent samples (a scalar if ``size`` is None)."""

    def sample_batch(self, shape: Tuple[int, ...], rng: RngLike = None) -> np.ndarray:
        """Draw a matrix of independent samples in one generator call.

        The batch execution engine (:mod:`repro.engine.batch`) uses this to
        fill a whole ``(trials, queries)`` trial matrix at once.  The default
        implementation draws ``prod(shape)`` samples and reshapes them in C
        (row-major) order, so row ``b`` of the result contains exactly the
        variates a per-trial loop would have drawn for trial ``b``;
        subclasses may override with a direct shaped draw when the underlying
        generator guarantees the same stream order (numpy's does).
        """
        from repro.primitives.rng import RandomSource

        shape = tuple(int(s) for s in shape)
        total = int(np.prod(shape, dtype=np.int64))
        if isinstance(rng, RandomSource):
            # `sample` implementations unwrap the source to its raw
            # generator, so account for the draws here.
            rng.record_draws(total)
        flat = np.asarray(self.sample(size=total, rng=rng))
        return flat.reshape(shape)

    @abc.abstractmethod
    def log_density(self, x: ArrayLike) -> ArrayLike:
        """Log of the density (or probability mass) at ``x``."""

    def density(self, x: ArrayLike) -> ArrayLike:
        """Density (or probability mass) at ``x``."""
        return np.exp(self.log_density(x))

    def log_density_ratio(self, x: ArrayLike, y: ArrayLike) -> ArrayLike:
        """``log(f(x) / f(y))`` -- the quantity bounded by ``|x-y|/alpha``."""
        return np.asarray(self.log_density(x)) - np.asarray(self.log_density(y))

    def alignment_cost(self, shift: ArrayLike) -> ArrayLike:
        """Worst-case privacy cost of shifting a sample by ``shift``.

        This is the per-coordinate term ``|eta - eta'| / alpha`` in
        Definition 6 (Alignment Cost) of the paper.
        """
        return np.abs(np.asarray(shift, dtype=float)) / self.alignment_scale

    def _resolve_rng(self, rng: RngLike) -> np.random.Generator:
        return ensure_rng(rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(alignment_scale={self.alignment_scale:g})"
