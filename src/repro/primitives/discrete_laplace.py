"""The discrete (two-sided geometric) Laplace distribution.

Appendix A.1 of the paper analyses the probability of ties among noisy query
answers when Laplace noise is discretised to multiples of a base ``gamma``.
This module implements that discretised distribution with probability mass
function proportional to ``exp(-epsilon * |k|)`` over ``k in {0, +-gamma,
+-2*gamma, ...}``, and exposes the tie-probability bound derived there (also
available through :mod:`repro.analysis.ties`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.primitives.base import ArrayLike, NoiseDistribution
from repro.primitives.rng import RngLike


class DiscreteLaplaceNoise(NoiseDistribution):
    """Zero-mean discrete Laplace noise on the lattice ``gamma * Z``.

    The probability mass function is::

        f(k * gamma) = (1 - exp(-eps*gamma)) / (1 + exp(-eps*gamma)) * exp(-eps*gamma*|k|)

    which matches the parametrisation used in Appendix A.1 of the paper with
    ``scale = 1 / eps``.

    Parameters
    ----------
    scale:
        The scale ``1 / epsilon`` of the underlying continuous Laplace.
    base:
        The lattice spacing ``gamma``; defaults to 1 (integer noise).
    """

    def __init__(self, scale: float, base: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if base <= 0:
            raise ValueError(f"base must be positive, got {base}")
        self._scale = float(scale)
        self._base = float(base)
        # Success parameter of the underlying geometric distribution.
        self._q = np.exp(-self._base / self._scale)

    @property
    def scale(self) -> float:
        """Scale of the underlying continuous Laplace (``1 / epsilon``)."""
        return self._scale

    @property
    def base(self) -> float:
        """Lattice spacing ``gamma``."""
        return self._base

    @property
    def alignment_scale(self) -> float:
        return self._scale

    @property
    def variance(self) -> float:
        # Variance of a two-sided geometric on gamma*Z: 2 q / (1-q)^2 * gamma^2.
        q = self._q
        return 2.0 * q / (1.0 - q) ** 2 * self._base**2

    def sample(self, size: Optional[int] = None, rng: RngLike = None) -> ArrayLike:
        generator = self._resolve_rng(rng)
        n = 1 if size is None else int(size)
        # Difference of two iid geometric(1-q) variables (support {0,1,...})
        # is two-sided geometric with mass proportional to q^{|k|}.
        u = generator.geometric(1.0 - self._q, n) - 1
        v = generator.geometric(1.0 - self._q, n) - 1
        out = (u - v).astype(float) * self._base
        if size is None:
            return float(out[0])
        return out

    def log_density(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        k = np.rint(x / self._base)
        on_lattice = np.isclose(k * self._base, x, atol=1e-9 * self._base)
        log_norm = np.log1p(-self._q) - np.log1p(self._q)
        logp = log_norm + np.abs(k) * np.log(self._q)
        return np.where(on_lattice, logp, -np.inf)

    def tie_probability_bound(self, num_queries: int) -> float:
        """Upper bound on the probability of any tie among noisy queries.

        Appendix A.1 of the paper shows that for ``n`` sensitivity-1 queries
        perturbed with discrete Laplace noise of base ``gamma`` and scale
        ``1/epsilon``, the probability that any two noisy answers tie is at
        most ``n^2 * gamma * epsilon`` (up to the constant ``(1 + 1/e)``
        absorbed conservatively here).

        Parameters
        ----------
        num_queries:
            Number of simultaneously perturbed queries ``n``.
        """
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        epsilon = 1.0 / self._scale
        pairwise = self._base * epsilon * (1.0 + np.exp(-1.0))
        return float(min(1.0, num_queries**2 * pairwise))
