"""The symmetric geometric mechanism noise of Ghosh, Roughgarden & Sundararajan.

The geometric mechanism is the integer-valued analogue of the Laplace
mechanism and is cited in Section 3 of the paper as one of the additive-noise
distributions compatible with the alignment-cost framework.  It is a special
case of :class:`repro.primitives.discrete_laplace.DiscreteLaplaceNoise` with
base 1, but is kept as a distinct class because it is conventionally
parametrised by ``alpha = exp(-epsilon)`` rather than by a scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.primitives.base import ArrayLike, NoiseDistribution
from repro.primitives.rng import RngLike


class GeometricNoise(NoiseDistribution):
    """Zero-mean two-sided geometric noise on the integers.

    The probability mass function is ``(1-alpha)/(1+alpha) * alpha^{|k|}``
    for integer ``k``, where ``alpha = exp(-epsilon / sensitivity)``.

    Parameters
    ----------
    epsilon:
        Privacy budget used to calibrate the noise.
    sensitivity:
        L1 sensitivity of the (integer-valued) query; defaults to 1.
    """

    def __init__(self, epsilon: float, sensitivity: float = 1.0) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self._epsilon = float(epsilon)
        self._sensitivity = float(sensitivity)
        self._alpha = np.exp(-self._epsilon / self._sensitivity)

    @property
    def epsilon(self) -> float:
        """Privacy budget the noise was calibrated for."""
        return self._epsilon

    @property
    def alpha(self) -> float:
        """The geometric decay parameter ``exp(-epsilon / sensitivity)``."""
        return float(self._alpha)

    @property
    def alignment_scale(self) -> float:
        return self._sensitivity / self._epsilon

    @property
    def variance(self) -> float:
        a = self._alpha
        return 2.0 * a / (1.0 - a) ** 2

    def sample(self, size: Optional[int] = None, rng: RngLike = None) -> ArrayLike:
        generator = self._resolve_rng(rng)
        n = 1 if size is None else int(size)
        u = generator.geometric(1.0 - self._alpha, n) - 1
        v = generator.geometric(1.0 - self._alpha, n) - 1
        out = (u - v).astype(float)
        if size is None:
            return float(out[0])
        return out

    def log_density(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        k = np.rint(x)
        on_lattice = np.isclose(k, x, atol=1e-9)
        log_norm = np.log1p(-self._alpha) - np.log1p(self._alpha)
        logp = log_norm + np.abs(k) * np.log(self._alpha)
        return np.where(on_lattice, logp, -np.inf)
