"""The continuous Laplace distribution.

The Laplace mechanism (Theorem 1 of the paper) adds ``Laplace(sensitivity /
epsilon)`` noise to a query answer and is the basic building block of both
Noisy Max and Sparse Vector.  This module provides a zero-mean Laplace noise
distribution plus the standalone density/CDF helpers used by the confidence
analysis in :mod:`repro.postprocess.confidence`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.primitives.base import ArrayLike, NoiseDistribution
from repro.primitives.rng import RngLike


def laplace_pdf(x: ArrayLike, scale: float, loc: float = 0.0) -> ArrayLike:
    """Density of the Laplace distribution with the given scale and location.

    Parameters
    ----------
    x:
        Point(s) at which to evaluate the density.
    scale:
        The scale parameter ``b`` of ``Laplace(loc, b)``; must be positive.
    loc:
        The mean of the distribution.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    z = np.abs(np.asarray(x, dtype=float) - loc)
    return np.exp(-z / scale) / (2.0 * scale)


def laplace_cdf(x: ArrayLike, scale: float, loc: float = 0.0) -> ArrayLike:
    """Cumulative distribution function of ``Laplace(loc, scale)``."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    z = (np.asarray(x, dtype=float) - loc) / scale
    return np.where(z < 0, 0.5 * np.exp(z), 1.0 - 0.5 * np.exp(-z))


def laplace_quantile(p: ArrayLike, scale: float, loc: float = 0.0) -> ArrayLike:
    """Quantile function (inverse CDF) of ``Laplace(loc, scale)``."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    p = np.asarray(p, dtype=float)
    if np.any((p <= 0) | (p >= 1)):
        raise ValueError("quantile probabilities must lie strictly in (0, 1)")
    return loc - scale * np.sign(p - 0.5) * np.log1p(-2.0 * np.abs(p - 0.5))


class LaplaceNoise(NoiseDistribution):
    """Zero-mean continuous Laplace noise with a given scale.

    Parameters
    ----------
    scale:
        The scale parameter ``b``.  For a query of sensitivity ``s`` released
        under budget ``epsilon`` the calibrated scale is ``s / epsilon``.

    Examples
    --------
    >>> noise = LaplaceNoise(scale=2.0)
    >>> noise.variance
    8.0
    >>> noise.alignment_scale
    2.0
    """

    def __init__(self, scale: float) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self._scale = float(scale)

    @classmethod
    def calibrated(cls, sensitivity: float, epsilon: float) -> "LaplaceNoise":
        """Noise calibrated for a query of the given sensitivity and budget."""
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        return cls(sensitivity / epsilon)

    @property
    def scale(self) -> float:
        """The scale parameter ``b``."""
        return self._scale

    @property
    def alignment_scale(self) -> float:
        return self._scale

    @property
    def variance(self) -> float:
        return 2.0 * self._scale**2

    def sample(self, size: Optional[int] = None, rng: RngLike = None) -> ArrayLike:
        generator = self._resolve_rng(rng)
        return generator.laplace(0.0, self._scale, size)

    def sample_batch(self, shape, rng: RngLike = None, fast: bool = False) -> np.ndarray:
        """Draw a ``shape``-d matrix of Laplace samples in one generator call.

        With ``fast=False`` (the default) the draw goes through
        ``Generator.laplace``: numpy generators fill multi-dimensional draws
        in C (row-major) order, so ``sample_batch((B, n))`` consumes the same
        underlying stream as ``B`` sequential ``sample(size=n)`` calls -- row
        ``b`` is bit-identical to what trial ``b`` of a per-trial loop would
        have drawn.

        With ``fast=True`` the matrix is filled from one uniform draw pushed
        through the inverse CDF with in-place vectorized transforms, which is
        roughly twice as fast at Monte-Carlo sizes.  The distribution is
        identical but the variate stream differs from ``Generator.laplace``,
        so seeded results are no longer replayable through the per-trial
        ``sample`` path.  The batch engine uses this mode by default.

        When ``rng`` is a :class:`~repro.primitives.rng.RandomSource` the
        draw is counted as one scalar variate per matrix element either way.
        """
        from repro.primitives.rng import RandomSource

        shape = tuple(int(s) for s in shape)
        if not fast:
            if isinstance(rng, RandomSource):
                return np.asarray(rng.sample_batch(self._scale, shape))
            generator = self._resolve_rng(rng)
            return generator.laplace(0.0, self._scale, shape)

        if isinstance(rng, RandomSource):
            u = np.asarray(rng.uniform(size=shape))
        else:
            u = self._resolve_rng(rng).random(shape)
        # Inverse CDF of Laplace(0, b): x = -b * sign(u - 1/2) * log1p(-2|u - 1/2|),
        # computed in place on the uniform buffer.
        u -= 0.5
        out = np.abs(u)
        out *= -2.0
        # Generator.random() can return exactly 0.0, whose inverse-CDF image
        # is -inf (numpy's own laplace sampler redraws that case); clamp to
        # the largest representable argument instead.
        np.maximum(out, np.nextafter(-1.0, 0.0), out=out)
        np.log1p(out, out=out)
        out *= -self._scale
        np.copysign(out, u, out=out)
        return out

    def log_density(self, x: ArrayLike) -> ArrayLike:
        z = np.abs(np.asarray(x, dtype=float))
        return -z / self._scale - np.log(2.0 * self._scale)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        """Cumulative distribution function."""
        return laplace_cdf(x, self._scale)

    def quantile(self, p: ArrayLike) -> ArrayLike:
        """Quantile function (inverse CDF)."""
        return laplace_quantile(p, self._scale)

    def tail_probability(self, t: ArrayLike) -> ArrayLike:
        """``P(|X| >= t)`` for ``t >= 0``."""
        t = np.asarray(t, dtype=float)
        if np.any(t < 0):
            raise ValueError("tail threshold must be non-negative")
        return np.exp(-t / self._scale)
