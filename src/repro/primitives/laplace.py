"""The continuous Laplace distribution.

The Laplace mechanism (Theorem 1 of the paper) adds ``Laplace(sensitivity /
epsilon)`` noise to a query answer and is the basic building block of both
Noisy Max and Sparse Vector.  This module provides a zero-mean Laplace noise
distribution plus the standalone density/CDF helpers used by the confidence
analysis in :mod:`repro.postprocess.confidence`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.primitives.base import ArrayLike, NoiseDistribution
from repro.primitives.rng import RngLike


def laplace_pdf(x: ArrayLike, scale: float, loc: float = 0.0) -> ArrayLike:
    """Density of the Laplace distribution with the given scale and location.

    Parameters
    ----------
    x:
        Point(s) at which to evaluate the density.
    scale:
        The scale parameter ``b`` of ``Laplace(loc, b)``; must be positive.
    loc:
        The mean of the distribution.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    z = np.abs(np.asarray(x, dtype=float) - loc)
    return np.exp(-z / scale) / (2.0 * scale)


def laplace_cdf(x: ArrayLike, scale: float, loc: float = 0.0) -> ArrayLike:
    """Cumulative distribution function of ``Laplace(loc, scale)``."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    z = (np.asarray(x, dtype=float) - loc) / scale
    return np.where(z < 0, 0.5 * np.exp(z), 1.0 - 0.5 * np.exp(-z))


def laplace_quantile(p: ArrayLike, scale: float, loc: float = 0.0) -> ArrayLike:
    """Quantile function (inverse CDF) of ``Laplace(loc, scale)``."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    p = np.asarray(p, dtype=float)
    if np.any((p <= 0) | (p >= 1)):
        raise ValueError("quantile probabilities must lie strictly in (0, 1)")
    return loc - scale * np.sign(p - 0.5) * np.log1p(-2.0 * np.abs(p - 0.5))


class LaplaceNoise(NoiseDistribution):
    """Zero-mean continuous Laplace noise with a given scale.

    Parameters
    ----------
    scale:
        The scale parameter ``b``.  For a query of sensitivity ``s`` released
        under budget ``epsilon`` the calibrated scale is ``s / epsilon``.

    Examples
    --------
    >>> noise = LaplaceNoise(scale=2.0)
    >>> noise.variance
    8.0
    >>> noise.alignment_scale
    2.0
    """

    def __init__(self, scale: float) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self._scale = float(scale)

    @classmethod
    def calibrated(cls, sensitivity: float, epsilon: float) -> "LaplaceNoise":
        """Noise calibrated for a query of the given sensitivity and budget."""
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        return cls(sensitivity / epsilon)

    @property
    def scale(self) -> float:
        """The scale parameter ``b``."""
        return self._scale

    @property
    def alignment_scale(self) -> float:
        return self._scale

    @property
    def variance(self) -> float:
        return 2.0 * self._scale**2

    def sample(self, size: Optional[int] = None, rng: RngLike = None) -> ArrayLike:
        generator = self._resolve_rng(rng)
        return generator.laplace(0.0, self._scale, size)

    def log_density(self, x: ArrayLike) -> ArrayLike:
        z = np.abs(np.asarray(x, dtype=float))
        return -z / self._scale - np.log(2.0 * self._scale)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        """Cumulative distribution function."""
        return laplace_cdf(x, self._scale)

    def quantile(self, p: ArrayLike) -> ArrayLike:
        """Quantile function (inverse CDF)."""
        return laplace_quantile(p, self._scale)

    def tail_probability(self, t: ArrayLike) -> ArrayLike:
        """``P(|X| >= t)`` for ``t >= 0``."""
        t = np.asarray(t, dtype=float)
        if np.any(t < 0):
            raise ValueError("tail threshold must be non-negative")
        return np.exp(-t / self._scale)
