"""Random-number-generator plumbing.

Every mechanism in the library accepts an optional ``rng`` argument that can
be one of:

* ``None`` -- a fresh, OS-seeded :class:`numpy.random.Generator` is used.
* an ``int`` seed -- a deterministic generator seeded with that value.
* an existing :class:`numpy.random.Generator` -- used as-is.

:func:`ensure_rng` normalises all three cases.  :class:`RandomSource` wraps a
generator and additionally records how many variates have been drawn, which
is useful when reasoning about condition (ii) of Lemma 1 ("the number of
random variables used by M can be determined from its output") and when
replaying noise vectors through the alignment framework.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, "RandomSource"]

#: A sample-shape argument: ``None`` for a scalar draw, an ``int`` for a
#: vector, or a shape tuple such as ``(trials, queries)`` for the batch
#: engine's trial matrices.
SizeLike = Union[None, int, Tuple[int, ...]]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` for a fresh OS-seeded generator, an integer seed, an existing
        generator (returned unchanged), or a :class:`RandomSource` (its
        underlying generator is returned).

    Examples
    --------
    >>> g1 = ensure_rng(7)
    >>> g2 = ensure_rng(7)
    >>> float(g1.uniform()) == float(g2.uniform())
    True
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, RandomSource):
        return rng.generator
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        "rng must be None, an int seed, a numpy Generator or a RandomSource; "
        f"got {type(rng).__name__}"
    )


class RandomSource:
    """A counting wrapper around :class:`numpy.random.Generator`.

    The wrapper exposes the handful of sampling primitives that the noise
    distributions need while keeping track of how many scalar variates have
    been consumed.  Mechanisms report this count in their output records so
    that the alignment framework can check Lemma 1 condition (ii).

    Batched draws (a tuple ``size`` such as the ``(trials, queries)`` matrices
    used by :mod:`repro.engine.batch`) are counted as one variate per scalar
    element -- ``np.prod(size)`` -- not one per call, so the Lemma 1
    draw-count reasoning stays valid regardless of how the draws are batched.

    Parameters
    ----------
    rng:
        Anything accepted by :func:`ensure_rng`.
    """

    def __init__(self, rng: RngLike = None) -> None:
        self._generator = ensure_rng(rng)
        self._draws = 0

    @property
    def generator(self) -> np.random.Generator:
        """The wrapped numpy generator."""
        return self._generator

    @property
    def draws(self) -> int:
        """Number of scalar variates drawn through this source so far."""
        return self._draws

    def _count(self, size: SizeLike) -> None:
        # One count per *scalar* variate: a tuple shape consumes prod(shape)
        # draws, not one draw per sample_batch call.
        if size is None:
            self._draws += 1
        else:
            self._draws += int(np.prod(size, dtype=np.int64))

    def uniform(self, low: float = 0.0, high: float = 1.0, size: SizeLike = None):
        """Draw uniform variates, counting them."""
        self._count(size)
        return self._generator.uniform(low, high, size)

    def exponential(self, scale: float = 1.0, size: SizeLike = None):
        """Draw exponential variates, counting them."""
        self._count(size)
        return self._generator.exponential(scale, size)

    def laplace(self, loc: float = 0.0, scale: float = 1.0, size: SizeLike = None):
        """Draw Laplace variates, counting them."""
        self._count(size)
        return self._generator.laplace(loc, scale, size)

    def record_draws(self, size: SizeLike) -> None:
        """Account for variates drawn from :attr:`generator` directly.

        Noise distributions that sample through the raw generator (e.g. the
        generic :meth:`~repro.primitives.base.NoiseDistribution.sample_batch`
        fallback) call this so the per-scalar draw count stays correct.
        """
        self._count(size)

    def sample_batch(self, scale: float, shape: Tuple[int, ...]):
        """Draw a ``shape``-d matrix of zero-mean Laplace variates.

        This is the :mod:`repro.engine.batch` entry point: one generator call
        fills a whole ``(trials, queries)`` trial matrix.  NumPy generators
        fill arrays in C (row-major) order, so row ``b`` contains exactly the
        variates a per-trial loop drawing ``shape[1]`` scalars per trial would
        have consumed for trial ``b`` -- the stream order is identical.
        """
        self._count(shape)
        return self._generator.laplace(0.0, scale, shape)

    def geometric(self, p: float, size: SizeLike = None):
        """Draw geometric variates (support {1, 2, ...}), counting them."""
        self._count(size)
        return self._generator.geometric(p, size)

    def integers(self, low: int, high: int, size: SizeLike = None):
        """Draw integers in ``[low, high)``, counting them."""
        self._count(size)
        return self._generator.integers(low, high, size=size)

    def choice(self, a, size: SizeLike = None, replace: bool = True, p=None):
        """Draw a random choice, counting the variates."""
        self._count(size)
        return self._generator.choice(a, size=size, replace=replace, p=p)

    def spawn(self) -> "RandomSource":
        """Return an independent child source (for parallel sub-experiments)."""
        seed = int(self._generator.integers(0, 2**63 - 1))
        return RandomSource(seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(draws={self._draws})"
