"""The staircase distribution of Geng & Viswanath.

The staircase mechanism replaces the exponentially decaying Laplace density
with a piecewise-constant "staircase" density that is optimal (for a broad
family of loss functions) among noise distributions achieving pure
epsilon-differential privacy.  Section 3 of the paper lists it as one of the
distributions compatible with the alignment framework: its log-density ratio
between any two points ``x, y`` is bounded by ``epsilon * ceil`` arguments that
reduce to the familiar ``|x - y| / (sensitivity / epsilon)`` bound used in
Lemma 1 condition (iii).

The density, for sensitivity ``s``, privacy budget ``epsilon`` and shape
parameter ``gamma`` in (0, 1), is constant on each interval
``[(k + gamma) * s, (k + 1 + gamma) * s)`` and decays geometrically (factor
``exp(-epsilon)``) from one "stair" to the next.  ``gamma* = 1 / (1 +
exp(epsilon/2))`` minimises the expected absolute error.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.primitives.base import ArrayLike, NoiseDistribution
from repro.primitives.rng import RngLike


class StaircaseNoise(NoiseDistribution):
    """Zero-mean staircase noise calibrated to a sensitivity and budget.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    sensitivity:
        L1 sensitivity of the query (defaults to 1).
    gamma:
        Shape parameter in (0, 1).  ``None`` selects the optimal value
        ``1 / (1 + exp(epsilon / 2))`` for absolute-error loss.
    """

    def __init__(
        self,
        epsilon: float,
        sensitivity: float = 1.0,
        gamma: Optional[float] = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        if gamma is None:
            gamma = 1.0 / (1.0 + np.exp(epsilon / 2.0))
        if not 0.0 < gamma < 1.0:
            raise ValueError(f"gamma must lie in (0, 1), got {gamma}")
        self._epsilon = float(epsilon)
        self._sensitivity = float(sensitivity)
        self._gamma = float(gamma)
        self._b = np.exp(-self._epsilon)
        # Normalising constant a(gamma) of the Geng-Viswanath density.
        self._a = (1.0 - self._b) / (
            2.0 * self._sensitivity * (self._gamma + self._b * (1.0 - self._gamma))
        )

    @property
    def epsilon(self) -> float:
        """Privacy budget used for calibration."""
        return self._epsilon

    @property
    def gamma(self) -> float:
        """Shape parameter of the staircase."""
        return self._gamma

    @property
    def alignment_scale(self) -> float:
        return self._sensitivity / self._epsilon

    @property
    def variance(self) -> float:
        # Var = 2 sum_{k>=0} b^k * integral of x^2 over the k-th stair pair.
        # Closed form from Geng & Viswanath (2014), expressed via the two
        # stair widths; computed numerically here by truncating the series.
        s, g, b, a = self._sensitivity, self._gamma, self._b, self._a
        total = 0.0
        for k in range(200):
            lo1, hi1 = k * s, (k + g) * s
            lo2, hi2 = (k + g) * s, (k + 1) * s
            total += a * b**k * (hi1**3 - lo1**3) / 3.0
            total += a * b ** (k + 1) * (hi2**3 - lo2**3) / 3.0
        return 2.0 * total

    def sample(self, size: Optional[int] = None, rng: RngLike = None) -> ArrayLike:
        generator = self._resolve_rng(rng)
        n = 1 if size is None else int(size)
        s, g, b = self._sensitivity, self._gamma, self._b

        sign = np.where(generator.uniform(size=n) < 0.5, -1.0, 1.0)
        # Geometric stair index (support {0, 1, 2, ...}).
        stairs = generator.geometric(1.0 - b, n) - 1
        # Within a stair, land in the inner segment [k, k+g) with probability
        # proportional to g, or in the outer segment [k+g, k+1) with
        # probability proportional to b*(1-g).
        inner_prob = g / (g + b * (1.0 - g))
        inner = generator.uniform(size=n) < inner_prob
        u = generator.uniform(size=n)
        offset = np.where(inner, u * g, g + u * (1.0 - g))
        out = sign * (stairs + offset) * s
        if size is None:
            return float(out[0])
        return out

    def log_density(self, x: ArrayLike) -> ArrayLike:
        x = np.abs(np.asarray(x, dtype=float))
        s, g = self._sensitivity, self._gamma
        k = np.floor(x / s)
        frac = x / s - k
        exponent = np.where(frac < g, k, k + 1)
        return np.log(self._a) - self._epsilon * exponent
