"""Static randomness-alignment privacy verifier.

The dynamic side of the repo checks privacy by *running* mechanisms
(:mod:`repro.alignment` samples executions; the ``EmpiricalDPVerifier``
tests the DP definition statistically).  This package is the static
counterpart: it compiles each mechanism *spec* into a small IR derived
from the paper's pseudocode (never from :mod:`repro.mechanisms` -- the
verifier must not trust the implementation it judges), enumerates branch
outcomes symbolically under the adjacency model, synthesizes a
CheckDP-style linear alignment template with integer coefficients, and
discharges the output-preservation and cost obligations with interval
arithmetic in pure Python.

Entry points: :func:`verify_spec` for one spec,
:func:`verify_catalogue` / ``python -m repro verify-privacy`` for the
whole nine-mechanism catalogue (verdict table, exit 2 on any
disagreement with the documented broken/correct status).
"""

from repro.privcheck.alignment_synth import Synthesis, synthesize
from repro.privcheck.ir import (
    AboveBranch,
    CompileError,
    NoiseSite,
    Program,
    ReleaseKind,
    SelectKProgram,
    StreamProgram,
    compile_spec,
)
from repro.privcheck.symbolic import (
    Interval,
    Path,
    enumerate_paths,
    perturbation_cases,
    walk_path,
)
from repro.privcheck.verdicts import (
    CatalogueEntry,
    CatalogueResult,
    PrivacyVerdictError,
    Verdict,
    default_catalogue,
    render_verdict_table,
    verify_catalogue,
    verify_spec,
)

__all__ = [
    "AboveBranch",
    "CatalogueEntry",
    "CatalogueResult",
    "CompileError",
    "Interval",
    "NoiseSite",
    "Path",
    "PrivacyVerdictError",
    "Program",
    "ReleaseKind",
    "SelectKProgram",
    "StreamProgram",
    "Synthesis",
    "Verdict",
    "compile_spec",
    "default_catalogue",
    "enumerate_paths",
    "perturbation_cases",
    "render_verdict_table",
    "synthesize",
    "verify_catalogue",
    "verify_spec",
    "walk_path",
]
