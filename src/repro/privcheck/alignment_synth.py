"""Alignment-template synthesis and obligation discharge (pure Python).

CheckDP-style, minus the SMT solver: because the paper's mechanisms all
admit *linear* alignments with small integer coefficients, the search
space is a handful of candidate threshold shifts ``t`` (integer
multiples of the sensitivity, plus the tightest feasible bounds), and
every proof obligation reduces to interval arithmetic:

* feasibility -- the constraints collected by
  :func:`repro.privcheck.symbolic.walk_path` carve an interval for ``t``;
  an empty interval on some path refutes the mechanism and the path is
  the counterexample hint;
* cost -- each answer's worst-case shift magnitude over the perturbation
  interval, divided by its Laplace scale, summed along the worst
  enumerated path (Lemma 1's cost function); the claim is verified iff
  some candidate keeps the worst path at or under the claimed epsilon.

Budget-guarded programs (Adaptive-SVT) get the paper's own accounting
argument instead of a worst-path sum: if every unit's alignment cost is
covered by the budget the implementation charges for it, the runtime
guard -- which never lets total charges exceed epsilon -- bounds the
total alignment cost by epsilon on every feasible path.

Top-k programs discharge Lemma's alignment for Algorithm 1 directly:
losers keep their noise, each winner ``i`` shifts by ``M - Delta_i``
where ``M`` is the change of the losing maximum.  Winner order, gaps and
the winner/loser separation are preserved structurally (every winner's
noisy value moves by exactly ``M``); the only quantitative obligation is
the cost ``k * max|M - Delta| / scale``, with ``M`` ranging over the
same perturbation interval as ``Delta``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.privcheck.ir import (
    AboveBranch,
    Program,
    ReleaseKind,
    SelectKProgram,
    StreamProgram,
)
from repro.privcheck.symbolic import (
    AnswerObligation,
    Interval,
    PathConstraints,
    enumerate_paths,
    perturbation_cases,
    walk_path,
)

__all__ = ["Synthesis", "synthesize"]

#: Slack for float comparisons in obligation discharge.
_TOL = 1e-9


@dataclass(frozen=True)
class Synthesis:
    """Outcome of the template search for one program."""

    program: str
    epsilon: float
    ok: bool
    #: Certified worst-case alignment cost when ``ok``; the smallest
    #: achievable cost when refuted on cost grounds; ``None`` when no
    #: template exists at all.
    cost: Optional[float]
    #: Human-readable description of the synthesized alignment.
    template: str = ""
    #: Violating branch trace (counterexample hint) when refuted.
    failure_trace: Tuple[str, ...] = ()
    reason: str = ""


def _answer_cost(
    obligation: AnswerObligation, t: float, delta: Interval
) -> float:
    """Worst-case |shift| / scale for one answer under threshold shift t."""
    if obligation.scale is None:
        # No noise at the site; feasibility was settled by the walker.
        return 0.0
    if obligation.release is ReleaseKind.GAP:
        worst = max(abs(t - delta.lo), abs(t - delta.hi))
    elif obligation.release is ReleaseKind.VALUE:
        worst = delta.magnitude
    else:  # INDICATOR: minimal constant shift a with a >= t - lo(Delta)
        worst = max(0.0, t - delta.lo)
    return worst / obligation.scale


def _branch_obligation(branch: AboveBranch) -> AnswerObligation:
    return AnswerObligation(
        branch=branch.name,
        release=branch.release,
        scale=branch.site.scale,
        charge=branch.charge,
    )


def _path_cost(
    program: StreamProgram, constraints: PathConstraints, t: float, delta: Interval
) -> float:
    cost = 0.0
    site = program.threshold_site
    if site is not None and site.scale is not None:
        cost += constraints.threshold_draws * abs(t) / site.scale
    for obligation in constraints.answers:
        cost += _answer_cost(obligation, t, delta)
    return cost


def _candidate_shifts(
    program: StreamProgram,
    lower: Optional[float],
    upper: Optional[float],
) -> List[float]:
    """Integer-coefficient template candidates intersected with [lower, upper]."""
    site = program.threshold_site
    if site is None or site.scale is None:
        grid = {0.0}
    else:
        s = program.sensitivity
        grid = {float(a) * s for a in range(-3, 4)}
        if lower is not None:
            grid.add(lower)
        if upper is not None:
            grid.add(upper)
    return sorted(
        t
        for t in grid
        if (lower is None or t >= lower - _TOL)
        and (upper is None or t <= upper + _TOL)
    )


def _describe_template(program: StreamProgram, t: float, delta: Interval) -> str:
    parts = []
    site = program.threshold_site
    if site is not None and site.scale is not None:
        parts.append(f"threshold draws += {t:g}")
    for branch in program.branches:
        if branch.site.scale is None:
            continue
        if branch.release is ReleaseKind.GAP:
            parts.append(f"{branch.name} answers += {t:g} - Delta")
        elif branch.release is ReleaseKind.VALUE:
            parts.append(f"{branch.name} answers += -Delta")
        else:
            shift = max(0.0, t - delta.lo)
            parts.append(f"{branch.name} answers += {shift:g}")
    parts.append("failed-guard draws unshifted")
    return "; ".join(parts)


def _synthesize_stream(program: StreamProgram) -> Synthesis:
    epsilon = program.epsilon
    tol = _TOL * max(1.0, epsilon)
    worst_cost = 0.0
    worst_trace: Tuple[str, ...] = ()
    template = ""

    for delta in perturbation_cases(program.sensitivity, program.monotonic):
        constraints = [
            walk_path(program, path, delta) for path in enumerate_paths(program)
        ]
        for item in constraints:
            if item.infeasible is not None:
                return Synthesis(
                    program=program.name,
                    epsilon=epsilon,
                    ok=False,
                    cost=None,
                    failure_trace=item.path.steps,
                    reason=item.infeasible,
                )
        # The same template must serve every path; for paths to compose,
        # t satisfies the union of all bounds.
        for item in constraints:
            lo = max(item.t_lower) if item.t_lower else None
            hi = min(item.t_upper) if item.t_upper else None
            if lo is not None and hi is not None and lo > hi + tol:
                return Synthesis(
                    program=program.name,
                    epsilon=epsilon,
                    ok=False,
                    cost=None,
                    failure_trace=item.path.steps,
                    reason=(
                        "no alignment template: preserving this trace for "
                        f"Delta in {delta.describe()} needs a threshold shift "
                        f"t >= {lo:g} and t <= {hi:g} simultaneously"
                    ),
                )
        all_lower = [b for item in constraints for b in item.t_lower]
        all_upper = [b for item in constraints for b in item.t_upper]
        lower = max(all_lower) if all_lower else None
        upper = min(all_upper) if all_upper else None
        candidates = _candidate_shifts(program, lower, upper)
        if not candidates:
            return Synthesis(
                program=program.name,
                epsilon=epsilon,
                ok=False,
                cost=None,
                failure_trace=(("below",) if all_lower else ()),
                reason=(
                    "no integer-coefficient threshold shift satisfies "
                    f"{lower} <= t <= {upper} for Delta in {delta.describe()}"
                ),
            )

        if program.budget_guarded:
            result = _discharge_guarded(program, candidates, delta, tol)
        else:
            result = _discharge_worst_path(
                program, constraints, candidates, delta
            )
        case_cost, case_trace, best_t, failure = result
        if failure is not None:
            return Synthesis(
                program=program.name,
                epsilon=epsilon,
                ok=False,
                cost=None if case_cost == float("inf") else case_cost,
                failure_trace=case_trace,
                reason=failure,
            )
        if case_cost > worst_cost:
            worst_cost = case_cost
            worst_trace = case_trace
        if not template:
            template = _describe_template(program, best_t, delta)

    if worst_cost <= epsilon + tol:
        return Synthesis(
            program=program.name,
            epsilon=epsilon,
            ok=True,
            cost=min(worst_cost, epsilon),
            template=template,
        )
    return Synthesis(
        program=program.name,
        epsilon=epsilon,
        ok=False,
        cost=worst_cost,
        failure_trace=worst_trace,
        reason=(
            "alignment exists but its smallest certifiable cost "
            f"{worst_cost:g} exceeds the claimed epsilon {epsilon:g}"
        ),
    )


def _discharge_worst_path(
    program: StreamProgram,
    constraints: Sequence[PathConstraints],
    candidates: Sequence[float],
    delta: Interval,
) -> Tuple[float, Tuple[str, ...], float, Optional[str]]:
    """Pick the candidate minimizing the worst enumerated-path cost.

    Sound because unguarded programs stop after ``k`` answers, and the
    enumerated set includes the ``k``-answer path of every branch.
    """
    best_cost = float("inf")
    best_trace: Tuple[str, ...] = ()
    best_t = candidates[0]
    for t in candidates:
        cost = 0.0
        trace: Tuple[str, ...] = ()
        for item in constraints:
            path_cost = _path_cost(program, item, t, delta)
            if path_cost > cost:
                cost = path_cost
                trace = item.path.steps
        if cost < best_cost:
            best_cost, best_trace, best_t = cost, trace, t
    return best_cost, best_trace, best_t, None


def _discharge_guarded(
    program: StreamProgram,
    candidates: Sequence[float],
    delta: Interval,
    tol: float,
) -> Tuple[float, Tuple[str, ...], float, Optional[str]]:
    """Charge-accounting discharge for budget-guarded programs.

    If the threshold draw's alignment cost is covered by the threshold
    charge and each branch's worst answer cost is covered by that
    branch's per-answer charge, then total cost <= total charge <=
    epsilon on every path the runtime guard admits.
    """
    site = program.threshold_site
    for t in candidates:
        if site is not None and site.scale is not None:
            if abs(t) / site.scale > program.threshold_charge + tol:
                continue
        covered = True
        for branch in program.branches:
            cost = _answer_cost(_branch_obligation(branch), t, delta)
            if cost > branch.charge + tol:
                covered = False
                break
        if covered:
            return program.epsilon, (), t, None
    names = tuple(branch.name for branch in program.branches)
    return (
        float("inf"),
        names,
        candidates[0],
        (
            "some answer's alignment cost exceeds the budget charged for "
            "it, so the runtime budget guard cannot bound the total cost "
            f"for Delta in {delta.describe()}"
        ),
    )


def _synthesize_select_k(program: SelectKProgram) -> Synthesis:
    epsilon = program.epsilon
    tol = _TOL * max(1.0, epsilon)
    scale = program.noise_site.scale
    if scale is None or scale <= 0.0:
        return Synthesis(
            program=program.name,
            epsilon=epsilon,
            ok=False,
            cost=None,
            failure_trace=("select-top-k",),
            reason="top-k selection draws no query noise",
        )
    worst_cost = 0.0
    for delta in perturbation_cases(program.sensitivity, program.monotonic):
        # Winner i shifts by M - Delta_i with M (the losing maximum's
        # change) in the same interval as Delta: worst |M - Delta| is the
        # interval width (2s general, s monotonic).
        worst_cost = max(worst_cost, program.k * delta.width / scale)
    template = (
        "losers unshifted; winner i += M - Delta_i where M = change of the "
        "losing maximum (|M| <= s); all winners move by exactly M, so "
        "order, gaps and the winner/loser margin are preserved"
    )
    if worst_cost <= epsilon + tol:
        return Synthesis(
            program=program.name,
            epsilon=epsilon,
            ok=True,
            cost=min(worst_cost, epsilon),
            template=template,
        )
    return Synthesis(
        program=program.name,
        epsilon=epsilon,
        ok=False,
        cost=worst_cost,
        failure_trace=("select-top-k",),
        reason=(
            f"top-k alignment costs {worst_cost:g} which exceeds the "
            f"claimed epsilon {epsilon:g}"
        ),
    )


def synthesize(program: Program) -> Synthesis:
    """Prove or refute ``program``'s epsilon claim by template search."""
    if isinstance(program, SelectKProgram):
        return _synthesize_select_k(program)
    return _synthesize_stream(program)
