"""Mini-IR for noise-adding mechanisms, compiled from mechanism specs.

The verifier's trust argument starts here: each compiler below turns a
:class:`~repro.api.specs.MechanismSpec` into a small structured program --
noise sites with Laplace scale expressions, threshold branches, what each
branch releases, what each branch is charged -- by re-deriving the paper's
pseudocode (Algorithm 1, Algorithm 2, and the Lyu et al. SVT catalogue)
from the spec parameters alone.  Nothing in this package imports
:mod:`repro.mechanisms`: the static analysis must never trust the
implementation it is judging, so the budget allocation and the noise
calibrations are deliberately re-stated here from the papers rather than
reused from the code under test.

Two program shapes cover the whole catalogue:

* :class:`StreamProgram` -- the SVT family: one (optional) noisy threshold,
  a stream of queries tested against it by one or more guarded branches
  (Adaptive-SVT has two), a per-answer budget charge, and a stop rule
  (after ``k`` answers, or a runtime budget guard).
* :class:`SelectKProgram` -- Noisy-Top-K(-with-Gap): one noise site per
  query, release of the ordered top-``k`` indices (plus consecutive gaps
  when ``with_gap``).

The path-enumeration engine (:mod:`repro.privcheck.symbolic`) walks these
programs per branch outcome; the template synthesizer
(:mod:`repro.privcheck.alignment_synth`) proves or refutes the privacy
claim over them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.api.specs import (
    AdaptiveSvtSpec,
    MechanismSpec,
    NoisyTopKSpec,
    SparseVectorSpec,
    SvtVariantSpec,
)

__all__ = [
    "AboveBranch",
    "CompileError",
    "NoiseSite",
    "Program",
    "ReleaseKind",
    "SelectKProgram",
    "StreamProgram",
    "compile_spec",
]


class CompileError(ValueError):
    """Raised when a spec cannot be compiled into the verifier's IR."""


class ReleaseKind(enum.Enum):
    """What an above-threshold branch publishes beyond stopping or not."""

    #: Only the above/below indicator (standard SVT).
    INDICATOR = "indicator"
    #: The noisy gap ``q + eta - (T + rho)`` (the with-gap mechanisms).
    GAP = "gap"
    #: The raw noisy query value ``q + eta`` itself (the SVT3 mistake).
    VALUE = "value"


@dataclass(frozen=True)
class NoiseSite:
    """One Laplace noise site.

    ``scale`` is the site's Laplace scale in output units (sensitivity
    already folded in); ``None`` means the pseudocode draws *no* noise at
    this site (the SVT5 threshold, the SVT6 queries), which the synthesizer
    treats as an unshiftable coordinate.
    """

    name: str
    scale: Optional[float]


@dataclass(frozen=True)
class AboveBranch:
    """One guarded above-threshold branch of a stream program.

    The guard is ``q_i + eta >= T + rho + margin`` where ``eta`` is a fresh
    draw from ``site`` and ``rho`` the threshold noise.  Branches are
    ordered: a later branch (or the implicit below outcome) is reached only
    when every earlier guard failed on its own fresh noise.
    """

    name: str
    site: NoiseSite
    margin: float
    release: ReleaseKind
    charge: float


@dataclass(frozen=True)
class StreamProgram:
    """SVT-shaped mechanism: noisy threshold + guarded query stream."""

    name: str
    epsilon: float
    sensitivity: float
    monotonic: bool
    #: Maximum number of above-threshold answers before the loop stops.
    k: int
    threshold_site: Optional[NoiseSite]
    #: Budget charged per threshold draw.
    threshold_charge: float
    #: Worst-case number of threshold draws on any path (1, or ``k`` when
    #: the pseudocode refreshes the threshold noise after each answer).
    threshold_draws_worst: int
    branches: Tuple[AboveBranch, ...]
    #: Whether the pseudocode stops as soon as another most-expensive
    #: answer might overrun ``epsilon`` (Algorithm 2 line 16); when set,
    #: the total charge on every feasible path is at most ``epsilon``.
    budget_guarded: bool


@dataclass(frozen=True)
class SelectKProgram:
    """Noisy-Top-K(-with-Gap): one noise draw per query, top-k release."""

    name: str
    epsilon: float
    sensitivity: float
    monotonic: bool
    k: int
    noise_site: NoiseSite
    with_gap: bool


Program = Union[StreamProgram, SelectKProgram]


def _lyu_theta(k: int, monotonic: bool) -> float:
    """The Lyu et al. threshold/query allocation used by the paper."""
    ratio = float(k) ** (2.0 / 3.0) if monotonic else (2.0 * k) ** (2.0 / 3.0)
    return 1.0 / (1.0 + ratio)


def _split_budget(
    epsilon: float, k: int, monotonic: bool, theta: Optional[float]
) -> Tuple[float, float]:
    """``epsilon -> (threshold budget, total query budget)`` per the paper."""
    if theta is None:
        theta = _lyu_theta(k, monotonic)
    return theta * epsilon, (1.0 - theta) * epsilon


def compile_noisy_top_k(spec: NoisyTopKSpec) -> SelectKProgram:
    """Algorithm 1: ``Lap((k|2k) * s / epsilon)`` per query, top-k release."""
    factor = float(spec.k) if spec.monotonic else 2.0 * spec.k
    scale = factor * spec.sensitivity / spec.epsilon
    return SelectKProgram(
        name="noisy-top-k-with-gap" if spec.with_gap else "noisy-top-k",
        epsilon=spec.epsilon,
        sensitivity=spec.sensitivity,
        monotonic=spec.monotonic,
        k=spec.k,
        noise_site=NoiseSite("query", scale),
        with_gap=spec.with_gap,
    )


def compile_sparse_vector(spec: SparseVectorSpec) -> StreamProgram:
    """Sparse-Vector(-with-Gap): Lyu et al. Alg. 1 / Wang et al. Alg. 2."""
    eps_threshold, eps_queries = _split_budget(
        spec.epsilon, spec.k, spec.monotonic, spec.theta
    )
    eps_per_query = eps_queries / spec.k
    query_factor = 1.0 if spec.monotonic else 2.0
    return StreamProgram(
        name="sparse-vector-with-gap" if spec.with_gap else "sparse-vector",
        epsilon=spec.epsilon,
        sensitivity=spec.sensitivity,
        monotonic=spec.monotonic,
        k=spec.k,
        threshold_site=NoiseSite("threshold", spec.sensitivity / eps_threshold),
        threshold_charge=eps_threshold,
        threshold_draws_worst=1,
        branches=(
            AboveBranch(
                name="above",
                site=NoiseSite(
                    "query", query_factor * spec.sensitivity / eps_per_query
                ),
                margin=0.0,
                release=ReleaseKind.GAP if spec.with_gap else ReleaseKind.INDICATOR,
                charge=eps_per_query,
            ),
        ),
        budget_guarded=False,
    )


def compile_adaptive_svt(spec: AdaptiveSvtSpec) -> StreamProgram:
    """Algorithm 2: two-branch adaptive SVT with gap release + budget guard."""
    eps_threshold, eps_queries = _split_budget(
        spec.epsilon, spec.k, spec.monotonic, spec.theta
    )
    eps_middle = eps_queries / spec.k
    eps_top = eps_middle / 2.0
    query_factor = (1.0 if spec.monotonic else 2.0) * spec.sensitivity
    top_scale = query_factor / eps_top
    middle_scale = query_factor / eps_middle
    sigma = spec.sigma_multiplier * (2.0**0.5) * top_scale
    return StreamProgram(
        name="adaptive-svt-with-gap",
        epsilon=spec.epsilon,
        sensitivity=spec.sensitivity,
        monotonic=spec.monotonic,
        k=spec.k,
        threshold_site=NoiseSite("threshold", spec.sensitivity / eps_threshold),
        threshold_charge=eps_threshold,
        threshold_draws_worst=1,
        branches=(
            AboveBranch(
                name="top",
                site=NoiseSite("top", top_scale),
                margin=sigma,
                release=ReleaseKind.GAP,
                charge=eps_top,
            ),
            AboveBranch(
                name="middle",
                site=NoiseSite("middle", middle_scale),
                margin=0.0,
                release=ReleaseKind.GAP,
                charge=eps_middle,
            ),
        ),
        budget_guarded=True,
    )


def compile_svt_variant(spec: SvtVariantSpec) -> StreamProgram:
    """The six Lyu et al. catalogue variants, straight from their pseudocode.

    The broken variants are compiled exactly as published (wrong noise
    placements, wrong charges and all); refuting them is the verifier's
    job, not the compiler's.
    """
    s = spec.sensitivity
    epsilon = spec.epsilon
    k = spec.k
    if spec.variant in (1, 2) and spec.monotonic:
        query_factor = 1.0
    else:
        query_factor = 2.0

    if spec.variant == 1:
        # Identical to the standard SparseVector (Lyu et al. Alg. 1).
        eps_threshold, eps_queries = _split_budget(epsilon, k, spec.monotonic, None)
        eps_per_query = eps_queries / k
        threshold = NoiseSite("threshold", s / eps_threshold)
        branch = AboveBranch(
            name="above",
            site=NoiseSite("query", query_factor * s / eps_per_query),
            margin=0.0,
            release=ReleaseKind.INDICATOR,
            charge=eps_per_query,
        )
        draws, threshold_charge = 1, eps_threshold
    elif spec.variant == 2:
        # Dwork & Roth: even split, threshold noise refreshed per answer.
        eps_round = epsilon / (2.0 * k)
        threshold = NoiseSite("threshold", s / eps_round)
        branch = AboveBranch(
            name="above",
            site=NoiseSite("query", query_factor * s / eps_round),
            margin=0.0,
            release=ReleaseKind.INDICATOR,
            charge=eps_round,
        )
        draws, threshold_charge = k, eps_round
    elif spec.variant == 3:
        # Releases the noisy value itself, charging only the indicator.
        eps_threshold, eps_queries = _split_budget(epsilon, k, False, None)
        eps_per_query = eps_queries / k
        threshold = NoiseSite("threshold", s / eps_threshold)
        branch = AboveBranch(
            name="above",
            site=NoiseSite("query", 2.0 * s / eps_per_query),
            margin=0.0,
            release=ReleaseKind.VALUE,
            charge=eps_per_query,
        )
        draws, threshold_charge = 1, eps_threshold
    elif spec.variant == 4:
        # Noise calibrated for a single answer, charged epsilon/(2k) each.
        threshold = NoiseSite("threshold", 2.0 * s / epsilon)
        branch = AboveBranch(
            name="above",
            site=NoiseSite("query", 2.0 * s / epsilon),
            margin=0.0,
            release=ReleaseKind.INDICATOR,
            charge=epsilon / (2.0 * k),
        )
        draws, threshold_charge = 1, epsilon / 2.0
    elif spec.variant == 5:
        # No threshold noise at all.
        eps_threshold, eps_queries = _split_budget(epsilon, k, False, None)
        eps_per_query = eps_queries / k
        threshold = NoiseSite("threshold", None)
        branch = AboveBranch(
            name="above",
            site=NoiseSite("query", 2.0 * s / eps_per_query),
            margin=0.0,
            release=ReleaseKind.INDICATOR,
            charge=eps_per_query,
        )
        draws, threshold_charge = 1, 0.0
    elif spec.variant == 6:
        # Threshold noise only; queries compared exactly.
        threshold = NoiseSite("threshold", s / epsilon)
        branch = AboveBranch(
            name="above",
            site=NoiseSite("query", None),
            margin=0.0,
            release=ReleaseKind.INDICATOR,
            charge=0.0,
        )
        draws, threshold_charge = 1, epsilon
    else:  # pragma: no cover - spec.validate() rejects this first
        raise CompileError(f"unknown SVT variant {spec.variant}")

    return StreamProgram(
        name=f"svt-variant-{spec.variant}",
        epsilon=epsilon,
        sensitivity=s,
        monotonic=spec.monotonic,
        k=k,
        threshold_site=threshold,
        threshold_charge=threshold_charge,
        threshold_draws_worst=draws,
        branches=(branch,),
        budget_guarded=False,
    )


def compile_spec(spec: MechanismSpec) -> Program:
    """Compile any supported spec into the verifier's IR."""
    if isinstance(spec, NoisyTopKSpec):
        return compile_noisy_top_k(spec)
    if isinstance(spec, SparseVectorSpec):
        return compile_sparse_vector(spec)
    if isinstance(spec, AdaptiveSvtSpec):
        return compile_adaptive_svt(spec)
    if isinstance(spec, SvtVariantSpec):
        return compile_svt_variant(spec)
    raise CompileError(
        f"no IR compiler for spec kind {getattr(spec, 'kind', type(spec).__name__)!r}"
    )
