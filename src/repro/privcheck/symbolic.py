"""Path enumeration over the privcheck IR under the adjacency model.

The analysis follows the paper's proof structure (Lemma 1): fix an
adjacent pair ``D, D'``, let ``Delta_i = q_i(D') - q_i(D)`` be the
symbolic perturbation of query ``i``, and ask for a shift of the noise
vector that makes the run on ``D'`` produce the *same* output as the run
on ``D``.  This module contributes the combinatorial half:

* the perturbation domains implied by the adjacency model
  (:func:`perturbation_cases` -- ``[-s, s]`` in general, both one-sided
  intervals for monotonic workloads);
* a finite set of canonical branch-outcome paths whose obligations cover
  every execution (:func:`enumerate_paths`);
* a walker (:func:`walk_path`) that replays one path step by step and
  emits the linear constraints the alignment template must satisfy, plus
  the per-answer cost obligations.

Why a *finite* path set suffices: the alignment template gives every
below-threshold (or failed-guard) query the same treatment -- its noise
is never shifted, because the number of such queries is unbounded and
any nonzero per-query shift would have unbounded cost -- so all below
steps of a path contribute one idempotent constraint.  Above-threshold
answers are capped at ``k`` (or by the runtime budget guard) and each
contributes a per-branch constraint plus a per-branch cost that does not
depend on its position.  Hence the paths below -- one all-below path,
one short path per branch (preceded by a below step so threshold
constraints from both sides meet), one worst-cost path of ``k`` answers
per branch, and one mixed path -- generate the full obligation set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.privcheck.ir import AboveBranch, ReleaseKind, StreamProgram

__all__ = [
    "BELOW",
    "AnswerObligation",
    "Interval",
    "Path",
    "PathConstraints",
    "enumerate_paths",
    "perturbation_cases",
    "walk_path",
]

#: Canonical step name for the "every guard failed" outcome.
BELOW = "below"


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]``; the domain of one ``Delta_i``."""

    lo: float
    hi: float

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def magnitude(self) -> float:
        """``max |Delta|`` over the interval."""
        return max(abs(self.lo), abs(self.hi))

    def describe(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"


def perturbation_cases(sensitivity: float, monotonic: bool) -> Tuple[Interval, ...]:
    """Domains of the per-query perturbation ``Delta_i`` under adjacency.

    General sensitivity-``s`` workloads allow ``Delta_i`` anywhere in
    ``[-s, s]``.  Monotonic workloads (paper Sec. 2.2) move every query
    the same direction, so the template is synthesized separately for
    ``Delta in [-s, 0]`` and ``Delta in [0, s]`` and must succeed on both.
    """
    s = float(sensitivity)
    if monotonic:
        return (Interval(0.0, s), Interval(-s, 0.0))
    return (Interval(-s, s),)


@dataclass(frozen=True)
class Path:
    """One canonical branch-outcome trace, e.g. ``('below', 'above')``."""

    steps: Tuple[str, ...]

    def describe(self) -> str:
        return " -> ".join(self.steps)


def enumerate_paths(program: StreamProgram) -> Tuple[Path, ...]:
    """The canonical path set covering all executions (module docstring)."""
    names = [branch.name for branch in program.branches]
    paths: List[Path] = [Path((BELOW,))]
    for name in names:
        paths.append(Path((BELOW, name)))
        if program.k > 1:
            paths.append(Path((BELOW,) + (name,) * program.k))
    if len(names) > 1:
        paths.append(Path((BELOW,) + tuple(names)))
    seen = set()
    unique: List[Path] = []
    for path in paths:
        if path.steps not in seen:
            seen.add(path.steps)
            unique.append(path)
    return tuple(unique)


@dataclass(frozen=True)
class AnswerObligation:
    """Cost obligation for one above-threshold answer on a path."""

    branch: str
    release: ReleaseKind
    #: Laplace scale of the branch's query noise site (``None`` = no noise).
    scale: Optional[float]
    #: Budget the implementation charges for this answer.
    charge: float


@dataclass(frozen=True)
class PathConstraints:
    """Everything the template must discharge for one path.

    The template's only coupled variable is ``t``, the shift applied to
    every threshold-noise draw; per-branch indicator shifts are local and
    eliminated during synthesis.  Constraints are collected as bounds:
    each entry of ``t_lower`` demands ``t >= value``; each entry of
    ``t_upper`` demands ``t <= value``.  ``infeasible`` is set when a
    step's obligation cannot be met by *any* template (e.g. a below
    outcome with no threshold noise to shift).
    """

    path: Path
    t_lower: Tuple[float, ...]
    t_upper: Tuple[float, ...]
    answers: Tuple[AnswerObligation, ...]
    threshold_draws: int
    infeasible: Optional[str] = None


def _fail_constraint(
    program: StreamProgram,
    delta: Interval,
    t_lower: List[float],
) -> Optional[str]:
    """Constraint for "this guard failed and must keep failing on D'".

    The failed guard's noise draw is unshifted (unbounded count), so
    ``q' + eta < T + rho' + m`` for all ``Delta`` requires
    ``Delta <= t``, i.e. ``t >= hi(Delta)``.  Without threshold noise
    ``t`` is pinned to zero and the obligation may be impossible.
    """
    has_threshold = (
        program.threshold_site is not None
        and program.threshold_site.scale is not None
    )
    if has_threshold:
        t_lower.append(delta.hi)
        return None
    if delta.hi > 0.0:
        return (
            "a below-threshold outcome cannot be preserved: the threshold "
            "carries no noise, so no shift can absorb a query moving up by "
            f"{delta.hi:g}"
        )
    return None


def _answer_constraints(
    branch: AboveBranch,
    delta: Interval,
    t_lower: List[float],
    t_upper: List[float],
) -> Optional[str]:
    """Constraints for "this guard fired and its release must be preserved".

    * ``GAP`` release: the published gap ``q + eta - (T + rho)`` pins the
      query shift to exactly ``t - Delta``; the guard is then preserved
      automatically (the gap is unchanged).  Requires a noise site.
    * ``VALUE`` release (SVT3): the published ``q + eta`` pins the shift
      to ``-Delta``; preserving the guard at the boundary then forces
      ``t <= 0``.
    * ``INDICATOR``: the shift is a free per-branch constant ``a`` with
      ``a >= t - lo(Delta)``; with no noise site ``a`` is pinned to zero
      and the guard demands ``t <= lo(Delta)``.
    """
    has_noise = branch.site.scale is not None
    if branch.release is ReleaseKind.GAP:
        if not has_noise:
            return (
                f"branch {branch.name!r} releases a gap but draws no query "
                "noise, so the forced shift t - Delta has nowhere to go"
            )
        return None
    if branch.release is ReleaseKind.VALUE:
        if not has_noise:
            return (
                f"branch {branch.name!r} releases the raw query value and "
                "draws no noise: the output itself distinguishes D from D'"
            )
        t_upper.append(0.0)
        return None
    # INDICATOR
    if not has_noise:
        t_upper.append(delta.lo)
    return None


def walk_path(
    program: StreamProgram, path: Path, delta: Interval
) -> PathConstraints:
    """Replay ``path`` symbolically and collect the template obligations."""
    by_name = {branch.name: branch for branch in program.branches}
    t_lower: List[float] = []
    t_upper: List[float] = []
    answers: List[AnswerObligation] = []
    infeasible: Optional[str] = None
    has_threshold = (
        program.threshold_site is not None
        and program.threshold_site.scale is not None
    )
    draws = 1 if has_threshold else 0
    answered = 0

    for step in path.steps:
        if step == BELOW:
            # Every guard failed (and must keep failing on D').
            problem = _fail_constraint(program, delta, t_lower)
        else:
            branch = by_name[step]
            # Earlier guards in the cascade failed before this one fired.
            problem = None
            for earlier in program.branches:
                if earlier is branch:
                    break
                problem = problem or _fail_constraint(program, delta, t_lower)
            problem = problem or _answer_constraints(
                branch, delta, t_lower, t_upper
            )
            answers.append(
                AnswerObligation(
                    branch=branch.name,
                    release=branch.release,
                    scale=branch.site.scale,
                    charge=branch.charge,
                )
            )
            answered += 1
            if (
                program.threshold_draws_worst > 1
                and has_threshold
                and answered < program.k
            ):
                # SVT2-style refresh: a fresh threshold draw per answer.
                draws += 1
        if problem is not None and infeasible is None:
            infeasible = problem

    return PathConstraints(
        path=path,
        t_lower=tuple(t_lower),
        t_upper=tuple(t_upper),
        answers=tuple(answers),
        threshold_draws=draws,
        infeasible=infeasible,
    )
