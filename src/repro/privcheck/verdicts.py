"""Per-mechanism privacy verdicts and the ``verify-privacy`` table.

:func:`verify_spec` runs the whole static pipeline for one spec
(compile to IR, enumerate paths, synthesize an alignment template,
discharge the obligations) and folds the outcome into a
:class:`Verdict`.  :func:`verify_catalogue` applies it to the default
nine-mechanism catalogue -- the three gap mechanisms of the paper plus
the six Lyu et al. SVT variants -- and compares each verdict against the
*documented* broken/correct status from
:mod:`repro.mechanisms.svt_variants` (that import reads two boolean
class attributes, never mechanism code: the expectation column is the
catalogue's documentation, the verdict column is derived from the paper
alone).

``python -m repro verify-privacy`` prints the rendered table and exits 2
(via :class:`PrivacyVerdictError`) when any verdict disagrees with the
documented status -- an unexpected refutation means a correct mechanism
lost its proof, an unexpected pass means a deliberately broken variant
slipped through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.api.specs import (
    AdaptiveSvtSpec,
    MechanismSpec,
    NoisyTopKSpec,
    SparseVectorSpec,
    SvtVariantSpec,
)
from repro.privcheck.alignment_synth import synthesize
from repro.privcheck.ir import compile_spec

__all__ = [
    "CatalogueEntry",
    "CatalogueResult",
    "PrivacyVerdictError",
    "Verdict",
    "default_catalogue",
    "render_verdict_table",
    "verify_catalogue",
    "verify_spec",
]


class PrivacyVerdictError(RuntimeError):
    """Raised when a static verdict contradicts the documented status."""


@dataclass(frozen=True)
class Verdict:
    """Static privacy verdict for one mechanism spec."""

    mechanism: str
    epsilon: float
    verified: bool
    #: Certified worst-case alignment cost (verified), or the smallest
    #: achievable cost (refuted on cost), or ``None`` (no template).
    cost: Optional[float]
    alignment: str = ""
    reason: str = ""
    trace: Tuple[str, ...] = ()

    @property
    def status(self) -> str:
        return "verified" if self.verified else "REFUTED"

    def describe(self) -> str:
        if self.verified:
            return (
                f"verified {self.epsilon:g}-DP "
                f"(alignment: {self.alignment}; cost {self.cost:g})"
            )
        hint = " -> ".join(self.trace) if self.trace else "n/a"
        return f"REFUTED (no alignment; trace {hint}: {self.reason})"


@dataclass(frozen=True)
class CatalogueEntry:
    """One catalogued mechanism plus its documented privacy status."""

    label: str
    spec: MechanismSpec
    expected_private: bool


@dataclass(frozen=True)
class CatalogueResult:
    entry: CatalogueEntry
    verdict: Verdict

    @property
    def agrees(self) -> bool:
        return self.verdict.verified == self.entry.expected_private


def verify_spec(spec: MechanismSpec, label: Optional[str] = None) -> Verdict:
    """Statically prove or refute ``spec``'s epsilon claim."""
    spec.validate()
    program = compile_spec(spec)
    synthesis = synthesize(program)
    return Verdict(
        mechanism=label or program.name,
        epsilon=program.epsilon,
        verified=synthesis.ok,
        cost=synthesis.cost,
        alignment=synthesis.template,
        reason=synthesis.reason,
        trace=synthesis.failure_trace,
    )


def default_catalogue() -> Tuple[CatalogueEntry, ...]:
    """The nine catalogued mechanisms with their documented statuses.

    Query values are placeholders -- the static analysis never reads
    them, only the structural parameters (k, epsilon, sensitivity,
    monotonicity, variant).
    """
    # Documentation-only import: two class attributes, no mechanism code.
    from repro.mechanisms.svt_variants import SVT_VARIANT_CATALOGUE

    queries = (12.0, 9.0, 7.0, 5.0)
    entries: List[CatalogueEntry] = [
        CatalogueEntry(
            "noisy-top-k-with-gap",
            NoisyTopKSpec(queries=queries, epsilon=1.0, k=3, with_gap=True),
            expected_private=True,
        ),
        CatalogueEntry(
            "sparse-vector-with-gap",
            SparseVectorSpec(
                queries=queries, epsilon=1.0, threshold=8.0, k=2, with_gap=True
            ),
            expected_private=True,
        ),
        CatalogueEntry(
            "adaptive-svt-with-gap",
            AdaptiveSvtSpec(queries=queries, epsilon=1.0, threshold=8.0, k=2),
            expected_private=True,
        ),
    ]
    for variant in sorted(SVT_VARIANT_CATALOGUE):
        entries.append(
            CatalogueEntry(
                f"svt-variant-{variant}",
                SvtVariantSpec(
                    variant=variant,
                    queries=queries,
                    epsilon=1.0,
                    threshold=8.0,
                    k=2,
                ),
                expected_private=bool(
                    SVT_VARIANT_CATALOGUE[variant].actually_private
                ),
            )
        )
    return tuple(entries)


def verify_catalogue(
    entries: Optional[Iterable[CatalogueEntry]] = None,
) -> List[CatalogueResult]:
    """Verdicts for every catalogued mechanism (default: all nine)."""
    if entries is None:
        entries = default_catalogue()
    return [
        CatalogueResult(
            entry=entry, verdict=verify_spec(entry.spec, label=entry.label)
        )
        for entry in entries
    ]


def render_verdict_table(results: Sequence[CatalogueResult]) -> str:
    """Fixed-width table of verdicts vs. documented statuses."""
    rows = [("mechanism", "claimed", "documented", "static verdict")]
    for result in results:
        entry, verdict = result.entry, result.verdict
        rows.append(
            (
                entry.label,
                f"{verdict.epsilon:g}-DP",
                "correct" if entry.expected_private else "broken",
                verdict.describe()
                + ("" if result.agrees else "  ** DISAGREES **"),
            )
        )
    widths = [
        max(len(row[column]) for row in rows) for column in range(3)
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(
                (
                    row[0].ljust(widths[0]),
                    row[1].ljust(widths[1]),
                    row[2].ljust(widths[2]),
                    row[3],
                )
            ).rstrip()
        )
        if index == 0:
            lines.append(
                "  ".join(
                    ("-" * widths[0], "-" * widths[1], "-" * widths[2], "----")
                )
            )
    return "\n".join(lines)
