"""Query and workload model.

Noisy Max and Sparse Vector both operate on a *vector of numeric queries*
evaluated on a database.  This subpackage captures that abstraction:

* :class:`~repro.queries.query.Query` -- a single numeric query with a
  declared L1 sensitivity and an optional monotonicity flag.
* :class:`~repro.queries.query.CountingQuery` -- a sensitivity-1 monotonic
  counting query (the case where the paper's mechanisms obtain their
  strongest guarantees: epsilon/2-DP for Noisy-Top-K-with-Gap and the halved
  per-query budget for Adaptive-Sparse-Vector-with-Gap).
* :class:`~repro.queries.workload.QueryWorkload` -- an ordered collection of
  queries sharing a sensitivity, evaluable in bulk on a database.
* :func:`~repro.queries.workload.item_count_workload` -- the workload used in
  the paper's experiments: one counting query per catalogue item over a
  transaction database ("how many transactions contain item #23?").
"""

from repro.queries.query import CountingQuery, Query, infer_monotonicity
from repro.queries.sensitivity import (
    SensitivityError,
    l1_sensitivity_upper_bound,
    validate_sensitivity,
)
from repro.queries.workload import QueryWorkload, item_count_workload

__all__ = [
    "Query",
    "CountingQuery",
    "infer_monotonicity",
    "QueryWorkload",
    "item_count_workload",
    "SensitivityError",
    "l1_sensitivity_upper_bound",
    "validate_sensitivity",
]
