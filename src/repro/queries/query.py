"""Single-query abstractions.

A :class:`Query` wraps a callable that maps a database object to a real
number, together with the metadata the privacy analysis needs: its L1
sensitivity and whether it is *monotonic* in the sense of Definition 7 of the
paper (adding a record never moves different queries in opposite
directions).  Counting queries are the canonical monotonic, sensitivity-1
case and get their own convenience subclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence


@dataclass(frozen=True)
class Query:
    """A numeric query with declared sensitivity.

    Parameters
    ----------
    fn:
        Callable evaluating the query on a database object.
    sensitivity:
        L1 global sensitivity (Definition 2 of the paper).
    monotonic:
        Whether the query participates in a monotonic query list
        (Definition 7).  Mechanisms use this to decide whether the improved
        (halved) budget accounting applies.
    name:
        Optional human-readable identifier, used in experiment reports.
    """

    fn: Callable[[Any], float]
    sensitivity: float = 1.0
    monotonic: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if self.sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {self.sensitivity}")

    def __call__(self, database: Any) -> float:
        """Evaluate the query on ``database``."""
        return float(self.fn(database))


class CountingQuery(Query):
    """A sensitivity-1, monotonic counting query.

    Counting queries ("how many records satisfy predicate P?") change by at
    most 1 when one record is added or removed, and all counting queries in a
    list move in the same direction, so the list is monotonic.  This is the
    query class for which the paper's mechanisms achieve their best constants
    (Theorem 2's epsilon/2 bound, and the halved per-query scales in the
    monotonic variant of Algorithm 2).
    """

    def __init__(self, predicate: Callable[[Any], bool], name: str = "") -> None:
        def count(database: Any) -> float:
            return float(sum(1 for record in database if predicate(record)))

        super().__init__(fn=count, sensitivity=1.0, monotonic=True, name=name)
        # repro-lint: disable=spec-immutability -- construction-time write on self inside __init__; the instance has not escaped yet
        object.__setattr__(self, "predicate", predicate)


def infer_monotonicity(queries: Sequence[Query]) -> bool:
    """Return True if every query in the list declares itself monotonic.

    The monotonicity property of Definition 7 is a property of the *list* of
    queries; this helper adopts the conservative convention that a list is
    monotonic only when every member was constructed as monotonic.  A single
    non-monotonic query forces the general (2x more conservative) accounting.
    """
    queries = list(queries)
    if not queries:
        return True
    return all(q.monotonic for q in queries)


@dataclass
class QueryResult:
    """The evaluated (true, non-private) answer of a query.

    Used internally by the experiment harness to keep true answers alongside
    privately released values when computing error metrics.
    """

    name: str
    true_value: float
    released_value: Optional[float] = None
    metadata: dict = field(default_factory=dict)

    def absolute_error(self) -> Optional[float]:
        """Absolute error of the released value, if one is present."""
        if self.released_value is None:
            return None
        return abs(self.released_value - self.true_value)


def evaluate_all(queries: Iterable[Query], database: Any) -> list:
    """Evaluate every query on the database, returning a list of floats."""
    return [query(database) for query in queries]
