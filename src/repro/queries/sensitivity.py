"""Sensitivity utilities.

The privacy guarantees of every mechanism in the library are stated relative
to the L1 global sensitivity of the query vector (Definition 2 of the paper).
For arbitrary user-supplied callables the true global sensitivity cannot be
computed automatically, so the library relies on *declared* sensitivities;
the helpers here validate declarations empirically on user-provided pairs of
adjacent databases, which is useful both in tests and as a guard rail in the
experiment harness.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence, Tuple

import numpy as np


class SensitivityError(ValueError):
    """Raised when an empirical check contradicts a declared sensitivity."""


def l1_sensitivity_upper_bound(
    query_fn: Callable[[Any], Sequence[float]],
    adjacent_pairs: Iterable[Tuple[Any, Any]],
) -> float:
    """Empirical lower bound on the L1 sensitivity of a vector query.

    Evaluates ``query_fn`` on each supplied pair of adjacent databases and
    returns the maximum observed L1 distance.  Because only finitely many
    pairs are checked this is a *lower* bound on the true global sensitivity;
    it is primarily useful for catching declarations that are too small.

    Parameters
    ----------
    query_fn:
        Callable mapping a database to a sequence of query answers.
    adjacent_pairs:
        Iterable of ``(D, D_prime)`` pairs of adjacent databases.
    """
    worst = 0.0
    for left, right in adjacent_pairs:
        a = np.asarray(query_fn(left), dtype=float)
        b = np.asarray(query_fn(right), dtype=float)
        if a.shape != b.shape:
            raise SensitivityError(
                "query_fn returned answers of different lengths on adjacent "
                f"databases: {a.shape} vs {b.shape}"
            )
        worst = max(worst, float(np.sum(np.abs(a - b))))
    return worst


def per_query_sensitivity_bound(
    query_fn: Callable[[Any], Sequence[float]],
    adjacent_pairs: Iterable[Tuple[Any, Any]],
) -> float:
    """Maximum observed per-coordinate change across adjacent pairs.

    Noisy Max and Sparse Vector require each *individual* query to have
    sensitivity at most 1 (rather than bounding the sum of changes), so this
    is the relevant empirical check for them.
    """
    worst = 0.0
    for left, right in adjacent_pairs:
        a = np.asarray(query_fn(left), dtype=float)
        b = np.asarray(query_fn(right), dtype=float)
        if a.shape != b.shape:
            raise SensitivityError(
                "query_fn returned answers of different lengths on adjacent "
                f"databases: {a.shape} vs {b.shape}"
            )
        if a.size:
            worst = max(worst, float(np.max(np.abs(a - b))))
    return worst


def validate_sensitivity(
    query_fn: Callable[[Any], Sequence[float]],
    adjacent_pairs: Iterable[Tuple[Any, Any]],
    declared: float,
    per_query: bool = True,
) -> float:
    """Check a declared sensitivity against empirical evidence.

    Parameters
    ----------
    query_fn:
        Callable mapping a database to a sequence of query answers.
    adjacent_pairs:
        Iterable of adjacent database pairs to test.
    declared:
        The sensitivity the caller intends to use for noise calibration.
    per_query:
        If True (default), check the per-coordinate sensitivity (the
        requirement of Noisy Max / Sparse Vector); otherwise check the full
        L1 sensitivity (the requirement of the vector Laplace mechanism).

    Returns
    -------
    float
        The empirical bound that was observed.

    Raises
    ------
    SensitivityError
        If the observed change exceeds the declared sensitivity (beyond a
        small numerical tolerance).
    """
    if declared <= 0:
        raise ValueError(f"declared sensitivity must be positive, got {declared}")
    bound_fn = per_query_sensitivity_bound if per_query else l1_sensitivity_upper_bound
    observed = bound_fn(query_fn, adjacent_pairs)
    if observed > declared * (1.0 + 1e-9):
        raise SensitivityError(
            f"observed sensitivity {observed:g} exceeds declared {declared:g}"
        )
    return observed


def monotonicity_violations(
    query_fn: Callable[[Any], Sequence[float]],
    adjacent_pairs: Iterable[Tuple[Any, Any]],
) -> int:
    """Count adjacent pairs on which the query list is *not* monotonic.

    A pair violates monotonicity (Definition 7 of the paper) when some query
    increases while another decreases between the two databases.
    """
    violations = 0
    for left, right in adjacent_pairs:
        a = np.asarray(query_fn(left), dtype=float)
        b = np.asarray(query_fn(right), dtype=float)
        diff = a - b
        if np.any(diff > 0) and np.any(diff < 0):
            violations += 1
    return violations
