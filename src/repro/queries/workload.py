"""Workloads: ordered collections of queries evaluated together.

The paper's experiments use a single workload type -- one counting query per
catalogue item over a transaction database ("how many transactions contain
item #23?") -- but the mechanisms themselves only require a vector of query
answers.  :class:`QueryWorkload` provides that vector view while keeping the
per-query metadata (names, sensitivity, monotonicity) needed by the
mechanisms and the experiment harness.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.queries.query import CountingQuery, Query, infer_monotonicity


class QueryWorkload:
    """An ordered list of queries that are answered as a batch.

    Parameters
    ----------
    queries:
        The member queries.  All mechanisms in this library require each
        member to have per-query sensitivity at most the workload's declared
        ``sensitivity``.
    sensitivity:
        Per-query sensitivity used for noise calibration.  Defaults to the
        maximum declared sensitivity of the members.
    name:
        Optional identifier for reports.
    """

    def __init__(
        self,
        queries: Sequence[Query],
        sensitivity: Optional[float] = None,
        name: str = "",
    ) -> None:
        self._queries: List[Query] = list(queries)
        if not self._queries:
            raise ValueError("a workload must contain at least one query")
        if sensitivity is None:
            sensitivity = max(q.sensitivity for q in self._queries)
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self._sensitivity = float(sensitivity)
        self._monotonic = infer_monotonicity(self._queries)
        self.name = name

    @property
    def queries(self) -> List[Query]:
        """The member queries, in order."""
        return list(self._queries)

    @property
    def sensitivity(self) -> float:
        """Per-query sensitivity used for noise calibration."""
        return self._sensitivity

    @property
    def monotonic(self) -> bool:
        """Whether the workload is a monotonic query list (Definition 7)."""
        return self._monotonic

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __getitem__(self, index: int) -> Query:
        return self._queries[index]

    def names(self) -> List[str]:
        """Names of the member queries (empty strings where unnamed)."""
        return [q.name for q in self._queries]

    def evaluate(self, database: Any) -> np.ndarray:
        """Evaluate every query on ``database`` and return the answer vector."""
        return np.asarray([q(database) for q in self._queries], dtype=float)

    def subset(self, indices: Iterable[int]) -> "QueryWorkload":
        """A new workload containing only the queries at ``indices``."""
        picked = [self._queries[i] for i in indices]
        return QueryWorkload(picked, sensitivity=self._sensitivity, name=self.name)


def item_count_workload(items: Sequence[Any], name: str = "item-counts") -> QueryWorkload:
    """The workload used throughout the paper's experiments.

    One counting query per item: query ``i`` counts how many transactions
    (records) contain ``items[i]``.  Databases are expected to be iterables of
    transactions, each transaction itself being a set/sequence of items.

    Parameters
    ----------
    items:
        The catalogue of items to build one query per item.
    name:
        Workload identifier for reports.
    """
    queries = []
    for item in items:
        # Bind ``item`` via a default argument to avoid the late-binding trap.
        def contains(transaction, _item=item) -> bool:
            return _item in transaction

        queries.append(CountingQuery(contains, name=f"count[{item!r}]"))
    return QueryWorkload(queries, sensitivity=1.0, name=name)
