"""The job-queue service: an async front-end over ShardTask JSON.

The dispatch layer (:mod:`repro.dispatch`) proved that a run's chunks cross
process boundaries losslessly as :class:`ShardTask` JSON.  This package
turns that envelope into a **service**: clients submit execution requests to
a broker, long-lived workers pull task JSON off a durable queue and execute
it through the same :func:`execute_task_json` entry the worker pool uses,
and clients poll status and fetch the merged result -- with every worker
sharing one content-addressed :class:`DiskResultCache`.

Four pieces::

    queue  (service.queue)   durable FileJobQueue (atomic rename claims,
                             ack/nack, lease expiry, dead-lettering) and a
                             MemoryJobQueue for tests
    broker (service.broker)  job lifecycle: submitted -> running -> done /
                             failed / cancelled, per-job manifests, merged
                             results via dispatch.merge_results
    worker (service.worker)  claim -> cache lookup -> execute -> cache put
                             -> done marker -> ack; run_workers() drains a
                             queue with N threads
    client (service.client)  JobClient / JobHandle: submit, status, result
                             (with polling), cancel

Determinism contract (asserted end-to-end in ``tests/test_service.py``): a
job's merged result is bit-identical to ``run(spec, trials=B, rng=seed,
shards=N, chunk_trials=C)`` for any number of workers, because both paths
execute the same ``make_tasks`` chunk layout and merge in chunk order.

The CLI front-end lives in ``repro.evaluation.cli``::

    python -m repro.evaluation.cli submit spec.json --root SRV --trials 100000 --seed 0
    python -m repro.evaluation.cli serve-worker --root SRV
    python -m repro.evaluation.cli job-status  <job-id> --root SRV
    python -m repro.evaluation.cli job-result  <job-id> --root SRV

and :func:`repro.api.submit` is the facade-level async entry alongside
``run()``.

The multi-tenant control plane on top of this data plane -- the persistent
per-tenant :class:`~repro.tenancy.ledger.BudgetLedger` consulted at submit,
the :class:`~repro.tenancy.scheduler.TenantScheduler` that orders claims
(strict priorities, fair shares across tenants, FIFO within one), and the
operator metrics surface behind the ``metrics`` CLI verb -- lives in
:mod:`repro.tenancy`.
"""

from repro.service.broker import (
    Broker,
    JobFailedError,
    JobNotFoundError,
    JobStatus,
    ServiceError,
    task_key,
)
from repro.service.client import JobClient, JobHandle
from repro.service.queue import (
    ClaimedTask,
    FileJobQueue,
    JobQueue,
    MemoryJobQueue,
    QueueError,
)
from repro.service.worker import Worker, run_workers

__all__ = [
    "Broker",
    "ClaimedTask",
    "FileJobQueue",
    "JobClient",
    "JobFailedError",
    "JobHandle",
    "JobNotFoundError",
    "JobQueue",
    "JobStatus",
    "MemoryJobQueue",
    "QueueError",
    "ServiceError",
    "Worker",
    "run_workers",
    "task_key",
]
