"""The broker: job lifecycle over a task queue and a shared result cache.

A **job** is one facade-shaped execution request -- ``(spec, engine, trials,
seed, chunk_trials, options)`` -- that clients submit asynchronously instead
of calling :func:`repro.api.run`.  The broker:

* chunks the request into the dispatch layer's :class:`ShardTask` envelopes
  (:func:`repro.dispatch.make_tasks` -- exactly what ``run(spec, shards=N)``
  executes in-process, which is what makes the service deterministic);
* enqueues each task's JSON on a :class:`~repro.service.queue.JobQueue`;
* records a per-job **manifest** (the request plus every task's id, chunk
  index and content-addressed result key);
* derives job state from per-task completion markers that workers write
  (``done/<index>.json`` / ``failed/<index>.json``), so status needs no
  broker process to be running -- any reader of the service root can compute
  it;
* reassembles the merged :class:`~repro.api.result.Result` from the shared
  cache with :func:`repro.dispatch.merge_results`.

Determinism contract: a job's merged result is **bit-identical** to
``run(spec, engine=engine, trials=trials, rng=seed, shards=N,
chunk_trials=chunk_trials)`` for any worker count ``N``, because both sides
execute the same chunk layout under the same derived per-chunk seeds and
merge in the same chunk order (``tests/test_service.py`` asserts this
end-to-end).

Job lifecycle::

    submitted --(tasks claimed & executed)--> running --> done
        |                                        |
        +--> cancelled                           +--> failed (a task
                                                      exhausted its retries)
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.api.engines import validate_engine
from repro.api.facade import _check_options
from repro.api.registry import get_executor
from repro.api.result import Result
from repro.api.specs import MechanismSpec, spec_from_dict
from repro.dispatch.cache import DiskResultCache, ResultCache, as_result_cache
from repro.dispatch.hashing import KEY_VERSION, canonical_json, run_key
from repro.dispatch.sharding import (
    DEFAULT_CHUNK_TRIALS,
    ShardTask,
    make_tasks,
    merge_results,
)
from repro.service.queue import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    FileJobQueue,
    JobQueue,
    QueueError,
    atomic_write_json,
    check_safe_id,
)
from repro.tenancy.ledger import BudgetLedger
from repro.tenancy.scheduler import DEFAULT_PRIORITY, DEFAULT_TENANT

__all__ = [
    "Broker",
    "JobFailedError",
    "JobNotFoundError",
    "JobStatus",
    "ServiceError",
    "task_key",
]


class ServiceError(RuntimeError):
    """Base error of the job-queue service layer."""


class JobNotFoundError(ServiceError):
    """Raised when a job id has no manifest under the service root."""


class JobFailedError(ServiceError):
    """Raised when a result is requested for a failed or cancelled job."""


def task_key(task: ShardTask) -> str:
    """Content address of one shard task's result, for the shared cache.

    Everything that determines the chunk's outcome enters the digest -- the
    spec payload, engine, chunk trial count, derived seed (entropy +
    spawn key) and sliced options -- plus the dispatch layer's
    ``KEY_VERSION``, so a semantics bump invalidates service caches exactly
    when it invalidates facade caches.  Two workers that execute the same
    task (a retry after a lease expiry) therefore write the same cache
    entry: duplicate execution is idempotent.
    """
    return _key_of_task_payload(task.to_payload())


def _key_of_task_payload(task_payload: dict) -> str:
    """The digest behind :func:`task_key`, for callers (the broker's submit
    loop) that already built the payload and must not serialize it twice."""
    payload = {"version": KEY_VERSION, "task": task_payload}
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JobStatus:
    """A point-in-time view of one job's progress."""

    job_id: str
    state: str  # submitted | running | done | failed | cancelled
    total_tasks: int
    done_tasks: int
    failed_tasks: Dict[int, str] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        """True when the job can make no further progress."""
        return self.state in ("done", "failed", "cancelled")


def _check_job_id(job_id: str) -> str:
    return check_safe_id(job_id, kind="job id")


class Broker:
    """Submit, track and reassemble jobs under one service root directory.

    Parameters
    ----------
    root:
        Service root.  Defaults place the queue under ``root/queue``, job
        manifests under ``root/jobs`` and the shared result cache under
        ``root/cache`` -- one directory a fleet of workers (and clients) on
        a common filesystem can point at.
    queue:
        Override the queue backend (e.g. :class:`MemoryJobQueue` for
        in-process tests).
    cache:
        Override the shared result cache: a :class:`ResultCache`, a
        directory path, or ``None`` for the default
        ``DiskResultCache(root/cache, max_bytes=cache_max_bytes)``.
    cache_max_bytes:
        LRU size cap for the default disk cache (``None`` = unbounded);
        ignored when ``cache`` is given.  Size the cap to comfortably
        exceed the largest expected job's total chunk footprint: a cap
        smaller than one job's own chunks lets later puts evict earlier
        chunks before ``result()`` can merge them, leaving a "done" job
        that cannot be served until it is resubmitted against a larger cap.
    ledger:
        Override the tenant budget ledger: a
        :class:`~repro.tenancy.ledger.BudgetLedger`, a directory path, or
        ``None`` for the default ``BudgetLedger(root/tenants)`` every
        broker sharing the root also sees.  Tenants without a granted
        budget are unbounded (charges are recorded for the metrics surface
        but never refused), so single-tenant deployments need no setup.
    scheduler:
        Claim-order policy for the default queue (ignored when ``queue`` is
        given): ``None`` for the fair-share default, ``"fifo"`` for plain
        enqueue order, or a configured
        :class:`~repro.tenancy.scheduler.TenantScheduler`.
    injector:
        Optional chaos hook (:class:`repro.chaos.FaultInjector`), passed
        through to the default-constructed queue and ledger; explicit
        ``queue=``/``ledger=`` instances carry their own.  ``None``
        (production) is a strict no-op.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        *,
        queue: Optional[JobQueue] = None,
        cache: Union[None, str, os.PathLike, ResultCache] = None,
        cache_max_bytes: Optional[int] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        ledger: Union[None, str, os.PathLike, BudgetLedger] = None,
        scheduler=None,
        injector=None,
    ) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        try:
            self.jobs_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            # Read-only root: status/list/result reads (and the metrics
            # verb, which constructs a Broker purely to read) still work;
            # submit fails at its first write with the real error.
            pass
        self.injector = injector
        self.queue = queue if queue is not None else FileJobQueue(
            self.root / "queue",
            max_attempts=max_attempts,
            lease_seconds=lease_seconds,
            scheduler=scheduler,
            injector=injector,
        )
        if cache is None:
            self.cache: ResultCache = DiskResultCache(
                self.root / "cache", max_bytes=cache_max_bytes
            )
        else:
            self.cache = as_result_cache(cache)
        if isinstance(ledger, BudgetLedger):
            self.ledger = ledger
        else:
            self.ledger = BudgetLedger(
                self.root / "tenants" if ledger is None else ledger,
                injector=injector,
            )

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        spec: MechanismSpec,
        *,
        engine: str = "batch",
        trials: int = 1,
        seed: int = 0,
        chunk_trials: Optional[int] = None,
        options: Optional[dict] = None,
        job_id: Optional[str] = None,
        tenant: str = DEFAULT_TENANT,
        priority: int = DEFAULT_PRIORITY,
    ) -> str:
        """Validate one execution request, chunk it, and enqueue its tasks.

        Everything a worker could reject is validated here, *before* any
        task is queued: the spec, the engine name, the (spec, engine)
        executor registration, the trial counts, and the seed -- which must
        be a plain integer, both for the determinism contract (the job must
        reproduce ``run(spec, trials=..., rng=seed, shards=N)``) and because
        the per-task results are content-addressed in the shared cache.

        **Admission control**: the job's worst-case consumption
        (``spec.epsilon * trials``, every trial spending its full budget --
        the same reservation ``run(budget=)`` makes) is charged to
        ``tenant`` on the shared :class:`BudgetLedger` before anything is
        queued.  A tenant with a granted budget that cannot absorb the
        reservation is refused with
        :class:`~repro.accounting.budget.BudgetExceededError` and nothing
        is enqueued or recorded.  The unused part of the reservation is
        refunded when the job settles (``result()`` / ``cancel()``).

        ``priority`` (bigger = more urgent) and ``tenant`` also tag every
        queued task for the claim scheduler: strict priority classes,
        fair shares across tenants inside a class, FIFO within a tenant.
        """
        if not isinstance(spec, MechanismSpec):
            raise TypeError(
                f"spec must be a MechanismSpec, got {type(spec).__name__}"
            )
        spec.validate()
        engine_name = validate_engine(engine)
        executor = get_executor(type(spec), engine_name)  # unsupported pairs fail
        trials = int(trials)
        if trials < 1:
            raise ValueError(f"trials must be at least 1, got {trials}")
        # Same seed contract (and coercion) as run(cache=) / run(shards=).
        if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
            raise ValueError(
                "submit() requires a reproducible run: pass an integer "
                "seed (the rng= argument of repro.api.submit) so the job "
                "has a stable content address and a deterministic result "
                f"(got {type(seed).__name__})"
            )
        seed = int(seed)
        resolved_chunk = (
            DEFAULT_CHUNK_TRIALS if chunk_trials is None else int(chunk_trials)
        )
        if resolved_chunk < 1:
            raise ValueError(
                f"chunk_trials must be at least 1, got {resolved_chunk}"
            )
        options = dict(options or {})
        # Options the executor does not accept fail here, exactly as run()
        # rejects them -- not after every chunk has been executed and
        # retried to exhaustion on the workers.
        _check_options(executor, type(spec), engine_name, options)
        tenant = str(tenant)
        priority = int(priority)
        job_id = _check_job_id(job_id or f"job-{uuid.uuid4().hex[:12]}")
        job_dir = self.jobs_dir / job_id
        # Existence is defined by the manifest (the commit marker below),
        # not the directory: a submit that crashed mid-enqueue leaves dirs
        # but no manifest, and must not block a clean resubmission.
        if (job_dir / "manifest.json").exists():
            raise ServiceError(f"job {job_id!r} already exists")

        tasks = make_tasks(
            spec,
            engine=engine_name,
            trials=trials,
            seed=seed,
            chunk_trials=resolved_chunk,
            options=options,
        )
        entries = []
        payloads = []  # built once per task; hashed here, enqueued below
        for task in tasks:
            payload = task.to_payload()
            payloads.append(payload)
            entries.append(
                {
                    "task_id": f"{job_id}-{task.index:06d}",
                    "index": task.index,
                    "trials": task.trials,
                    "key": _key_of_task_payload(payload),
                }
            )
        manifest = {
            "version": 1,
            "job_id": job_id,
            "spec": json.loads(spec.to_json()),
            "engine": engine_name,
            "trials": trials,
            "seed": seed,
            "chunk_trials": resolved_chunk,
            "tenant": tenant,
            "priority": priority,
            # Worst-case consumption, reserved on the ledger at admission
            # and settled (actual charged, rest refunded) on completion.
            "reserved_epsilon": float(spec.epsilon) * trials,
            # The facade key of the equivalent run(spec, shards=..., cache=)
            # request: result() stores the merged result under it, so a
            # warm service cache also serves in-process facade callers.
            "run_key": run_key(
                spec,
                engine=engine_name,
                trials=trials,
                seed=seed,
                chunk_trials=resolved_chunk,
                options=options,
            ),
            "submitted_at": time.time(),
            "tasks": entries,
        }
        # Admission control: reserve the worst case on the shared ledger
        # *before* anything is queued.  An over-budget tenant is refused
        # here (BudgetExceededError), with no queue or disk side effects;
        # any failure between this charge and the manifest commit refunds
        # the reservation, so an aborted submit leaves the ledger balanced.
        self.ledger.charge(tenant, manifest["reserved_epsilon"], job_id=job_id)
        try:
            # Marker dirs first, tasks second, manifest LAST: the manifest is
            # the commit marker.  A submit that crashes mid-enqueue leaves
            # only orphan tasks (workers execute them into the
            # content-addressed cache -- wasted but harmless), never a
            # committed job that can no longer complete; the client sees "no
            # such job" and resubmits.
            (job_dir / "done").mkdir(parents=True, exist_ok=True)
            (job_dir / "failed").mkdir(exist_ok=True)
            # A previously crashed (uncommitted) submission may have left
            # completion markers from its orphan tasks; inheriting them would
            # make the fresh job report done/failed states it never earned.
            for stale in (
                *(job_dir / "done").glob("*.json"),
                *(job_dir / "failed").glob("*.json"),
                job_dir / "cancelled.json",
            ):
                try:
                    stale.unlink()
                except OSError:
                    pass
            for payload, entry in zip(payloads, entries):
                envelope = {
                    "job_id": job_id,
                    "index": entry["index"],
                    "key": entry["key"],
                    "tenant": tenant,
                    "priority": priority,
                    "task": payload,
                }
                # Drop any pending orphan of a previously crashed submit
                # under the same task id -- and its dead-letter record,
                # which would otherwise make a later reaper pass spuriously
                # fail the fresh job -- so the resubmission's envelope is
                # the one that runs.  An orphan a worker has *claimed*
                # cannot be replaced mid-flight: surface that as a
                # service-level conflict instead of letting the raw
                # QueueError escape.
                self.queue.remove(entry["task_id"])
                self.queue.clear_failed(entry["task_id"])
                try:
                    self.queue.put(
                        json.dumps(envelope, sort_keys=True),
                        task_id=entry["task_id"],
                        priority=priority,
                        tenant=tenant,
                    )
                except QueueError as exc:
                    raise ServiceError(
                        f"task {entry['task_id']!r} from a previous "
                        f"uncommitted submission of job {job_id!r} is still "
                        "claimed by a worker; wait for its lease to resolve "
                        "or submit under a fresh job id"
                    ) from exc
            atomic_write_json(job_dir / "manifest.json", manifest)
        except BaseException as submit_error:
            # Compensate the reservation.  The refund itself can fail (the
            # same full disk that broke the enqueue, a wedged ledger lock):
            # retry briefly, and if it still cannot land, surface the
            # leaked amount loudly -- an operator repairs it with
            # `tenant-budget <tenant> --root ... --refund <eps>`.
            reserved = manifest["reserved_epsilon"]
            for attempt in range(3):
                try:
                    self.ledger.refund(tenant, reserved, job_id=job_id)
                    break
                except Exception:  # noqa: BLE001 -- compensation best effort
                    if attempt == 2:
                        raise ServiceError(
                            f"submission of job {job_id!r} failed AND the "
                            f"compensating refund of epsilon={reserved:g} "
                            f"to tenant {tenant!r} could not be journalled; "
                            "the reservation is leaked -- repair it with "
                            f"`tenant-budget {tenant} --refund {reserved:g}` "
                            f"once the ledger is writable "
                            f"(original error: {submit_error})"
                        ) from submit_error
                    time.sleep(0.05)
            raise
        return job_id

    # -- status -------------------------------------------------------------

    def manifest(self, job_id: str) -> dict:
        """The job's manifest, or :class:`JobNotFoundError`."""
        path = self.jobs_dir / _check_job_id(job_id) / "manifest.json"
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            raise JobNotFoundError(
                f"no job {job_id!r} under {os.fspath(self.jobs_dir)}"
            ) from None

    def status(self, job_id: str) -> JobStatus:
        """Derive the job's state from its completion markers.

        Stateless by design: any process that can read the service root
        computes the same answer, whether or not a broker/worker is alive.
        """
        return self._status_from_manifest(job_id, self.manifest(job_id))

    def status_many(self, job_ids) -> Dict[str, JobStatus]:
        """Statuses for a batch of jobs, keyed by job id.

        The campaign layer fans a wave of jobs out and polls them as one
        unit; this is the single call that answers "is the wave done yet"
        so N in-flight jobs cost one round-trip, not N (the HTTP
        transport maps it onto one ``GET /v1/jobs?ids=...``).  Duplicate
        ids collapse; an unknown id raises :class:`JobNotFoundError`
        exactly as :meth:`status` would -- a batch never silently drops a
        job the caller is waiting on.
        """
        statuses: Dict[str, JobStatus] = {}
        for job_id in job_ids:
            job_id = str(job_id)
            if job_id in statuses:
                continue
            statuses[job_id] = self.status(job_id)
        return statuses

    def _status_from_manifest(self, job_id: str, manifest: dict) -> JobStatus:
        # Split out so result() can reuse an already-loaded manifest
        # instead of re-reading it from disk for the status check.
        job_dir = self.jobs_dir / job_id
        total = len(manifest["tasks"])
        # Only markers for indexes this manifest actually owns count: a
        # crashed prior submission's orphan tasks may write markers for
        # chunk indexes the committed job does not have, and counting them
        # would wedge the done==total comparison (or fail a healthy job).
        valid = {int(entry["index"]) for entry in manifest["tasks"]}
        done = set()
        for path in (job_dir / "done").glob("*.json"):
            try:
                index = int(path.name[: -len(".json")])
            except ValueError:
                continue  # stray non-marker file; same policy as failed/
            if index in valid:
                done.add(index)
        failed: Dict[int, str] = {}
        for path in (job_dir / "failed").glob("*.json"):
            try:
                index = int(path.name[: -len(".json")])
                if index not in valid:
                    continue
                failed[index] = json.loads(
                    path.read_text(encoding="utf-8")
                ).get("error", "")
            except (OSError, ValueError):
                continue
        # A fully-completed job stays "done" even if a cancel raced the last
        # task: the result exists, so serving it beats discarding it.
        if len(done) == total:
            state = "done"
        elif (job_dir / "cancelled.json").exists():
            state = "cancelled"
        elif failed:
            state = "failed"
        elif done:
            state = "running"
        else:
            state = "submitted"
        return JobStatus(
            job_id=job_id,
            state=state,
            total_tasks=total,
            done_tasks=len(done),
            failed_tasks=failed,
        )

    # -- completion markers (written by workers) ----------------------------

    def is_cancelled(self, job_id: str) -> bool:
        """Cheap cancellation probe (one stat; workers call it per task)."""
        return (self.jobs_dir / _check_job_id(job_id) / "cancelled.json").exists()

    def mark_done(self, job_id: str, index: int, key: str) -> None:
        """Record that a task's result is in the shared cache under ``key``."""
        job_dir = self.jobs_dir / _check_job_id(job_id)
        atomic_write_json(
            job_dir / "done" / f"{int(index)}.json",
            {"key": key, "completed_at": time.time()},
        )

    def mark_failed(self, job_id: str, index: int, error: str) -> None:
        """Record that a task exhausted its retries; the job is failed.

        Writing the marker is what turns the job terminal, so the job's
        budget reservation is settled here too -- symmetric with
        ``result()``/``cancel()``.  Without this, a permanently failed job
        nobody ever fetches (the fire-and-forget client) would strand its
        worst-case admission charge forever.  Settlement failure (a wedged
        ledger lock on a crashing fleet) must not lose the marker write
        that already happened: it is swallowed, and any later
        :meth:`settle_terminal`/:meth:`result` retries the exactly-once
        settle.
        """
        job_dir = self.jobs_dir / _check_job_id(job_id)
        atomic_write_json(
            job_dir / "failed" / f"{int(index)}.json",
            {"error": str(error), "failed_at": time.time()},
        )
        try:
            self.settle_terminal(job_id)
        except Exception:  # noqa: BLE001 -- marker durability over settlement
            pass

    # -- budget settlement --------------------------------------------------

    def _consumed_epsilon(
        self, job_id: str, manifest: dict, *, never_ran=()
    ) -> float:
        """Epsilon a terminal (cancelled/failed) job consumed, conservatively.

        Per chunk: a **done** chunk counts its actual consumption read back
        from the shared cache; a chunk in ``never_ran`` (cancel() proved it
        -- it was removed from the pending queue, and any later requeue of a
        cancelled job's task is discarded by the workers unexecuted) counts
        zero; every other chunk -- claimed and possibly mid-execution,
        failed after drawing noise, or done but evicted before settlement --
        counts its worst case, ``spec.epsilon * chunk trials``.  Ambiguity
        always rounds toward *spent*: the ledger may strand a little budget
        on a crashed fleet, but it never under-counts a release.
        """
        job_dir = self.jobs_dir / job_id
        epsilon = float(manifest["spec"]["epsilon"])
        never_ran = set(never_ran)
        total = 0.0
        for entry in manifest["tasks"]:
            worst = epsilon * int(entry["trials"])
            if (job_dir / "done" / f"{int(entry['index'])}.json").exists():
                chunk = self.cache.get(entry["key"])
                total += (
                    float(np.sum(chunk.epsilon_consumed))
                    if chunk is not None
                    else worst
                )
            elif entry["task_id"] in never_ran:
                pass
            else:
                total += worst
        return total

    def _settle(self, manifest: dict, consumed_fn) -> None:
        """Refund the unused part of the job's reservation, exactly once.

        ``consumed_fn`` computes the consumed epsilon lazily -- it may cost
        per-chunk cache reads, so it only runs on the one settling call.
        Idempotent by the ledger's settled-job set, so repeated ``result()``
        calls (or a ``cancel()`` racing a ``result()``) never double-refund.
        Manifests from before the ledger era carry no reservation and are
        left alone.
        """
        if "reserved_epsilon" not in manifest:
            return
        # Lock-free pre-check: repeated result() fetches of a settled job
        # (the common warm path) must stay pure reads -- no journal lock
        # contention, no lock-timeout failure mode.  settle() re-checks
        # under the lock, so a racing first-settle stays exactly-once.
        if self.ledger.is_settled(manifest["job_id"]):
            return
        reserved = float(manifest["reserved_epsilon"])
        refund = max(0.0, reserved - max(0.0, float(consumed_fn())))
        self.ledger.settle(
            manifest.get("tenant", DEFAULT_TENANT),
            refund,
            job_id=manifest["job_id"],
        )

    def settle_terminal(self, job_id: str) -> bool:
        """Ensure a finished job's reservation is settled; idempotent.

        Returns True when the job is terminal (done/failed/cancelled --
        its settlement now recorded, or already was), False when it can
        still make progress.  This is the settlement sweep behind
        :meth:`mark_failed` and the repair for a fleet whose settling
        writer crashed between a job's last marker and its ledger record:
        any later caller (a reaper's next dead-letter, an operator script,
        the chaos harness's recovery pass) lands the exactly-once settle
        from the root files alone.
        """
        manifest = self.manifest(job_id)
        status = self._status_from_manifest(job_id, manifest)
        if not status.finished:
            return False
        if status.state == "done":
            # Prefer the merged result's actual consumption (one cache
            # read); fall back to the per-chunk walk result() also uses.
            merged = self.cache.get(manifest.get("run_key", "")) if manifest.get("run_key") else None
            if merged is not None:
                self._settle(
                    manifest, lambda: float(np.sum(merged.epsilon_consumed))
                )
                return True
        self._settle(manifest, lambda: self._consumed_epsilon(job_id, manifest))
        return True

    # -- results ------------------------------------------------------------

    def result(self, job_id: str) -> Result:
        """The merged :class:`Result` of a finished job.

        Per-task results are fetched from the shared cache in chunk order
        and merged exactly as ``run(spec, shards=N)`` merges them.  The
        merged result is additionally stored under the job's facade
        ``run_key``, so the service warms the same cache entries an
        in-process ``run(spec, ..., shards=, cache=)`` call would consult --
        and repeated ``result()`` calls are served straight from that entry
        instead of re-merging (and re-writing) the chunks every time.
        """
        manifest = self.manifest(job_id)  # read once; status reuses it
        status = self._status_from_manifest(job_id, manifest)
        if status.state == "cancelled":
            self._settle(
                manifest,
                lambda: self._consumed_epsilon(job_id, manifest),
            )
            raise JobFailedError(f"job {job_id!r} was cancelled")
        if status.state == "failed":
            self._settle(
                manifest,
                lambda: self._consumed_epsilon(job_id, manifest),
            )
            detail = "; ".join(
                f"chunk {index}: {error}"
                for index, error in sorted(status.failed_tasks.items())
            )
            raise JobFailedError(f"job {job_id!r} failed ({detail})")
        if status.state != "done":
            raise ServiceError(
                f"job {job_id!r} is not done yet "
                f"({status.done_tasks}/{status.total_tasks} tasks, "
                f"state {status.state!r})"
            )
        merged = self.cache.get(manifest["run_key"])
        if merged is not None:
            self._settle(
                manifest, lambda: float(np.sum(merged.epsilon_consumed))
            )
            return merged
        results = []
        missing = []
        for entry in sorted(manifest["tasks"], key=lambda e: e["index"]):
            chunk = self.cache.get(entry["key"])
            if chunk is None:
                # Self-heal: purge whatever unreadable remnant made this a
                # miss (e.g. a payload contains() would still probe as
                # present), so the resubmission's workers recompute the
                # chunk instead of marking it done off the corrupt entry.
                # Keep scanning rather than raising at the first miss --
                # healing all the bad chunks at once means one resubmission
                # recovers the job, not one cycle per bad chunk.
                self.cache.evict(entry["key"])
                missing.append(entry["index"])
                continue
            results.append(chunk)
        if missing:
            raise ServiceError(
                f"result of chunk(s) {missing} of job {job_id!r} "
                "missing from the shared cache (evicted or deleted); "
                "resubmit the request under a fresh job id to recompute "
                "them -- and if the cache has a max_bytes cap smaller than "
                "the job's total chunk footprint, raise the cap first or "
                "the recomputation will be evicted the same way"
            )
        merged = merge_results(results)
        self.cache.put(manifest["run_key"], merged)
        self._settle(
            manifest, lambda: float(np.sum(merged.epsilon_consumed))
        )
        return merged

    def spec(self, job_id: str) -> MechanismSpec:
        """The job's mechanism spec, reconstructed from the manifest."""
        return spec_from_dict(self.manifest(job_id)["spec"])

    # -- cancellation -------------------------------------------------------

    def cancel(self, job_id: str) -> JobStatus:
        """Stop a job: drop its still-pending tasks and mark it cancelled.

        Tasks a worker already claimed finish their in-flight execution
        (their results are content-addressed, so letting them finish is
        harmless), but any later claim of a cancelled job's task -- a
        retry, or a lease expiry requeue -- is discarded by the workers
        without executing.  Cancelling a finished job is a no-op beyond
        writing the marker.  Either way the job's budget reservation is
        settled here: the tenant gets back whatever its completed chunks
        did not actually consume, without waiting for a ``result()`` call
        that may never come.
        """
        manifest = self.manifest(job_id)
        job_dir = self.jobs_dir / job_id
        never_ran = set()
        for entry in manifest["tasks"]:
            # "Never ran" requires removing the task from pending *and*
            # seeing attempts == 0 in the removed entry itself: a
            # nacked-and-requeued retry already drew noise on its earlier
            # attempt, so its budget stays spent even though it was
            # pending.  take_pending is atomic (remove-then-read), so no
            # claim + nack cycle can slip in between; a queue backend
            # without it falls back to plain removal, conservatively
            # counting the chunk as consumed.
            try:
                taken = self.queue.take_pending(entry["task_id"])
            except NotImplementedError:
                self.queue.remove(entry["task_id"])
                taken = None
            if taken is not None and int(taken.get("attempts", 0)) == 0:
                never_ran.add(entry["task_id"])
        atomic_write_json(
            job_dir / "cancelled.json", {"cancelled_at": time.time()}
        )
        self._settle(
            manifest,
            lambda: self._consumed_epsilon(job_id, manifest, never_ran=never_ran),
        )
        return self.status(job_id)

    def list_jobs(self) -> List[str]:
        """All job ids under the service root, sorted."""
        return sorted(
            path.name
            for path in self.jobs_dir.iterdir()
            if (path / "manifest.json").exists()
        )
