"""The client face of the service: submit, poll, fetch, cancel.

A :class:`JobClient` is a thin, stateless wrapper over the
:class:`~repro.service.broker.Broker` read/write protocol -- anything that
can see the service root directory (same process, another process, another
machine on the shared filesystem) is a fully-capable client::

    client = JobClient("/srv/repro")
    handle = client.submit(spec, trials=100_000, seed=0)
    ...                       # workers drain the queue elsewhere
    result = handle.result(timeout=60.0)   # the merged Result

:meth:`JobClient.submit` returns a :class:`JobHandle`, the async counterpart
of :func:`repro.api.run`'s return value: ``status()`` / ``result()`` /
``cancel()`` bound to the job id.  ``result`` polls until the job finishes
(or a timeout expires) and raises
:class:`~repro.service.broker.JobFailedError` with the per-chunk errors when
it cannot succeed.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Union

from repro.api.result import Result
from repro.api.specs import MechanismSpec
from repro.service.broker import Broker, JobStatus
from repro.tenancy.scheduler import DEFAULT_PRIORITY, DEFAULT_TENANT

__all__ = ["JobClient", "JobHandle"]


class JobHandle:
    """An in-flight job: the async analogue of a :class:`Result`."""

    def __init__(self, client: "JobClient", job_id: str) -> None:
        self.client = client
        self.job_id = job_id

    def status(self) -> JobStatus:
        return self.client.status(self.job_id)

    def result(
        self, *, timeout: Optional[float] = None, poll_interval: float = 0.5
    ) -> Result:
        return self.client.result(
            self.job_id, timeout=timeout, poll_interval=poll_interval
        )

    def cancel(self) -> JobStatus:
        return self.client.cancel(self.job_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobHandle({self.job_id!r})"


class JobClient:
    """Submit jobs to, and read results from, one service root."""

    def __init__(
        self, root: Union[Broker, str, os.PathLike], **broker_kwargs
    ) -> None:
        self.broker = root if isinstance(root, Broker) else Broker(root, **broker_kwargs)

    def submit(
        self,
        spec: MechanismSpec,
        *,
        engine: str = "batch",
        trials: int = 1,
        seed: int = 0,
        chunk_trials: Optional[int] = None,
        options: Optional[dict] = None,
        job_id: Optional[str] = None,
        tenant: str = DEFAULT_TENANT,
        priority: int = DEFAULT_PRIORITY,
    ) -> JobHandle:
        """Enqueue one execution request; returns immediately with a handle.

        ``tenant`` names the budget/fair-share bucket the job runs under
        (admission is refused when the tenant's granted epsilon budget
        cannot absorb the job's worst case) and ``priority`` its scheduling
        class (bigger = claimed earlier) -- see :mod:`repro.tenancy`.
        """
        job_id = self.broker.submit(
            spec,
            engine=engine,
            trials=trials,
            seed=seed,
            chunk_trials=chunk_trials,
            options=options,
            job_id=job_id,
            tenant=tenant,
            priority=priority,
        )
        return JobHandle(self, job_id)

    def status(self, job_id: str) -> JobStatus:
        return self.broker.status(job_id)

    def status_many(self, job_ids) -> Dict[str, JobStatus]:
        """Batch :meth:`status`: one call answers for a whole job wave."""
        return self.broker.status_many(job_ids)

    def result(
        self,
        job_id: str,
        *,
        timeout: Optional[float] = None,
        poll_interval: float = 0.5,
    ) -> Result:
        """The merged result, polling until the job finishes.

        ``timeout=None`` fetches exactly once (raising
        :class:`ServiceError` if the job is still in flight); a float polls
        until the job reaches a terminal state or the timeout expires
        (``TimeoutError``).  Each poll re-reads the job's markers, so the
        default interval is deliberately coarse (0.5s) -- waiting clients
        on a shared filesystem should be metadata-cheap; lower it for
        latency-sensitive local tests.  A failed or cancelled job raises
        :class:`JobFailedError` immediately, with per-chunk errors.
        """
        if timeout is None:
            return self.broker.result(job_id)
        deadline = time.monotonic() + float(timeout)
        while True:
            status = self.broker.status(job_id)
            if status.finished:
                return self.broker.result(job_id)  # raises on failed/cancelled
            now = time.monotonic()
            if now >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} not finished after {timeout}s "
                    f"({status.done_tasks}/{status.total_tasks} tasks done)"
                )
            # Clamp to the remaining time: a full-interval sleep past the
            # deadline would make result(timeout=T) block until
            # T + poll_interval before reporting the timeout.
            time.sleep(min(poll_interval, deadline - now))

    def cancel(self, job_id: str) -> JobStatus:
        return self.broker.cancel(job_id)
