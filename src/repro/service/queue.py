"""Job queues: durable, atomically-claimed task storage for the service.

A queue stores opaque JSON payloads (the broker enqueues ``ShardTask``
envelopes) and hands them to workers with **at-least-once** semantics:

* ``put`` enqueues a payload under a task id, tagged with the submitting
  ``tenant`` and a ``priority`` class;
* ``claim`` atomically transfers one pending task to the claiming worker --
  two workers racing for the same task can never both win.  Claim *order*
  is delegated to a :class:`~repro.tenancy.scheduler.TenantScheduler`
  (strict priority classes, deficit-weighted round-robin across tenants,
  FIFO within a tenant), so a flooding tenant cannot starve the queue;
  pass ``scheduler="fifo"`` for the plain enqueue-order behaviour;
* ``heartbeat`` renews a live worker's lease mid-task, so the reaper can
  tell a long-running chunk from a crashed worker;
* ``ack`` removes a completed task;
* ``nack`` returns a failed task to the queue (or dead-letters it once its
  attempts are exhausted);
* ``requeue_expired`` returns tasks whose worker crashed mid-task (claimed
  longer ago than the lease) to the pending state.

Two interchangeable backends behind the same interface:

* :class:`MemoryJobQueue` -- process-local dicts under a lock, for tests and
  in-process worker threads;
* :class:`FileJobQueue` -- a directory tree (``pending/`` / ``claimed/`` /
  ``failed/`` JSON files) shared by any number of worker processes or
  machines on a common filesystem.  A claim is one ``os.rename`` from
  ``pending/`` to ``claimed/`` -- atomic on POSIX, so exactly one claimer
  wins and losers simply move on to the next file.

At-least-once, not exactly-once: a lease can expire while its worker is
still alive (slow task), in which case two workers may execute the same
task.  That is safe by construction here -- task results are
content-addressed in the shared result cache, so duplicate executions write
the same entry.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.dispatch.cache import atomic_write_bytes, check_safe_name
from repro.tenancy.scheduler import (
    DEFAULT_PRIORITY,
    DEFAULT_TENANT,
    ScheduledEntry,
    TenantScheduler,
)

__all__ = [
    "ClaimedTask",
    "FileJobQueue",
    "JobQueue",
    "MemoryJobQueue",
    "QueueError",
    "atomic_write_json",
    "check_safe_id",
]

#: Default attempts before a task is dead-lettered (first try + retries).
DEFAULT_MAX_ATTEMPTS = 3

#: Default seconds a claim stays valid before ``requeue_expired`` may
#: return the task to the queue (the worker is presumed crashed).
DEFAULT_LEASE_SECONDS = 300.0


class QueueError(RuntimeError):
    """Raised on queue-protocol violations (e.g. acking an unclaimed task)."""


@dataclass(frozen=True)
class ClaimedTask:
    """One task handed to a worker: payload plus claim bookkeeping.

    ``attempts`` counts executions *including* this one, so a worker can
    tell a first try (1) from a retry (>1).  It doubles as the claim's
    **fencing token**: pass it back to ``ack``/``nack`` so a worker whose
    lease expired mid-execution (its task reclaimed by someone else at a
    higher attempt count) cannot revoke the new owner's live claim.
    """

    task_id: str
    payload: str
    attempts: int


def _resolve_scheduler(scheduler) -> Optional[TenantScheduler]:
    """The queue constructors' shared ``scheduler=`` coercion: ``None``
    (default) builds a fresh fair-share scheduler, ``"fifo"`` disables
    scheduling (plain enqueue order), and an instance is used as-is (e.g.
    one with per-tenant weights)."""
    if scheduler is None:
        return TenantScheduler()
    if scheduler == "fifo":
        return None
    if isinstance(scheduler, TenantScheduler):
        return scheduler
    raise TypeError(
        "scheduler must be None, 'fifo' or a TenantScheduler instance; "
        f"got {type(scheduler).__name__}"
    )


class JobQueue:
    """Interface shared by the queue backends (see module docstring)."""

    def put(
        self,
        payload: str,
        *,
        task_id: Optional[str] = None,
        priority: int = DEFAULT_PRIORITY,
        tenant: str = DEFAULT_TENANT,
    ) -> str:
        raise NotImplementedError

    def claim(self, worker_id: Optional[str] = None) -> Optional[ClaimedTask]:
        raise NotImplementedError

    def heartbeat(self, task_id: str, *, token: Optional[int] = None) -> bool:
        """Renew a live claim's lease; False when the claim is gone (or the
        fencing token is stale)."""
        raise NotImplementedError

    def ack(self, task_id: str, *, token: Optional[int] = None) -> bool:
        raise NotImplementedError

    def nack(
        self,
        task_id: str,
        error: Optional[str] = None,
        *,
        token: Optional[int] = None,
    ) -> str:
        raise NotImplementedError

    def requeue_expired(self, lease_seconds: Optional[float] = None) -> List[str]:
        raise NotImplementedError

    def remove(self, task_id: str) -> bool:
        raise NotImplementedError

    def take_pending(self, task_id: str) -> Optional[dict]:
        """Atomically remove a pending task and return its entry (with its
        ``attempts`` count), or None when the task is not pending.  The
        broker's cancel() uses the returned attempts to tell a never-ran
        chunk (refundable) from a requeued retry that already drew noise --
        atomicity matters: a separate probe-then-remove would race a
        claim + nack cycle in between.  Backends without it fall back to
        :meth:`remove` (the broker then conservatively counts the chunk as
        consumed)."""
        raise NotImplementedError

    def failed_error(self, task_id: str) -> Optional[str]:
        """The recorded error of a dead-lettered task (None if not failed)."""
        raise NotImplementedError

    def failed_payload(self, task_id: str) -> Optional[str]:
        """The payload of a dead-lettered task (None if not failed)."""
        raise NotImplementedError

    def clear_failed(self, task_id: str) -> bool:
        """Drop a dead-letter entry (a resubmission reuses the task id)."""
        raise NotImplementedError

    def counts(self) -> Dict[str, int]:
        raise NotImplementedError

    @property
    def is_idle(self) -> bool:
        """True when nothing is pending or claimed (failed tasks may remain)."""
        counts = self.counts()
        return counts["pending"] == 0 and counts["claimed"] == 0


def _new_task_id() -> str:
    return uuid.uuid4().hex


def check_safe_id(value: str, kind: str = "task id") -> str:
    """Reject ids that could escape their directory (used for task ids here
    and job ids in the broker; delegates to the dispatch layer's one copy
    of the rule)."""
    return check_safe_name(value, kind=kind)


def atomic_write_json(path: Path, payload: dict) -> None:
    """Write JSON via temp file + ``os.replace``: readers (and claim
    renames) never observe a half-written file, and a failed write leaves
    no temp behind.  Shared by the queue's entries and the broker's
    manifests/markers."""
    atomic_write_bytes(path, json.dumps(payload, sort_keys=True).encode("utf-8"))


def _check_task_id(task_id: str) -> str:
    return check_safe_id(task_id)


class MemoryJobQueue(JobQueue):
    """A process-local queue: dicts under one lock, FIFO by enqueue order.

    The reference backend for tests and same-process worker threads; the
    semantics (atomic claim, ack/nack, lease expiry, dead-lettering) are
    identical to :class:`FileJobQueue`.
    """

    def __init__(
        self,
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        scheduler=None,
    ) -> None:
        self.max_attempts = int(max_attempts)
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {max_attempts}")
        self.lease_seconds = float(lease_seconds)
        self._scheduler = _resolve_scheduler(scheduler)
        self._lock = threading.Lock()
        self._seq = 0  # enqueue stamp: FIFO key within a tenant
        self._pending: Dict[str, dict] = {}  # insertion-ordered
        self._claimed: Dict[str, dict] = {}
        self._failed: Dict[str, dict] = {}

    def put(
        self,
        payload: str,
        *,
        task_id: Optional[str] = None,
        priority: int = DEFAULT_PRIORITY,
        tenant: str = DEFAULT_TENANT,
    ) -> str:
        task_id = _check_task_id(task_id or _new_task_id())
        with self._lock:
            if task_id in self._pending or task_id in self._claimed:
                raise QueueError(f"task {task_id!r} is already queued")
            self._seq += 1
            self._pending[task_id] = {
                "payload": str(payload),
                "attempts": 0,
                "priority": int(priority),
                "tenant": str(tenant),
                "seq": self._seq,
            }
        return task_id

    def claim(self, worker_id: Optional[str] = None) -> Optional[ClaimedTask]:
        with self._lock:
            if not self._pending:
                return None
            if self._scheduler is None:
                task_id = next(iter(self._pending))
            else:
                entries = [
                    ScheduledEntry(
                        entry_id=tid,
                        priority=int(entry.get("priority", DEFAULT_PRIORITY)),
                        tenant=str(entry.get("tenant", DEFAULT_TENANT)),
                        seq=float(entry.get("seq", 0.0)),
                    )
                    for tid, entry in self._pending.items()
                ]
                # Lazy: only the first candidate is ever needed here (the
                # lock guarantees it is still pending).
                chosen = next(self._scheduler.arrange_iter(entries))
                self._scheduler.record(chosen.priority, chosen.tenant)
                task_id = chosen.entry_id
            entry = self._pending.pop(task_id)
            entry["attempts"] += 1
            entry["claimed_at"] = time.time()
            entry["worker_id"] = worker_id
            self._claimed[task_id] = entry
            return ClaimedTask(
                task_id=task_id,
                payload=entry["payload"],
                attempts=entry["attempts"],
            )

    def heartbeat(self, task_id: str, *, token: Optional[int] = None) -> bool:
        with self._lock:
            entry = self._claimed.get(task_id)
            if entry is None:
                return False
            if token is not None and entry["attempts"] != token:
                return False  # reclaimed meanwhile: the new owner's lease rules
            entry["claimed_at"] = time.time()
            return True

    def take_pending(self, task_id: str) -> Optional[dict]:
        with self._lock:
            return self._pending.pop(task_id, None)

    def ack(self, task_id: str, *, token: Optional[int] = None) -> bool:
        with self._lock:
            entry = self._claimed.get(task_id)
            if entry is None:
                return False
            if token is not None and entry["attempts"] != token:
                return False  # stale ack: the task was reclaimed meanwhile
            del self._claimed[task_id]
            return True

    def nack(
        self,
        task_id: str,
        error: Optional[str] = None,
        *,
        token: Optional[int] = None,
    ) -> str:
        with self._lock:
            entry = self._claimed.get(task_id)
            if entry is None:
                raise QueueError(f"cannot nack unclaimed task {task_id!r}")
            if token is not None and entry["attempts"] != token:
                raise QueueError(
                    f"stale nack of task {task_id!r}: the claim was "
                    "reclaimed by another worker"
                )
            del self._claimed[task_id]
            return self._retire_or_requeue(task_id, entry, error)

    def _retire_or_requeue(self, task_id: str, entry: dict, error) -> str:
        # Caller holds the lock.
        if entry["attempts"] >= self.max_attempts:
            entry["error"] = None if error is None else str(error)
            self._failed[task_id] = entry
            return "failed"
        entry.pop("claimed_at", None)
        entry.pop("worker_id", None)
        self._pending[task_id] = entry
        return "requeued"

    def requeue_expired(self, lease_seconds: Optional[float] = None) -> List[str]:
        lease = self.lease_seconds if lease_seconds is None else float(lease_seconds)
        deadline = time.time() - lease
        moved = []
        with self._lock:
            for task_id in [
                tid
                for tid, entry in self._claimed.items()
                if entry["claimed_at"] <= deadline
            ]:
                entry = self._claimed.pop(task_id)
                self._retire_or_requeue(task_id, entry, error="lease expired")
                moved.append(task_id)
        return moved

    def remove(self, task_id: str) -> bool:
        with self._lock:
            return self._pending.pop(task_id, None) is not None

    def failed_error(self, task_id: str) -> Optional[str]:
        with self._lock:
            entry = self._failed.get(task_id)
            return None if entry is None else entry.get("error")

    def failed_payload(self, task_id: str) -> Optional[str]:
        with self._lock:
            entry = self._failed.get(task_id)
            return None if entry is None else entry.get("payload")

    def clear_failed(self, task_id: str) -> bool:
        with self._lock:
            return self._failed.pop(task_id, None) is not None

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return {
                "pending": len(self._pending),
                "claimed": len(self._claimed),
                "failed": len(self._failed),
            }


class FileJobQueue(JobQueue):
    """A durable queue on a shared filesystem.

    Layout under ``directory``::

        pending/<task_id>.json    waiting for a worker
        claimed/<task_id>.json    leased to a worker (mtime = claim time)
        failed/<task_id>.json     dead-lettered after ``max_attempts``

    Every state transition is a single atomic ``os.rename`` (claim,
    requeue) or ``os.replace``-committed rewrite, so workers on different
    machines sharing the directory need no further coordination.  A loser
    of a claim race gets ``FileNotFoundError`` from the rename and tries
    the next pending file.
    """

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        scheduler=None,
        injector=None,
    ) -> None:
        self.max_attempts = int(max_attempts)
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {max_attempts}")
        self.lease_seconds = float(lease_seconds)
        self._scheduler = _resolve_scheduler(scheduler)
        #: Optional chaos hook (:class:`repro.chaos.FaultInjector`): claim
        #: raises transient OSErrors and put tears its temp write when the
        #: injector says so.  None (production) costs one attribute test.
        self._injector = injector
        #: Pending-file scheduling metadata (priority, tenant, seq) by
        #: filename, so repeated claims read each pending file's JSON once,
        #: not once per claim.  Safe to cache across requeues -- a retry
        #: keeps its task's tenant/priority/seq/tie -- and local staleness after
        #: another process resubmits the same task id only perturbs claim
        #: *order*, never correctness.  Claims prune it to the live pending
        #: set; a put-only process (a broker that never claims) is bounded
        #: by the size cap below instead.
        self._claim_meta: Dict[str, tuple] = {}
        self._claim_meta_max = 8192
        #: Per-process put counter, carried in each entry as its ``tie``:
        #: ``seq`` is a wall-clock stamp, so two puts inside one clock tick
        #: (coarse filesystem clocks, fast submitters) would otherwise get
        #: equal seq and FIFO-within-tenant order would fall back to task-id
        #: order -- nondeterministic with respect to enqueue order.  The
        #: counter restores put order within a process; across processes the
        #: coarse wall clock remains the (best-effort) order, as before.
        self._put_tie = itertools.count(1)
        self.directory = Path(directory)
        self._pending = self.directory / "pending"
        self._claimed = self.directory / "claimed"
        self._failed = self.directory / "failed"
        for sub in (self._pending, self._claimed, self._failed):
            try:
                sub.mkdir(parents=True, exist_ok=True)
            except OSError:
                # Read-only root (an operator inspecting a snapshot):
                # reads (counts, claims over empty globs) still work; the
                # first write surfaces the real error.
                pass

    @staticmethod
    def _write_entry(path: Path, entry: dict) -> None:
        atomic_write_json(path, entry)

    @staticmethod
    def _read_entry(path: Path) -> dict:
        return json.loads(path.read_text(encoding="utf-8"))

    def put(
        self,
        payload: str,
        *,
        task_id: Optional[str] = None,
        priority: int = DEFAULT_PRIORITY,
        tenant: str = DEFAULT_TENANT,
    ) -> str:
        task_id = _check_task_id(task_id or _new_task_id())
        target = self._pending / f"{task_id}.json"
        if (self._claimed / f"{task_id}.json").exists():
            raise QueueError(f"task {task_id!r} is already queued")
        priority = int(priority)
        tenant = str(tenant)
        seq = time.time()
        tie = next(self._put_tie)  # GIL-atomic; no lock needed
        # Publish via hardlink from a temp file: os.link refuses an existing
        # target, so two concurrent puts of the same task id cannot both
        # succeed (an exists() pre-check would be check-then-act).  The
        # claimed-state check above remains a pre-check -- a claim that
        # races it yields at worst a duplicate execution, which
        # content-addressed results make harmless.
        tmp = target.with_name(f".{target.name}.{uuid.uuid4().hex}")
        content = json.dumps(
            {
                "payload": str(payload),
                "attempts": 0,
                "priority": priority,
                "tenant": tenant,
                "seq": seq,
                "tie": tie,
            },
            sort_keys=True,
        )
        if self._injector is not None and self._injector.torn_write(
            "torn-queue-write"
        ):
            # A producer crash mid-put: the torn bytes land in the dotted
            # temp file (janitored by the reaper sweep), never in pending/
            # -- publication below is the atomic link, so a torn *published*
            # entry cannot exist.  The raise is the producer's death.
            # repro-lint: disable=atomic-write -- deliberately torn bytes land in the dotted temp file, never in a published entry
            tmp.write_text(content[: max(1, len(content) // 2)], encoding="utf-8")
            raise OSError(f"injected torn queue write for task {task_id!r}")
        # repro-lint: disable=atomic-write -- temp file; publication is the atomic os.link below
        tmp.write_text(content, encoding="utf-8")
        try:
            os.link(tmp, target)
        except FileExistsError:
            raise QueueError(f"task {task_id!r} is already queued") from None
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        if self._scheduler is not None:
            # Prime the claim-order cache (pointless under plain FIFO).  A
            # process that only ever puts never reaches the claim-side
            # pruning, so past the cap the cache is dropped wholesale --
            # it is an optimization, rebuilt from one read per file at the
            # next claim.
            if len(self._claim_meta) >= self._claim_meta_max:
                self._claim_meta = {}
            self._claim_meta[target.name] = (priority, tenant, seq, float(tie))
        return task_id

    def _refresh_claim_meta(self, names) -> Dict[str, tuple]:
        """(priority, tenant, seq, tie) per pending filename, reading only
        files not seen before; entries for vanished files are dropped."""
        cache = self._claim_meta
        live: Dict[str, tuple] = {}
        for name in names:
            info = cache.get(name)
            if info is None:
                try:
                    entry = self._read_entry(self._pending / name)
                    info = (
                        int(entry.get("priority", DEFAULT_PRIORITY)),
                        str(entry.get("tenant", DEFAULT_TENANT)),
                        float(entry.get("seq", 0.0)),
                        float(entry.get("tie", 0.0)),
                    )
                except (OSError, TypeError, ValueError):
                    continue  # claimed mid-scan (or torn): try next round
            live[name] = info
        self._claim_meta = live
        return live

    def claim(self, worker_id: Optional[str] = None) -> Optional[ClaimedTask]:
        if self._injector is not None:
            self._injector.io_error("claim-io-error")
        # Sorted names give a deterministic base order (the broker's task
        # ids sort by job and chunk index); the scheduler reorders them by
        # priority class and tenant fair share.  Correctness never depends
        # on the order -- a loser of any rename race just tries the next
        # candidate.
        names = sorted(path.name for path in self._pending.glob("*.json"))
        if self._scheduler is None:
            candidates = ((name, None) for name in names)
        else:
            meta = self._refresh_claim_meta(names)
            entries = [
                ScheduledEntry(name, *meta[name]) for name in names if name in meta
            ]
            # Lazy: a claim usually wins its first rename, so the full
            # interleave (and every lower priority class) is never
            # materialized unless earlier candidates lose their races.
            candidates = (
                (entry.entry_id, entry)
                for entry in self._scheduler.arrange_iter(entries)
            )
        for name, entry in candidates:
            claimed = self._try_claim(name, worker_id)
            if claimed is not None:
                if entry is not None:
                    self._scheduler.record(entry.priority, entry.tenant)
                return claimed
        return None

    def _try_claim(
        self, name: str, worker_id: Optional[str]
    ) -> Optional[ClaimedTask]:
        """Attempt the atomic pending -> claimed transition of one task;
        None when another actor (claimer, reaper) won the race."""
        path = self._pending / name
        target = self._claimed / name
        try:
            os.rename(path, target)
        except OSError:
            return None  # another worker won the race
        # Start the lease clock *immediately*: rename preserves the old
        # mtime, and until the rewrite below lands the entry has no
        # claimed_at -- without this touch, a concurrent reaper reading
        # the freshly-renamed file would see an apparently ancient claim
        # and spuriously requeue it.
        try:
            os.utime(target)
        except OSError:
            pass
        try:
            entry = self._read_entry(target)
        except (OSError, ValueError):
            # Lost a race with a reaper that requeued the entry in the
            # window before the utime landed (or the file is mid-rewrite
            # elsewhere): not our claim anymore.
            return None
        entry["attempts"] = int(entry.get("attempts", 0)) + 1
        entry["claimed_at"] = time.time()
        if worker_id is not None:
            entry["worker_id"] = str(worker_id)
        self._write_entry(target, entry)
        return ClaimedTask(
            task_id=name[: -len(".json")],
            payload=entry["payload"],
            attempts=entry["attempts"],
        )

    def heartbeat(self, task_id: str, *, token: Optional[int] = None) -> bool:
        """Touch the claimed file so the lease clock restarts (the reaper
        reads ``max(claimed_at, mtime)``).  A heartbeat that loses any race
        -- the task was acked, reaped or reclaimed -- reports False and
        changes nothing the fencing token does not already guard."""
        path = self._claimed / f"{_check_task_id(task_id)}.json"
        if token is not None:
            try:
                entry = self._read_entry(path)
            except (OSError, ValueError):
                return False
            if int(entry.get("attempts", 0)) != token:
                return False
        try:
            os.utime(path)
        except OSError:
            return False
        return True

    def _take_claim(self, path: Path):
        """Atomically take exclusive ownership of a claimed entry.

        Renames the claim file to a private temp name -- exactly one of any
        racing actors (an acking worker, a nacking worker, a reaper) wins
        the rename, which is what makes the token check that follows free
        of check-then-act races.  Returns ``(tmp_path, entry, claim_mtime)``
        -- ``claim_mtime`` is the claim file's pre-take mtime (the lease
        clock) -- or ``None`` when someone else already took (or acked) the
        claim.  Callers must either consume the tmp file (unlink) or
        restore it (rename back).
        """
        tmp = path.with_name(f".take.{path.name}.{uuid.uuid4().hex}")
        try:
            os.rename(path, tmp)
        except OSError:
            return None
        try:
            claim_mtime = tmp.stat().st_mtime  # preserved by the rename
        except OSError:
            claim_mtime = 0.0
        try:
            # Freshen the mtime: a live take is microseconds old, which is
            # how the orphan-recovery sweep tells it apart from a take
            # whose owner crashed mid-retire.
            os.utime(tmp)
        except OSError:
            pass
        try:
            return tmp, self._read_entry(tmp), claim_mtime
        except (OSError, ValueError):
            try:
                os.unlink(tmp)  # unreadable entry: drop it
            except OSError:
                pass
            return None

    @staticmethod
    def _restore_claim(tmp: Path, path: Path) -> None:
        try:
            os.rename(tmp, path)
        except OSError:
            pass

    def ack(self, task_id: str, *, token: Optional[int] = None) -> bool:
        path = self._claimed / f"{_check_task_id(task_id)}.json"
        taken = self._take_claim(path)
        if taken is None:
            # Benign: the lease expired and a reaper already moved the task.
            return False
        tmp, entry, _ = taken
        if token is not None and int(entry.get("attempts", 0)) != token:
            # Stale ack: the task was reclaimed meanwhile; hand it back.
            self._restore_claim(tmp, path)
            return False
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return True

    def nack(
        self,
        task_id: str,
        error: Optional[str] = None,
        *,
        token: Optional[int] = None,
    ) -> str:
        path = self._claimed / f"{_check_task_id(task_id)}.json"
        taken = self._take_claim(path)
        if taken is None:
            raise QueueError(f"cannot nack unclaimed task {task_id!r}")
        tmp, entry, _ = taken
        if token is not None and int(entry.get("attempts", 0)) != token:
            self._restore_claim(tmp, path)
            raise QueueError(
                f"stale nack of task {task_id!r}: the claim was reclaimed "
                "by another worker"
            )
        return self._retire_or_requeue(tmp, path.name, entry, error)

    def _retire_or_requeue(
        self, owned_path: Path, name: str, entry: dict, error
    ) -> str:
        """Move an exclusively-owned (taken) entry to pending/ or failed/.

        ``owned_path`` is the private temp file its taker holds; ``name``
        is the task's canonical ``<task_id>.json`` filename.
        """
        entry.pop("claimed_at", None)
        entry.pop("worker_id", None)
        if int(entry.get("attempts", 0)) >= self.max_attempts:
            entry["error"] = None if error is None else str(error)
            self._write_entry(self._failed / name, entry)
            disposition = "failed"
        else:
            self._write_entry(self._pending / name, entry)
            disposition = "requeued"
        try:
            os.unlink(owned_path)
        except OSError:
            pass
        return disposition

    def requeue_expired(self, lease_seconds: Optional[float] = None) -> List[str]:
        """Return crashed workers' tasks to the queue (or dead-letter them).

        A claim is expired when its recorded ``claimed_at`` is older than the
        lease.  Any worker (or the broker) may call this; racing reapers are
        safe because the pending rewrite is atomic and double-requeueing a
        task id just overwrites the same pending file.
        """
        lease = self.lease_seconds if lease_seconds is None else float(lease_seconds)
        deadline = time.time() - lease
        self._recover_orphaned_takes(lease)
        moved = []
        for path in sorted(self._claimed.glob("*.json")):
            try:
                entry = self._read_entry(path)
                mtime = path.stat().st_mtime
            except (OSError, ValueError):
                continue  # acked concurrently, or mid-rewrite by its claimer
            # The lease clock is the later of the recorded claim time and
            # the file mtime (touched at rename, refreshed by the claim
            # rewrite): a claim whose metadata rewrite has not landed yet
            # must not look ancient to a racing reaper.
            if max(float(entry.get("claimed_at", 0.0)), mtime) > deadline:
                continue
            # Looks expired; take it atomically and re-check from the
            # authoritative taken entry (the owner may have rewritten it,
            # or another reaper may have won).
            taken = self._take_claim(path)
            if taken is None:
                continue
            tmp, entry, claim_mtime = taken
            if max(float(entry.get("claimed_at", 0.0)), claim_mtime) > deadline:
                self._restore_claim(tmp, path)
                continue
            self._retire_or_requeue(tmp, path.name, entry, error="lease expired")
            moved.append(path.name[: -len(".json")])
        return moved

    def _recover_orphaned_takes(self, lease: float) -> None:
        """Restore ``.take.*`` files whose taker crashed mid-retire.

        A live take exists for microseconds (its mtime is freshened at the
        take), so a ``.take.*`` older than the lease -- floored at one
        second so ``lease_seconds=0`` configurations don't thrash live
        takers -- is an orphan: its task would otherwise be lost forever
        (no glob in claim/reap/counts matches the temp name).  If the task
        progressed elsewhere meanwhile, the orphan is stale and dropped;
        otherwise it is restored to ``claimed/`` where the normal expiry
        path requeues it.
        """
        orphan_deadline = time.time() - max(lease, 1.0)
        for tmp in self._claimed.glob(".take.*"):
            try:
                if tmp.stat().st_mtime > orphan_deadline:
                    continue
            except OSError:
                continue
            name = tmp.name[len(".take.") :].rsplit(".", 1)[0]
            if not name.endswith(".json"):
                continue
            try:
                if any(
                    (where / name).exists()
                    for where in (self._claimed, self._pending, self._failed)
                ):
                    tmp.unlink()
                else:
                    os.rename(tmp, self._claimed / name)
            except OSError:
                continue
        # Aged dotted temp files from crashed atomic writes (a put killed
        # between write and link, an entry rewrite killed before its
        # os.replace) have no task to recover -- just janitor them so a
        # long-lived queue directory doesn't accumulate junk.  Live temps
        # exist for milliseconds, far inside the deadline.
        for where in (self._pending, self._claimed, self._failed):
            for tmp in where.glob(".*"):
                if tmp.name.startswith(".take."):
                    continue  # handled above
                try:
                    if tmp.stat().st_mtime <= orphan_deadline:
                        tmp.unlink()
                except OSError:
                    continue

    def remove(self, task_id: str) -> bool:
        name = f"{_check_task_id(task_id)}.json"
        self._claim_meta.pop(name, None)  # a resubmission may retag the id
        try:
            os.unlink(self._pending / name)
            return True
        except OSError:
            return False

    def take_pending(self, task_id: str) -> Optional[dict]:
        name = f"{_check_task_id(task_id)}.json"
        self._claim_meta.pop(name, None)
        # Rename-then-read: the rename is the atomic removal (exactly one
        # of a racing claimer and this take wins), so the attempts count
        # read afterwards is authoritative -- no claim + nack cycle can
        # slip between a probe and the removal.
        tmp = (self._pending / name).with_name(
            f".taken.{name}.{uuid.uuid4().hex}"
        )
        try:
            os.rename(self._pending / name, tmp)
        except OSError:
            return None
        try:
            entry = self._read_entry(tmp)
        except (OSError, ValueError):
            entry = None
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return entry if isinstance(entry, dict) else None

    def failed_error(self, task_id: str) -> Optional[str]:
        try:
            entry = self._read_entry(self._failed / f"{_check_task_id(task_id)}.json")
        except (OSError, ValueError):
            return None
        return entry.get("error")

    def failed_payload(self, task_id: str) -> Optional[str]:
        try:
            entry = self._read_entry(self._failed / f"{_check_task_id(task_id)}.json")
        except (OSError, ValueError):
            return None
        return entry.get("payload")

    def clear_failed(self, task_id: str) -> bool:
        try:
            os.unlink(self._failed / f"{_check_task_id(task_id)}.json")
            return True
        except OSError:
            return False

    def counts(self) -> Dict[str, int]:
        return {
            "pending": sum(1 for _ in self._pending.glob("*.json")),
            "claimed": sum(1 for _ in self._claimed.glob("*.json")),
            "failed": sum(1 for _ in self._failed.glob("*.json")),
        }
