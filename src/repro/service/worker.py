"""Workers: claim queued shard tasks, execute them, share one result cache.

A :class:`Worker` is the service's execution loop::

    requeue expired leases -> claim -> cache lookup -> execute -> cache put
        -> done marker -> ack

Every step is crash-safe:

* a worker that dies mid-task never acks, so the lease expires and the task
  is claimed again (the queue's at-least-once contract);
* results are **content-addressed** (:func:`~repro.service.broker.task_key`),
  so the retry -- or a second worker racing an expired-but-alive one --
  recomputes bit-identical bytes and the double write is idempotent;
* a task whose execution keeps raising is retried up to the queue's
  ``max_attempts`` and then dead-lettered, with the error recorded in the
  job's ``failed/`` marker so clients see *why* the job failed.

The cache lookup before execution is what makes a worker fleet scale on
repeated work: a resubmitted job (or one sharing chunks with a previous
job) is served from the shared :class:`DiskResultCache` without recomputing,
and the cache's ``max_bytes`` LRU cap keeps long-lived workers from growing
it unboundedly.

Long chunks are kept alive by **heartbeats**: while a task executes, a
sidecar thread periodically renews its lease (``queue.heartbeat``), so the
reaper can tell a slow-but-healthy worker from a crashed one -- leases can
stay tight (fast crash recovery) without spuriously retrying long chunks.

Every worker also publishes its counters (claims, completed tasks, cache
hits/misses, failures, dead-letters, heartbeats) to ``<root>/metrics/``
after each processed task, feeding the operator ``metrics`` CLI verb
(:mod:`repro.tenancy.metrics`).

:func:`run_workers` drains a queue with N concurrent worker threads in one
call -- the in-process stand-in for N worker processes/machines that tests
and benchmarks use (`python -m repro.evaluation.cli serve-worker` runs the
real long-lived loop).
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import uuid
from typing import List, Optional, Union

from repro.dispatch.sharding import execute_task_json
from repro.service.broker import Broker, ServiceError
from repro.service.queue import ClaimedTask, QueueError
from repro.tenancy.metrics import WORKER_COUNTER_FIELDS, write_worker_metrics

__all__ = ["Worker", "run_workers"]


class Worker:
    """One service worker bound to a broker (hence a queue and a cache).

    Parameters
    ----------
    broker:
        A :class:`Broker` instance or a service root path.
    worker_id:
        Recorded on claims for observability; defaults to ``pid-hex``.
    poll_interval:
        Seconds :meth:`serve` sleeps when the queue is empty.
    heartbeat_seconds:
        Lease-renewal period while a task executes.  ``None`` (default)
        derives a third of the queue's lease -- three missed beats before
        the reaper may act; ``0`` disables heartbeats (the pre-renewal
        behaviour: a chunk longer than the lease gets retried).
    max_poll_interval:
        Cap of the idle backoff: an empty :meth:`serve` poll doubles the
        sleep (with per-worker jitter, so a fleet woken together does not
        stampede the shared directory) up to this cap, and any processed
        task resets it to ``poll_interval``.  ``None`` derives
        ``poll_interval * 40`` (2 s at the default poll).
    injector:
        Optional chaos hook (:class:`repro.chaos.FaultInjector`) firing
        the worker-side injection sites (crash-before-ack,
        crash-after-put, delayed-ack, cache-put-io-error).  ``None``
        (production) is a strict no-op.
    """

    #: Transient-I/O retry policy: a claim/put/marker/ack that raises
    #: OSError (PermissionError included -- shared-filesystem hiccups often
    #: surface as EACCES) is retried this many times with a doubling
    #: backoff before the failure is allowed to count.
    TRANSIENT_RETRIES = 3
    TRANSIENT_BACKOFF_SECONDS = 0.02

    def __init__(
        self,
        broker: Union[Broker, str, os.PathLike],
        *,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.05,
        heartbeat_seconds: Optional[float] = None,
        max_poll_interval: Optional[float] = None,
        injector=None,
    ) -> None:
        self.broker = broker if isinstance(broker, Broker) else Broker(broker)
        self.worker_id = worker_id or f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.poll_interval = float(poll_interval)
        self.max_poll_interval = (
            self.poll_interval * 40.0
            if max_poll_interval is None
            else max(float(max_poll_interval), self.poll_interval)
        )
        # Seeded per worker id: the jitter de-synchronizes a fleet without
        # making any single worker's schedule run-to-run random.
        self._jitter = random.Random(self.worker_id)
        self._injector = injector
        # Reap expired leases at most this often, not on every loop
        # iteration: the reaper scans (and JSON-parses) the whole claimed/
        # directory, and expiry can only matter on the lease timescale -- a
        # polling fleet hammering a shared filesystem 20x/second per worker
        # for a once-per-lease event is pure metadata traffic.
        lease = getattr(self.broker.queue, "lease_seconds", 0.0)
        self._reap_interval = max(float(lease) / 10.0, self.poll_interval)
        self._next_reap = 0.0  # monotonic deadline; 0 = reap on first loop
        if heartbeat_seconds is None:
            heartbeat_seconds = float(lease) / 3.0 if lease > 0 else 0.0
        self.heartbeat_seconds = float(heartbeat_seconds)
        #: Tasks this worker claimed (successful claims, any outcome).
        self.claims = 0
        #: Tasks this worker completed (cache hits included).
        self.tasks_done = 0
        #: Completed tasks that were served from the shared cache.
        self.cache_hits = 0
        #: Completed tasks that had to execute (shared-cache misses).
        self.cache_misses = 0
        #: Task executions that raised (each one is a nack).
        self.failures = 0
        #: Dead-letter markers this worker wrote (nack-exhausted or reaped).
        self.dead_letters = 0
        #: Claimed tasks dropped because their job was cancelled.
        self.tasks_discarded = 0
        #: Lease renewals sent while executing long tasks.
        self.heartbeats = 0
        #: Transient I/O errors absorbed by the bounded retry loop.
        self.io_retries = 0

    def _retry_transient(self, operation):
        """Run ``operation`` with bounded retries on transient I/O errors.

        OSError (PermissionError included) is what a flaky shared
        filesystem throws; one hiccup must not fail a healthy chunk.  The
        final attempt's error propagates -- the caller decides whether
        exhaustion means "treat as empty poll" (claim) or "nack" (the
        execution path).
        """
        for attempt in range(self.TRANSIENT_RETRIES):
            try:
                return operation()
            except OSError:
                self.io_retries += 1
                if attempt == self.TRANSIENT_RETRIES - 1:
                    raise
                time.sleep(self.TRANSIENT_BACKOFF_SECONDS * (2 ** attempt))

    def counters(self) -> dict:
        """The published metrics view of this worker's counters.

        Derived from :data:`WORKER_COUNTER_FIELDS` (each name is an
        attribute of this class), so the worker and the metrics reader
        cannot drift apart: a counter added to the shared tuple without a
        matching attribute fails loudly here instead of being silently
        dropped from the published files.
        """
        return {name: getattr(self, name) for name in WORKER_COUNTER_FIELDS}

    def flush_metrics(self) -> None:
        """Publish the counters under the service root (never raises: a
        full metrics disk must not take the fleet down with it)."""
        try:
            write_worker_metrics(self.broker.root, self.worker_id, self.counters())
        except Exception:  # noqa: BLE001 -- observability is best effort
            pass

    # -- one task -----------------------------------------------------------

    def run_once(self) -> bool:
        """Claim and process at most one task; False when the queue is empty."""
        queue = self.broker.queue
        now = time.monotonic()
        if now >= self._next_reap:
            self._next_reap = now + self._reap_interval
            for task_id in queue.requeue_expired():
                self._record_reaper_dead_letter(task_id)
        try:
            claimed = self._retry_transient(
                lambda: queue.claim(worker_id=self.worker_id)
            )
        except OSError:
            # Retries exhausted: report an empty poll rather than crash the
            # serve loop -- the task (if any) is still pending and the next
            # poll tries again.
            return False
        if claimed is None:
            return False
        self.claims += 1
        stop_heartbeat = self._start_heartbeat(claimed)
        try:
            self._process(claimed)
        finally:
            stop_heartbeat()
            self.flush_metrics()
        return True

    def _start_heartbeat(self, claimed: ClaimedTask):
        """Renew the claim's lease every ``heartbeat_seconds`` until the
        returned stop callable runs.  The beat carries the claim's fencing
        token, so a beat that outlives its lease (the task was reclaimed)
        is refused by the queue instead of stretching the new owner's
        clock."""
        if self.heartbeat_seconds <= 0:
            return lambda: None
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(self.heartbeat_seconds):
                try:
                    alive = self.broker.queue.heartbeat(
                        claimed.task_id, token=claimed.attempts
                    )
                except NotImplementedError:
                    return  # backend without heartbeats: renewal is optional
                except Exception:  # noqa: BLE001 -- transient I/O (a shared
                    continue  # filesystem hiccup) must not end renewal early
                if alive:
                    self.heartbeats += 1
                # A failed beat is NOT a reason to stand down: the backend
                # cannot distinguish "claim acked/reclaimed" from a claim
                # file momentarily absent mid-reaper-take (restored right
                # after) or a transient utime error -- and one such blip
                # ending renewal for a still-running chunk is exactly the
                # spurious-retry failure heartbeats exist to prevent.
                # Beating a truly-gone claim until the task finishes costs
                # one cheap failed utime per interval; beating a reclaimed
                # one merely freshens the new owner's live lease.

        thread = threading.Thread(target=beat, daemon=True)
        thread.start()

        def stopper() -> None:
            stop.set()
            thread.join()

        return stopper

    def _record_reaper_dead_letter(self, task_id: str) -> None:
        """Write the job's failed marker for a task the reaper dead-lettered.

        ``requeue_expired`` is queue-level: when a crash-looping task
        exhausts its attempts through lease expiry (no worker ever survives
        to nack it), the queue dead-letters it without anyone telling the
        job.  Without this hook the job would report "running" forever
        while its task sat in the dead-letter directory.
        """
        error = self.broker.queue.failed_error(task_id)
        if error is None:
            return  # requeued for retry, not dead-lettered
        payload = self.broker.queue.failed_payload(task_id)
        self.dead_letters += 1
        try:
            envelope = json.loads(payload)
            self.broker.mark_failed(
                envelope["job_id"], int(envelope["index"]), error
            )
        except Exception:  # noqa: BLE001 -- an unparseable envelope has no job
            pass

    def _process(self, claimed: ClaimedTask) -> None:
        # Envelope parsing stays inside the failure path: a corrupt payload
        # (truncated file, producer bug) must be nacked and eventually
        # dead-lettered like any other failing task -- never allowed to
        # escape run_once and kill the serve loop, where it would poison
        # every worker that claims it in turn.
        job_id = index = None
        try:
            envelope = json.loads(claimed.payload)
            job_id = envelope["job_id"]
            index = int(envelope["index"])
            key = envelope["key"]
            # A cancelled job's tasks are discarded, not executed: without
            # this check, a requeued task of a cancelled job (its worker
            # nacked or its lease expired after the cancel) would keep
            # burning fleet compute until dead-lettered.
            if self.broker.is_cancelled(job_id):
                self.tasks_discarded += 1
                self.broker.queue.ack(claimed.task_id, token=claimed.attempts)
                return
            # contains() is the cheap existence probe (metadata + npz
            # directory check, LRU touch) -- a hit must not pay a full
            # deserialization of a result nobody here consumes.
            if self.broker.cache.contains(key):
                self.cache_hits += 1
            else:
                self.cache_misses += 1
                result = execute_task_json(json.dumps(envelope["task"]))

                def put_result():
                    if self._injector is not None:
                        self._injector.io_error("cache-put-io-error")
                    self.broker.cache.put(key, result)

                self._retry_transient(put_result)
            if self._injector is not None:
                # Die between the cache put and the done marker: the chunk's
                # bytes exist but the job does not know -- the retry after
                # lease expiry must turn them into a cache hit.
                self._injector.crash("crash-after-put")
            self._retry_transient(lambda: self.broker.mark_done(job_id, index, key))
        except Exception as exc:  # noqa: BLE001 -- any failure means retry
            self.failures += 1
            try:
                disposition = self._retry_transient(
                    lambda: self.broker.queue.nack(
                        claimed.task_id,
                        error=f"{type(exc).__name__}: {exc}",
                        token=claimed.attempts,
                    )
                )
            except QueueError:
                # The lease expired while we were executing and the task was
                # reclaimed (or already requeued); the fencing token keeps
                # this stale nack from revoking the new owner's claim, and
                # the retry proceeds without us.
                return
            except OSError:
                # Transient retries exhausted: leave the claim to expire --
                # the reaper requeues (or dead-letters) it, which is the
                # same at-least-once outcome a crashed worker produces.
                return
            if disposition == "failed":
                self.dead_letters += 1
            if disposition == "failed" and job_id is not None and index is not None:
                # An unparseable envelope has no job to mark; it is still
                # recorded in the queue's dead-letter directory.  The marker
                # write itself must not escape either (the job dir may have
                # been pruned) -- the dead-letter entry already records the
                # failure.
                try:
                    self.broker.mark_failed(
                        job_id, index, f"{type(exc).__name__}: {exc}"
                    )
                except Exception:  # noqa: BLE001 -- the dead-letter entry
                    # already records the failure; a pruned job dir must not
                    # crash the worker that is merely annotating it.
                    pass
            return
        self.tasks_done += 1
        if self._injector is not None:
            # Stall past the lease (the reaper may requeue mid-delay; the
            # fencing token then refuses the stale ack below), or die with
            # the done marker written but the task unacked -- the duplicate
            # delivery idempotent results must absorb.
            self._injector.delay("delayed-ack", self._ack_delay_seconds())
            self._injector.crash("crash-before-ack")
        # A failed ack means the lease expired mid-execution and the task
        # was reclaimed: the fencing token refuses the stale ack, the done
        # marker is already written, and the retry recomputes the identical
        # content-addressed entry, so no harm.  The same holds for an ack
        # whose transient-I/O retries exhaust: the un-acked claim expires
        # and the requeued duplicate is idempotent, so it must not crash a
        # worker that just completed the task.
        try:
            self._retry_transient(
                lambda: self.broker.queue.ack(claimed.task_id, token=claimed.attempts)
            )
        except OSError:
            pass

    def _ack_delay_seconds(self) -> float:
        """How long the delayed-ack fault stalls: comfortably past the
        lease so a reaper can reclaim mid-delay, capped so a long-lease
        configuration cannot hang a campaign."""
        lease = float(getattr(self.broker.queue, "lease_seconds", 0.0) or 0.0)
        return min(lease * 1.3 + 0.05, 5.0)

    # -- loops --------------------------------------------------------------

    def run_until_idle(self) -> int:
        """Process tasks until the queue has nothing claimable; return count."""
        processed = 0
        while self.run_once():
            processed += 1
        return processed

    def serve(
        self,
        *,
        max_tasks: Optional[int] = None,
        idle_exit: bool = False,
        deadline: Optional[float] = None,
    ) -> int:
        """The long-lived worker loop.

        Polls the queue with **bounded exponential backoff**: an empty
        poll doubles the sleep from ``poll_interval`` up to
        ``max_poll_interval`` (plus up to 25% per-worker jitter, so an
        idle fleet does not hammer -- or wake against -- the shared
        directory in lockstep), and any processed task resets it.  Exits
        after ``max_tasks`` processed tasks, when ``idle_exit`` is set and
        the queue is fully idle (nothing pending *or* claimed -- claimed
        tasks may yet expire back into the queue), or past ``deadline``
        (``time.monotonic()`` value).  With no exit condition it serves
        forever (the ``serve-worker`` CLI mode).
        """
        processed = 0
        idle_sleep = self.poll_interval
        try:
            while True:
                if max_tasks is not None and processed >= max_tasks:
                    return processed
                if deadline is not None and time.monotonic() >= deadline:
                    return processed
                if self.run_once():
                    processed += 1
                    idle_sleep = self.poll_interval
                    continue
                if idle_exit and self.broker.queue.is_idle:
                    return processed
                sleep = idle_sleep * (1.0 + 0.25 * self._jitter.random())
                if deadline is not None:
                    # Never sleep past the deadline the caller asked for.
                    sleep = min(sleep, max(0.0, deadline - time.monotonic()))
                time.sleep(sleep)
                idle_sleep = min(idle_sleep * 2.0, self.max_poll_interval)
        finally:
            self.flush_metrics()  # final counters survive the exit


def run_workers(
    broker: Union[Broker, str, os.PathLike],
    count: int = 2,
    *,
    timeout: float = 60.0,
) -> List[Worker]:
    """Drain the queue with ``count`` concurrent worker threads.

    Each thread runs a :class:`Worker` until the queue is idle; the call
    returns the workers (for their stats) once all threads have joined.
    ``timeout`` bounds the *total* wall-clock of the drain as a safety net
    -- a hung worker raises :class:`ServiceError` rather than blocking the
    caller forever -- and a worker thread that dies on an unexpected
    exception re-raises it here instead of silently reporting a
    "successful" drain the caller would only discover as a confusing
    not-done job.
    """
    count = int(count)
    if count < 1:
        raise ValueError(f"count must be at least 1, got {count}")
    broker = broker if isinstance(broker, Broker) else Broker(broker)
    workers = [
        Worker(broker, worker_id=f"thread-{i}", poll_interval=0.005)
        for i in range(count)
    ]
    errors: List[BaseException] = []

    def drain(worker: Worker) -> None:
        try:
            worker.run_until_idle()
        # repro-lint: disable=no-blanket-except -- thread trampoline: the exception (including an injected crash) is re-raised by the joining thread below
        except BaseException as exc:  # noqa: BLE001 -- reported to the caller
            errors.append(exc)

    threads = [
        threading.Thread(target=drain, args=(worker,), daemon=True)
        for worker in workers
    ]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + float(timeout)
    for thread in threads:
        thread.join(max(0.0, deadline - time.monotonic()))
        if thread.is_alive():
            raise ServiceError(f"worker threads did not finish within {timeout}s")
    if errors:
        raise ServiceError(f"a worker thread crashed: {errors[0]!r}") from errors[0]
    return workers
