"""repro.staticcheck: the stack's contracts, enforced at review time.

PR 6's chaos campaign proves the determinism / crash-safety /
exactly-once contracts *post-hoc*; this package is the review-time half.
An AST rule engine (:mod:`repro.staticcheck.core`) runs ~10 rules
(:mod:`repro.staticcheck.rules`) encoding the repo's documented
invariants -- no clock reads or ambient randomness in the deterministic
layers, atomic-write discipline under durable roots, no swallowed
``BaseException``, fencing-token hygiene, lock pairing, canonical JSON,
``os._exit`` confinement, one-directional layering -- and fails CI on
any finding that is neither inline-suppressed (with a justification) nor
in the committed baseline (``baseline.json`` next to this file).

Usage::

    python -m repro.evaluation.cli lint              # exit 2 on findings
    python -m repro.evaluation.cli lint --update-baseline

or programmatically::

    >>> from pathlib import Path
    >>> from repro.staticcheck import lint_package
    >>> report, new, accepted, stale = lint_package()  # doctest: +SKIP
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.staticcheck.core import (
    Finding,
    LintReport,
    Rule,
    SourceFile,
    StaticCheckError,
    format_findings,
    load_baseline,
    partition_findings,
    run_rules,
    write_baseline,
)
from repro.staticcheck.rules import ALL_RULES, RULE_NAMES, iter_rules

__all__ = [
    "ALL_RULES",
    "DEFAULT_BASELINE",
    "Finding",
    "LintReport",
    "RULE_NAMES",
    "Rule",
    "SourceFile",
    "StaticCheckError",
    "default_package_root",
    "format_findings",
    "iter_rules",
    "lint_package",
    "load_baseline",
    "partition_findings",
    "run_rules",
    "write_baseline",
]

#: The committed baseline of accepted findings for the live tree.
DEFAULT_BASELINE = Path(__file__).parent / "baseline.json"


def default_package_root() -> Path:
    """The installed ``repro`` package directory (the default lint target)."""
    return Path(__file__).parent.parent


def lint_package(
    package_root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[LintReport, List[Finding], List[Finding], List[dict]]:
    """Lint a package tree against a baseline.

    Returns ``(report, new, accepted, stale)``: the raw report, the
    findings not covered by the baseline (these should fail CI), the
    baselined findings, and baseline entries matching nothing anymore.
    Defaults lint the installed ``repro`` tree against the committed
    baseline.
    """
    root = Path(package_root) if package_root is not None else default_package_root()
    baseline = load_baseline(
        baseline_path if baseline_path is not None else DEFAULT_BASELINE
    )
    report = run_rules(root, rules if rules is not None else ALL_RULES)
    new, accepted, stale = partition_findings(report.findings, baseline)
    return report, new, accepted, stale
