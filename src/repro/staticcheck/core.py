"""Rule engine for the repo's AST invariant linter.

The stack's load-bearing contracts (determinism, crash safety,
exactly-once settlement -- see ROADMAP.md) are pinned by tests and by the
chaos campaign *after* code runs.  This module is the review-time half:
a small visitor framework over :mod:`ast` that encodes the same contracts
as static rules, so a violation fails CI before any test executes.

Framework pieces, all deliberately boring:

* :class:`SourceFile` -- one parsed module: source lines, AST, an import
  table (``alias -> dotted module``) powering :meth:`SourceFile.resolve`,
  the dotted sub-path inside the package (``"service.queue"``) that rules
  scope themselves by, and the parsed inline suppressions.
* :class:`Rule` -- a named check; ``check(source_file)`` yields
  :class:`Finding` objects carrying ``file:line`` plus a fix hint.
* **Suppressions** -- ``# repro-lint: disable=<rule>[,<rule>...] -- why``
  on the offending line (or on a comment-only line directly above it).
  The justification text after ``--`` is **required**: a suppression
  without one does not suppress and additionally raises a
  ``suppression-hygiene`` finding, as does one naming an unknown rule.
* **Baseline** -- a committed JSON file of accepted findings
  (:func:`load_baseline` / :func:`write_baseline`).  Findings are matched
  by a content fingerprint (rule + path + the offending source line), not
  by line number, so unrelated edits above a baselined finding do not
  un-baseline it.  :func:`partition_findings` splits a run into *new*
  findings (fail CI) and *accepted* ones.

The concrete rules live in :mod:`repro.staticcheck.rules`; the CLI verb
(``python -m repro.evaluation.cli lint``) lives with the other verbs in
:mod:`repro.evaluation.cli`.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "SourceFile",
    "StaticCheckError",
    "Suppression",
    "format_findings",
    "load_baseline",
    "partition_findings",
    "run_rules",
    "write_baseline",
]

#: Rule name of the meta-findings the engine itself emits.
SUPPRESSION_RULE = "suppression-hygiene"
PARSE_RULE = "parse-error"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-]+)"
    r"(?:\s+--\s*(?P<why>.*\S))?\s*$"
)


class StaticCheckError(RuntimeError):
    """Raised by the CLI when a lint run has non-baseline findings."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  #: package-relative posix path, e.g. ``"repro/service/queue.py"``
    line: int
    col: int
    message: str
    hint: str = ""
    snippet: str = ""  #: the stripped offending source line (fingerprint input)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching."""
        raw = f"{self.rule}|{self.path}|{self.snippet}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    rules: Set[str]
    justification: str  #: empty string when the required ``-- why`` is missing
    comment_line: int  #: where the comment itself lives
    target_line: int  #: the line whose findings it suppresses
    used: bool = False


class Rule:
    """Base class of one named invariant check."""

    #: kebab-case identifier used in findings, suppressions and baselines.
    name: str = ""
    #: one-line summary shown by ``lint --list-rules`` and the README.
    description: str = ""

    def check(self, source: "SourceFile") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        source: "SourceFile",
        node: ast.AST,
        message: str,
        hint: str = "",
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.name,
            path=source.rel_path,
            line=line,
            col=col,
            message=message,
            hint=hint,
            snippet=source.line_text(line).strip(),
        )


class SourceFile:
    """One parsed module plus the lookup tables the rules need."""

    def __init__(self, path: Path, package_root: Path, text: str) -> None:
        self.path = path
        self.package = package_root.name
        relative = path.relative_to(package_root)
        self.rel_path = (Path(self.package) / relative).as_posix()
        parts = list(relative.parts)
        parts[-1] = parts[-1][: -len(".py")]
        if parts[-1] == "__init__":
            parts = parts[:-1]
        #: dotted path inside the package: ``""`` for the package root,
        #: ``"service.queue"`` for ``<pkg>/service/queue.py``.
        self.subpath = ".".join(parts)
        self.module = ".".join([self.package] + parts)
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self._imports: Dict[str, str] = {}
        self._collect_imports()
        self.suppressions = self._parse_suppressions()

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, path: Path, package_root: Path) -> "SourceFile":
        return cls(path, package_root, path.read_text(encoding="utf-8"))

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self._imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self._imports[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self._imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    # -- lookups -----------------------------------------------------------

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a name/attribute chain, via the import table.

        ``np.random.default_rng`` resolves to ``"numpy.random.default_rng"``
        under ``import numpy as np``; a chain rooted in a local variable
        resolves to ``None``.
        """
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._imports.get(node.id)
        if base is None:
            return None
        return ".".join([base] + list(reversed(chain)))

    def in_layers(self, subpackages: Sequence[str] = (), modules: Sequence[str] = ()) -> bool:
        """Whether this file lives in one of the given scopes.

        ``subpackages`` match on the first path segment (``"service"``
        covers every module under ``<pkg>/service/``); ``modules`` match
        the exact dotted sub-path (``"dispatch.cache"``).
        """
        first = self.subpath.split(".", 1)[0] if self.subpath else ""
        return first in subpackages or self.subpath in modules

    # -- suppressions ------------------------------------------------------

    def _parse_suppressions(self) -> List[Suppression]:
        found: List[Suppression] = []
        for number, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            rules = {name.strip() for name in match.group(1).split(",") if name.strip()}
            comment_only = line.strip().startswith("#")
            found.append(
                Suppression(
                    rules=rules,
                    justification=(match.group("why") or "").strip(),
                    comment_line=number,
                    target_line=number + 1 if comment_only else number,
                )
            )
        return found


@dataclass
class LintReport:
    """Outcome of one lint run over a package tree."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files: int = 0

    def sorted_findings(self) -> List[Finding]:
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        )


def _apply_suppressions(
    source: SourceFile,
    findings: List[Finding],
    known_rules: Set[str],
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (kept, suppressed) and emit hygiene findings."""
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in source.suppressions:
        by_line.setdefault(suppression.target_line, []).append(suppression)
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        matched = None
        for suppression in by_line.get(finding.line, ()):
            if finding.rule in suppression.rules and suppression.justification:
                matched = suppression
                break
        if matched is not None:
            matched.used = True
            suppressed.append(finding)
        else:
            kept.append(finding)
    for suppression in source.suppressions:
        if not suppression.justification:
            kept.append(
                Finding(
                    rule=SUPPRESSION_RULE,
                    path=source.rel_path,
                    line=suppression.comment_line,
                    col=0,
                    message="suppression is missing its justification "
                    "('# repro-lint: disable=<rule> -- <why>')",
                    hint="state why the contract does not apply here; an "
                    "unexplained suppression suppresses nothing",
                    snippet=source.line_text(suppression.comment_line).strip(),
                )
            )
        unknown = suppression.rules - known_rules
        if unknown:
            kept.append(
                Finding(
                    rule=SUPPRESSION_RULE,
                    path=source.rel_path,
                    line=suppression.comment_line,
                    col=0,
                    message=f"suppression names unknown rule(s): "
                    f"{', '.join(sorted(unknown))}",
                    hint="run lint --list-rules for the rule catalogue",
                    snippet=source.line_text(suppression.comment_line).strip(),
                )
            )
    return kept, suppressed


def run_rules(
    package_root: Path,
    rules: Sequence[Rule],
) -> LintReport:
    """Lint every ``*.py`` under ``package_root`` with ``rules``.

    ``package_root`` is the directory of the top-level package being
    checked (its *name* becomes the leading path segment of findings, and
    its sub-directories are the layer names rules scope by).  Unparseable
    files produce a ``parse-error`` finding rather than aborting the run.
    """
    package_root = Path(package_root)
    known = {rule.name for rule in rules} | {SUPPRESSION_RULE, PARSE_RULE}
    report = LintReport()
    for path in sorted(package_root.rglob("*.py")):
        report.files += 1
        try:
            source = SourceFile.parse(path, package_root)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    rule=PARSE_RULE,
                    path=(Path(package_root.name) / path.relative_to(package_root)).as_posix(),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        file_findings: List[Finding] = []
        for rule in rules:
            file_findings.extend(rule.check(source))
        kept, suppressed = _apply_suppressions(source, file_findings, known)
        report.findings.extend(kept)
        report.suppressed.extend(suppressed)
    report.findings = report.sorted_findings()
    return report


# -- baseline --------------------------------------------------------------


def load_baseline(path: Path) -> List[dict]:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return []
    payload = json.loads(path.read_text(encoding="utf-8"))
    entries = payload.get("findings", [])
    if not isinstance(entries, list):
        raise StaticCheckError(f"malformed baseline file {path}")
    return entries


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Persist ``findings`` as the new accepted baseline."""
    entries = [
        {
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "snippet": f.snippet,
            "fingerprint": f.fingerprint,
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    ]
    payload = {"version": 1, "findings": entries}
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def partition_findings(
    findings: Sequence[Finding],
    baseline: Sequence[dict],
) -> Tuple[List[Finding], List[Finding], List[dict]]:
    """Split a run against a baseline.

    Returns ``(new, accepted, stale)``: findings not covered by the
    baseline, findings the baseline accepts, and baseline entries that no
    longer correspond to any finding (candidates for ``--update-baseline``
    cleanup).  Matching is by fingerprint with multiplicity, so two
    identical offending lines need two baseline entries.
    """
    budget: Dict[str, int] = {}
    for entry in baseline:
        key = entry.get("fingerprint", "")
        budget[key] = budget.get(key, 0) + 1
    new: List[Finding] = []
    accepted: List[Finding] = []
    for finding in findings:
        key = finding.fingerprint
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            accepted.append(finding)
        else:
            new.append(finding)
    stale = [
        entry
        for entry in baseline
        if budget.get(entry.get("fingerprint", ""), 0) > 0
    ]
    # Each leftover fingerprint unit is stale once; trim duplicates fairly.
    seen: Dict[str, int] = {}
    trimmed: List[dict] = []
    for entry in stale:
        key = entry.get("fingerprint", "")
        if seen.get(key, 0) < budget.get(key, 0):
            seen[key] = seen.get(key, 0) + 1
            trimmed.append(entry)
    return new, accepted, trimmed


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report block, one finding per stanza."""
    return "\n".join(finding.render() for finding in findings)
