"""The invariant rules: the stack's documented contracts as AST checks.

Each rule encodes one contract from ROADMAP.md / the module docstrings and
names the layers it applies to.  Scopes are expressed against the linted
package's *sub-paths* (``"service"`` = everything under ``<pkg>/service/``,
``"dispatch.cache"`` = that one module), so the rules work identically on
the live ``repro`` tree and on the fixture packages the tests build.

The catalogue (see README "Static analysis" for the prose version):

========================  ==================================================
``no-wallclock``          no clock reads in the deterministic layers
``no-unseeded-rng``       no ambient randomness in the deterministic layers
``atomic-write``          durable-root writers use temp-file + ``os.replace``
``no-blanket-except``     bare ``except:`` / swallowed ``BaseException``
``justify-broad-except``  ``except Exception`` in recovery layers explains itself
``fencing-token``         queue ack/nack/heartbeat always thread a real token
``lock-discipline``       attributes guarded by a lock stay guarded
``canonical-json``        durable JSON is written with sorted keys
``os-exit-confined``      ``os._exit`` only in the chaos layer
``layering``              no module-level imports from a higher layer
``spec-immutability``     ``object.__setattr__`` only inside ``__post_init__``
========================  ==================================================
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.core import Finding, Rule, SourceFile

__all__ = ["ALL_RULES", "RULE_NAMES", "iter_rules"]

#: Layers whose results must be a pure function of (spec, engine, trials,
#: seed, chunk_trials) -- the determinism invariant.  ``alignment`` (the
#: dynamic alignment checkers) and ``privcheck`` (the static verifier,
#: which draws nothing at all) carry the same contract: a verdict must
#: never depend on ambient state.  ``hunt`` joins them: a seeded campaign
#: (pairs, events, witnesses, the whole verdict table) must replay
#: bit-identically, so its modules may neither read clocks nor draw
#: unseeded randomness.
DETERMINISTIC_SUBPACKAGES = (
    "core",
    "mechanisms",
    "primitives",
    "engine",
    "api",
    "dispatch",
    "alignment",
    "privcheck",
    "hunt",
)

#: Layers that write files under a durable root (queue entries, manifests,
#: journals, cache entries, datasets) -- the crash-safety invariant.
DURABLE_SUBPACKAGES = ("service", "tenancy", "chaos", "datasets")
DURABLE_MODULES = ("dispatch.cache", "evaluation.reporting")

#: (module sub-path, function name) pairs whose writes are genuinely
#: non-durable (regenerable report output, not system state).  An
#: allowlist rather than a baseline entry: the exemption is a reviewed
#: property of the function, not an accepted defect.
NON_DURABLE_WRITERS: Dict[Tuple[str, str], str] = {
    ("evaluation.reporting", "write_rows_csv"): "archived report output; "
    "regenerable from the experiment, never read back as system state",
    ("evaluation.reporting", "write_experiment_json"): "archived report "
    "output; regenerable from the experiment, never read back as system state",
}

#: Modules whose ``json.dumps`` output lands in durable files and therefore
#: must be canonical (sorted keys) so restarts and independent writers
#: produce byte-identical records.
CANONICAL_JSON_MODULES = (
    "service.queue",
    "service.broker",
    "tenancy.ledger",
    "tenancy.metrics",
    "dispatch.cache",
    "chaos.faults",
    "chaos.harness",
    "chaos.invariants",
)

#: Layer ranks for the upward-import rule.  Same-rank imports are allowed
#: (the base algorithms reference each other); an import from a strictly
#: higher rank at module level is a finding.  Function-local imports are
#: the documented escape hatch for facades (`repro.api.submit` reaching
#: into the service layer) and are exempt.
LAYER_RANKS: Dict[str, int] = {
    "primitives": 0,
    "accounting": 0,
    "datasets": 0,
    "queries": 0,
    "core": 1,
    "mechanisms": 1,
    "analysis": 1,
    "postprocess": 1,
    "alignment": 1,
    "engine": 2,
    "api": 3,
    "dispatch": 4,
    "tenancy": 5,
    "service": 6,
    "net": 7,
    "chaos": 7,
    "evaluation": 8,
    "staticcheck": 8,
    "privcheck": 8,
    "hunt": 8,
}

_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: numpy's legacy global-state samplers (seeded implicitly, process-wide).
_NUMPY_GLOBAL_SAMPLERS = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "laplace",
    "uniform",
    "exponential",
    "standard_normal",
}


def _walk_with_function_stack(tree: ast.AST) -> Iterator[Tuple[ast.AST, List[str]]]:
    """Yield ``(node, enclosing_function_names)`` over the whole tree."""

    def visit(node: ast.AST, stack: List[str]) -> Iterator[Tuple[ast.AST, List[str]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, stack
                yield from visit(child, stack + [child.name])
            else:
                yield child, stack
                yield from visit(child, stack)

    yield from visit(tree, [])


def _module_level_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    """Every node that executes at import time (function bodies excluded)."""

    def visit(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield child
            yield from visit(child)

    yield from visit(tree)


class NoWallclockRule(Rule):
    name = "no-wallclock"
    description = (
        "the deterministic layers (core/mechanisms/primitives/engine/api/"
        "dispatch/alignment/privcheck) never read the clock: a seeded run "
        "must be a pure function of (spec, engine, trials, seed, "
        "chunk_trials)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not source.in_layers(DETERMINISTIC_SUBPACKAGES):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = source.resolve(node.func)
            if resolved in _WALLCLOCK_CALLS:
                yield self.finding(
                    source,
                    node,
                    f"clock read `{resolved}()` in a deterministic layer",
                    hint="thread the timestamp in from the service layer, or "
                    "suppress with a justification if the value never "
                    "reaches a result",
                )


class NoUnseededRngRule(Rule):
    name = "no-unseeded-rng"
    description = (
        "the deterministic layers draw randomness only through an "
        "explicitly threaded generator; stdlib `random`, numpy's global "
        "samplers and argless `default_rng()` are ambient state"
    )

    #: The one documented OS-seeded default lives in ``ensure_rng``; the
    #: whole module is the sanctioned escape hatch.
    EXEMPT_MODULES = ("primitives.rng",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not source.in_layers(DETERMINISTIC_SUBPACKAGES):
            return
        if source.subpath in self.EXEMPT_MODULES:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = source.resolve(node.func)
            if resolved is None:
                continue
            if resolved == "numpy.random.default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    source,
                    node,
                    "argless `default_rng()` is OS-seeded; results cannot "
                    "be reproduced",
                    hint="accept an `rng` argument and normalise it through "
                    "repro.primitives.rng.ensure_rng",
                )
            elif resolved.startswith("random.") or resolved == "random":
                yield self.finding(
                    source,
                    node,
                    f"stdlib `{resolved}` draws from ambient process-global "
                    "state",
                    hint="thread a seeded numpy Generator (see "
                    "repro.primitives.rng) instead",
                )
            elif (
                resolved.startswith("numpy.random.")
                and resolved.rsplit(".", 1)[1] in _NUMPY_GLOBAL_SAMPLERS
            ):
                yield self.finding(
                    source,
                    node,
                    f"legacy global-state sampler `{resolved}`",
                    hint="use an explicitly seeded numpy Generator instead",
                )


class AtomicWriteRule(Rule):
    name = "atomic-write"
    description = (
        "writers under a durable root publish via temp file + os.replace "
        "(or O_APPEND journal records): a torn `open(.., 'w')` write is a "
        "corrupt file a reader must survive"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not source.in_layers(DURABLE_SUBPACKAGES, DURABLE_MODULES):
            return
        for node, stack in _walk_with_function_stack(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if any(name.startswith("atomic_") for name in stack):
                continue  # inside the blessed idiom itself
            enclosing = stack[-1] if stack else ""
            if (source.subpath, enclosing) in NON_DURABLE_WRITERS:
                continue
            target = self._write_target(source, node)
            if target is not None:
                yield self.finding(
                    source,
                    node,
                    f"non-atomic durable write via {target}",
                    hint="write a temp file and os.replace() it into place "
                    "(repro.ioutil.atomic_write_bytes is the one copy of "
                    "the idiom), or append O_APPEND journal records",
                )

    @staticmethod
    def _write_target(source: SourceFile, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode: Optional[ast.expr] = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
            if (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and "w" in mode.value
            ):
                return f"open(..., {mode.value!r})"
        if isinstance(func, ast.Attribute) and func.attr in ("write_text", "write_bytes"):
            return f".{func.attr}()"
        return None


class NoBlanketExceptRule(Rule):
    name = "no-blanket-except"
    description = (
        "bare `except:` and swallowed `except BaseException` are forbidden "
        "everywhere: injected crashes (chaos InjectedCrash) and interrupts "
        "must escape like a SIGKILL; cleanup handlers must end in `raise`"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = self._blanket_label(source, node.type)
            if label is None:
                continue
            last = node.body[-1] if node.body else None
            if isinstance(last, ast.Raise) and last.exc is None:
                continue  # cleanup-and-reraise: the crash still escapes
            yield self.finding(
                source,
                node,
                f"{label} does not re-raise; an injected crash or interrupt "
                "would be swallowed",
                hint="catch Exception (with a justification where required) "
                "or end the handler with a bare `raise`",
            )

    @staticmethod
    def _blanket_label(source: SourceFile, type_node) -> Optional[str]:
        if type_node is None:
            return "bare `except:`"
        names = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        for name in names:
            if isinstance(name, ast.Name) and name.id == "BaseException":
                return "`except BaseException`"
            if source.resolve(name) == "builtins.BaseException":
                return "`except BaseException`"
        return None


class JustifyBroadExceptRule(Rule):
    name = "justify-broad-except"
    description = (
        "`except Exception` in the recovery layers (service/tenancy/chaos "
        "and the result cache) must say why swallowing is safe, as a "
        "`# noqa: BLE001 -- <why>` comment on the except line"
    )

    SCOPE_SUBPACKAGES = ("service", "tenancy", "chaos")
    SCOPE_MODULES = ("dispatch.cache",)
    _JUSTIFIED = re.compile(r"#\s*noqa:\s*BLE001\s*--\s*\S")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not source.in_layers(self.SCOPE_SUBPACKAGES, self.SCOPE_MODULES):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            names = (
                node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            )
            if not any(
                isinstance(name, ast.Name) and name.id == "Exception"
                for name in names
            ):
                continue
            if self._JUSTIFIED.search(source.line_text(node.lineno)):
                continue
            yield self.finding(
                source,
                node,
                "`except Exception` without a justification comment",
                hint="append `# noqa: BLE001 -- <why swallowing is safe "
                "here>` to the except line",
            )


class FencingTokenRule(Rule):
    name = "fencing-token"
    description = (
        "queue ack/nack/heartbeat call sites thread the claim's fencing "
        "token (`token=claimed.attempts`), never a literal: a stale holder "
        "must be refused after a lease-expiry reclaim"
    )

    METHODS = ("ack", "nack", "heartbeat")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in self.METHODS:
                continue
            token = None
            for keyword in node.keywords:
                if keyword.arg == "token":
                    token = keyword.value
            if token is None:
                yield self.finding(
                    source,
                    node,
                    f"`.{func.attr}()` call without a fencing token",
                    hint="pass token=<claim>.attempts so a stale holder is "
                    "refused after a lease-expiry reclaim",
                )
            elif isinstance(token, ast.Constant) and token.value is not None:
                yield self.finding(
                    source,
                    node,
                    f"`.{func.attr}()` called with a literal token "
                    f"({token.value!r})",
                    hint="the token must come from the claim that is being "
                    "settled, not a constant",
                )


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "in a class owning a threading.Lock, an attribute written under "
        "`with self._lock` is written under it everywhere (outside "
        "__init__): mixed access is a data race on shared state"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    def _check_class(self, source: SourceFile, cls: ast.ClassDef) -> Iterator[Finding]:
        lock_attrs = self._owned_locks(source, cls)
        if not lock_attrs:
            return
        inside: Dict[str, int] = {}
        outside: Dict[str, int] = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in ("__init__", "__new__"):
                continue
            self._collect_writes(method, lock_attrs, False, inside, outside)
        for attr in sorted(set(inside) & set(outside)):
            yield Finding(
                rule=self.name,
                path=source.rel_path,
                line=outside[attr],
                col=0,
                message=f"self.{attr} in class {cls.name} is written both "
                f"under `with self.<lock>` (line {inside[attr]}) and "
                f"without it",
                hint="take the lock around every write, or document why "
                "this write cannot race (then suppress)",
                snippet=source.line_text(outside[attr]).strip(),
            )

    @staticmethod
    def _owned_locks(source: SourceFile, cls: ast.ClassDef) -> Set[str]:
        locks: Set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            if source.resolve(node.value.func) not in (
                "threading.Lock",
                "threading.RLock",
            ):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    locks.add(target.attr)
        return locks

    def _collect_writes(
        self,
        node: ast.AST,
        lock_attrs: Set[str],
        under_lock: bool,
        inside: Dict[str, int],
        outside: Dict[str, int],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            held = under_lock
            if isinstance(child, ast.With):
                for item in child.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                        and expr.attr in lock_attrs
                    ):
                        held = True
            targets: List[ast.expr] = []
            if isinstance(child, ast.Assign):
                targets = child.targets
            elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                targets = [child.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in lock_attrs
                ):
                    book = inside if held else outside
                    book.setdefault(target.attr, target.lineno)
            self._collect_writes(child, lock_attrs, held, inside, outside)


class CanonicalJsonRule(Rule):
    name = "canonical-json"
    description = (
        "durable writers serialize JSON with sort_keys=True (or the "
        "dispatch.hashing canonical helper): two writers of the same "
        "record must produce the same bytes"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not source.in_layers((), CANONICAL_JSON_MODULES):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if source.resolve(node.func) not in ("json.dumps", "json.dump"):
                continue
            if any(
                keyword.arg == "sort_keys"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            ):
                continue
            yield self.finding(
                source,
                node,
                "json.dumps without sort_keys=True in a durable writer",
                hint="pass sort_keys=True, or serialize through "
                "repro.dispatch.hashing.canonical_json",
            )


class OsExitConfinedRule(Rule):
    name = "os-exit-confined"
    description = (
        "`os._exit` (no finally blocks, no flushing) is the chaos layer's "
        "crash simulator and appears nowhere else"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        first = source.subpath.split(".", 1)[0] if source.subpath else ""
        if first == "chaos":
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if source.resolve(node.func) == "os._exit":
                yield self.finding(
                    source,
                    node,
                    "os._exit outside the chaos layer",
                    hint="raise or sys.exit() so cleanup handlers run; only "
                    "the chaos crash simulator may skip them",
                )


class LayeringRule(Rule):
    name = "layering"
    description = (
        "no module-level imports from a higher layer (e.g. engine "
        "importing service): the stack stays one-directional at import "
        "time; facades use function-local imports"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        first = source.subpath.split(".", 1)[0] if source.subpath else ""
        rank = LAYER_RANKS.get(first)
        if rank is None:
            return
        prefix = f"{source.package}."
        for node in _module_level_nodes(source.tree):
            modules: List[str] = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                modules = [node.module]
            for module in modules:
                if not module.startswith(prefix):
                    continue
                target = module[len(prefix):].split(".", 1)[0]
                target_rank = LAYER_RANKS.get(target)
                if target_rank is not None and target_rank > rank:
                    yield self.finding(
                        source,
                        node,
                        f"module-level import of `{module}`: layer "
                        f"`{first}` must not depend on higher layer "
                        f"`{target}`",
                        hint="move the import inside the function that "
                        "needs it (the facade escape hatch), or move the "
                        "shared definition down a layer",
                    )


class SpecImmutabilityRule(Rule):
    name = "spec-immutability"
    description = (
        "`object.__setattr__` (the frozen-dataclass back door) appears "
        "only inside `__post_init__`: specs are hashed into cache keys "
        "and run keys (dispatch.spec_hash), so mutating one after "
        "construction silently desynchronises every content-addressed "
        "artifact derived from it"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node, stack in _walk_with_function_stack(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                continue
            if "__post_init__" in stack:
                continue
            yield self.finding(
                source,
                node,
                "`object.__setattr__` outside `__post_init__` mutates a "
                "frozen instance after construction",
                hint="build a new instance (dataclasses.replace) instead of "
                "mutating; only `__post_init__` may finish initialising a "
                "frozen object",
            )


ALL_RULES: Tuple[Rule, ...] = (
    NoWallclockRule(),
    NoUnseededRngRule(),
    AtomicWriteRule(),
    NoBlanketExceptRule(),
    JustifyBroadExceptRule(),
    FencingTokenRule(),
    LockDisciplineRule(),
    CanonicalJsonRule(),
    OsExitConfinedRule(),
    LayeringRule(),
    SpecImmutabilityRule(),
)

RULE_NAMES: Tuple[str, ...] = tuple(rule.name for rule in ALL_RULES)


def iter_rules() -> Sequence[Rule]:
    """The full rule catalogue, in reporting order."""
    return ALL_RULES
