"""The multi-tenant control plane: budgets, fair scheduling, metrics.

The service layer (:mod:`repro.service`) executes whatever it is given; this
package decides *whether* and *in what order*, and shows operators what
happened -- the control plane over the service's data plane:

* :mod:`repro.tenancy.ledger` -- :class:`BudgetLedger`, the persistent
  per-tenant epsilon ledger (append-only JSON journal, atomic appends,
  crash-safe replay) that :meth:`Broker.submit` consults for admission
  control: a job whose worst-case epsilon exceeds its tenant's remaining
  budget is refused before anything is queued, and the unused part of the
  reservation is settled back when the job completes, fails, or is
  cancelled.
* :mod:`repro.tenancy.scheduler` -- :class:`TenantScheduler`, claim-order
  policy for both queue backends: strict priority classes, deficit-weighted
  round-robin across tenants inside a class, FIFO within a tenant; a
  flooding tenant cannot starve anyone.  Scheduling reorders execution
  only -- results stay bit-identical per job.
* :mod:`repro.tenancy.metrics` -- the operator surface: workers publish
  counters under ``<root>/metrics/``, and :func:`collect_metrics` /
  :func:`render_metrics` derive queue depth, job states, cache hit rate and
  per-tenant budget consumption from the service root for the ``metrics``
  CLI verb.

Dependency direction: :mod:`repro.service` imports this package (and this
package only imports service modules lazily, inside functions), so the
control plane stays importable on its own.
"""

from repro.tenancy.ledger import BudgetLedger, LedgerError, LedgerLockTimeout
from repro.tenancy.metrics import (
    collect_metrics,
    read_worker_metrics,
    render_metrics,
    write_worker_metrics,
)
from repro.tenancy.scheduler import ScheduledEntry, TenantScheduler

__all__ = [
    "BudgetLedger",
    "LedgerError",
    "LedgerLockTimeout",
    "ScheduledEntry",
    "TenantScheduler",
    "collect_metrics",
    "read_worker_metrics",
    "render_metrics",
    "write_worker_metrics",
]
